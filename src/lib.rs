//! # spectre-ct
//!
//! Facade crate for the workspace reproducing **"Constant-Time
//! Foundations for the New Spectre Era"** (Cauligi et al., PLDI 2020).
//!
//! * [`core`] — the speculative operational semantics and the
//!   speculative constant-time (SCT) definition;
//! * [`asm`] — the assembly front-end for the ISA;
//! * [`symx`] — the symbolic-execution substrate (bit-vector expressions,
//!   solver, symbolic memory);
//! * [`cache`] — warm-start persistence: arena snapshots, memoized
//!   solver verdicts, and the epoch lifecycle;
//! * [`pitchfork`] — the SCT-violation detector (worst-case schedules +
//!   symbolic execution);
//! * [`litmus`] — Kocher-style Spectre test cases and the paper's figure
//!   gadgets;
//! * [`casestudies`] — the four crypto case studies of Table 2.
//!
//! # Example
//!
//! ```
//! use spectre_ct::core::examples::fig1;
//! use spectre_ct::pitchfork::AnalysisSession;
//!
//! let (program, config) = fig1();
//! let mut session = AnalysisSession::builder().v1_mode(20).build().unwrap();
//! let report = session.analyze(&program, &config);
//! assert!(report.has_violations(), "Spectre v1 must be flagged");
//! ```
//!
//! For many programs — or a resident analysis daemon — submit jobs to a
//! [`pitchfork::service::SessionService`] instead (`pitchfork --serve`
//! wraps one behind a Unix socket; see [`pitchfork::server`]).

pub use pitchfork;
pub use sct_asm as asm;
pub use sct_cache as cache;
pub use sct_casestudies as casestudies;
pub use sct_core as core;
pub use sct_litmus as litmus;
pub use sct_symx as symx;
