//! Automatic fence repair (extension): detect violations, splice in
//! fences, and re-verify — closing the paper's "justify countermeasures"
//! loop mechanically.
//!
//! ```sh
//! cargo run --example auto_repair
//! ```

use spectre_ct::core::sched::sequential::run_sequential;
use spectre_ct::core::Params;
use spectre_ct::litmus::{kocher, v4};
use spectre_ct::pitchfork::{repair, DetectorOptions};

fn main() {
    // Repair the classic v1 gadget.
    let case = kocher::kocher_01();
    println!("repairing {} ({})...", case.name, case.description);
    let fixed = repair(&case.program, &case.config, DetectorOptions::v1_mode(16), 4)
        .expect("repair succeeds");
    println!(
        "  inserted fences (per round): {:?}",
        fixed.rounds
    );
    println!("  after repair: {}", fixed.report.verdict());
    println!("  repaired program:");
    for (n, i) in fixed.program.iter() {
        println!("    {n}: {i}");
    }
    // Architectural behaviour is preserved.
    let before = run_sequential(&case.program, case.config.clone(), Params::paper(), 10_000)
        .unwrap();
    let after = run_sequential(&fixed.program, case.config.clone(), Params::paper(), 10_000)
        .unwrap();
    assert!(before.config.arch_equivalent(&after.config));
    println!("  sequential behaviour unchanged ✓");

    // And a Spectre v4 case: the repair fences the bypassing load.
    let case = v4::v4_01();
    println!("\nrepairing {} ({})...", case.name, case.description);
    let fixed = repair(&case.program, &case.config, DetectorOptions::v4_mode(16), 4)
        .expect("repair succeeds");
    println!("  inserted fences (per round): {:?}", fixed.rounds);
    println!("  after repair: {}", fixed.report.verdict());
    assert!(!fixed.report.has_violations());
}
