//! Return-stack-buffer attacks and the retpoline defense (Appendix A,
//! Figures 11–13): a mistrained indirect jump leaks through fences, a
//! ret2spec underflow hands control to the attacker, and the retpoline
//! construction contains both.
//!
//! ```sh
//! cargo run --example retpoline_rsb
//! ```

use spectre_ct::litmus::figures;

fn main() {
    // Figure 11: Spectre v2. The indirect jump is predicted to the
    // attacker's gadget; the fences protect nothing because speculation
    // enters *behind* them.
    let v2 = figures::fig11();
    println!("Figure 11 (Spectre v2 via mistrained jmpi):");
    for (k, d) in v2.schedule.iter().enumerate() {
        let obs: Vec<String> = v2.step_obs[k].iter().map(|o| o.to_string()).collect();
        println!("  {:<14} {}", d.to_string(), obs.join(", "));
    }
    println!("  → secret leaked: {}\n", v2.leaks_secret());
    assert!(v2.leaks_secret());

    // Figure 12: ret2spec. After a call/ret pair drains the RSB, one
    // more `ret` lets the attacker choose the speculative target.
    let r2s = figures::fig12();
    println!("Figure 12 (ret2spec, RSB underflow):");
    println!(
        "  after call(3,2); ret; ret — the schedule chose program point {}\n",
        r2s.final_config.pc
    );
    assert_eq!(r2s.final_config.pc, 9);

    // Figure 13: the retpoline. The speculative return parks on a
    // fence self-loop; when the real target is loaded from memory the
    // rollback redirects execution to it. The attacker never steers.
    let ret = figures::fig13();
    println!("Figure 13 (retpoline):");
    for (k, d) in ret.schedule.iter().enumerate().skip(ret.shown_from) {
        let obs: Vec<String> = ret.step_obs[k].iter().map(|o| o.to_string()).collect();
        println!("  {:<22} {}", d.to_string(), obs.join(", "));
    }
    println!(
        "  → landed on the architecturally correct target {} with no secret leak: {}",
        ret.final_config.pc,
        !ret.leaks_secret()
    );
    assert_eq!(ret.final_config.pc, 20);
    assert!(!ret.leaks_secret());
}
