//! The fence mitigation (Figure 8): inserting `fence` after a bounds
//! check stops the speculative loads, and Pitchfork verifies the
//! repaired program.
//!
//! ```sh
//! cargo run --example fence_mitigation
//! ```

use spectre_ct::core::{Directive, Machine, StepError};
use spectre_ct::litmus::{figures, kocher};
use spectre_ct::pitchfork::AnalysisSession;

fn main() {
    // The vulnerable gadget and its fenced repair, from the litmus
    // corpus (kocher_01 vs kocher_06).
    let vulnerable = kocher::kocher_01();
    let fenced = kocher::kocher_06();
    let mut session = AnalysisSession::builder()
        .v1_mode(16)
        .build()
        .expect("uncached session");

    let before = session.analyze(&vulnerable.program, &vulnerable.config);
    let after = session.analyze(&fenced.program, &fenced.config);
    println!("without fence: {}", before.verdict());
    println!("with fence:    {}", after.verdict());
    assert!(before.has_violations() && !after.has_violations());

    // Why it works, at the semantics level (Figure 8): with the fence in
    // the reorder buffer, the loads' execute rules simply do not apply.
    let run = figures::fig8();
    let mut m = Machine::new(&run.program, run.config.clone());
    for d in run.schedule.iter().take(4) {
        m.step(d).unwrap();
    }
    println!("\nreorder buffer after misprediction into the fenced region:");
    for (i, t) in m.cfg.rob.iter() {
        println!("  {i} ↦ {t}");
    }
    match m.step(Directive::Execute(3)) {
        Err(StepError::FenceBlocked { index }) => {
            println!("\nexecute {index} is blocked by the fence — no rule applies");
        }
        other => panic!("expected a fence block, got {other:?}"),
    }
    let obs = m.step(Directive::Execute(1)).unwrap();
    println!(
        "executing the branch rolls everything back: {}",
        obs.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(", ")
    );
    println!("front end restarts at the correct target {}", m.cfg.pc);
}
