//! Scan the whole litmus corpus and the four crypto case studies with
//! Pitchfork in both analysis modes — a miniature of the paper's §4.2
//! evaluation, driven through one analysis session per mode.
//!
//! ```sh
//! cargo run --release --example pitchfork_scan
//! ```

use spectre_ct::casestudies::table2;
use spectre_ct::litmus;
use spectre_ct::pitchfork::{AnalysisSession, DetectorOptions};

fn main() {
    println!("== Litmus corpus ==\n");
    println!("{:<12} {:>4} {:>4}   description", "case", "v1", "v4");
    let mut session = AnalysisSession::builder()
        .v1_mode(16)
        .build()
        .expect("uncached session");
    for case in litmus::all_cases() {
        session.set_options(DetectorOptions::v1_mode(case.bound));
        let v1 = session.analyze(&case.program, &case.config);
        session.set_options(DetectorOptions::v4_mode(case.bound));
        let v4 = session.analyze(&case.program, &case.config);
        println!(
            "{:<12} {:>4} {:>4}   {}",
            case.name,
            if v1.has_violations() { "✗" } else { "✓" },
            if v4.has_violations() { "✗" } else { "✓" },
            case.description
        );
    }

    println!("\n== Case studies (Table 2) ==\n");
    let table = table2::run(40, 16);
    println!("{table}");

    println!("A violation report for the classic v1 case:\n");
    let case = litmus::kocher::kocher_01();
    session.set_options(DetectorOptions::v1_mode(case.bound));
    let report = session.analyze(&case.program, &case.config);
    if let Some(v) = report.violations.first() {
        println!("{v}");
    }
}
