//! Scan the whole litmus corpus and the four crypto case studies with
//! Pitchfork in both analysis modes — a miniature of the paper's §4.2
//! evaluation.
//!
//! ```sh
//! cargo run --release --example pitchfork_scan
//! ```

use spectre_ct::casestudies::table2;
use spectre_ct::litmus;
use spectre_ct::pitchfork::{Detector, DetectorOptions};

fn main() {
    println!("== Litmus corpus ==\n");
    println!("{:<12} {:>4} {:>4}   description", "case", "v1", "v4");
    for case in litmus::all_cases() {
        let v1 = Detector::new(DetectorOptions::v1_mode(case.bound))
            .analyze(&case.program, &case.config);
        let v4 = Detector::new(DetectorOptions::v4_mode(case.bound))
            .analyze(&case.program, &case.config);
        println!(
            "{:<12} {:>4} {:>4}   {}",
            case.name,
            if v1.has_violations() { "✗" } else { "✓" },
            if v4.has_violations() { "✗" } else { "✓" },
            case.description
        );
    }

    println!("\n== Case studies (Table 2) ==\n");
    let table = table2::run(40, 16);
    println!("{table}");

    println!("A violation report for the classic v1 case:\n");
    let case = litmus::kocher::kocher_01();
    let report =
        Detector::new(DetectorOptions::v1_mode(case.bound)).analyze(&case.program, &case.config);
    if let Some(v) = report.violations.first() {
        println!("{v}");
    }
}
