//! Quickstart: define a program, run it speculatively, and check it
//! for speculative constant-time violations — through the
//! service-oriented job API (`SessionService`), the same engine
//! `pitchfork --serve` exposes over a socket. (See
//! `examples/batch_scan.rs` for driving `AnalysisSession` directly.)
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spectre_ct::asm::assemble;
use spectre_ct::core::sched::sequential::run_sequential;
use spectre_ct::core::Params;
use spectre_ct::pitchfork::service::{Job, JobStatus, SessionService};
use spectre_ct::pitchfork::{AnalysisSession, OwnedEvent};

fn main() {
    // The paper's Figure 1 gadget, written in the `sct` assembly
    // language. `.reg`/`.public`/`.secret` directives describe the
    // initial configuration; `ra` is an attacker-controlled index that
    // is out of bounds for the 4-element array A.
    let asm = assemble(
        r"
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1          ; array A
.public 0x44 = 0, 3, 1, 2          ; array B
.secret 0x48 = 0x11, 0x22, 0x33, 0x44  ; the key
start:
    br gt(4, ra), then, out        ; bounds check for A
then:
    rb = load [0x40, ra]           ; A[ra]
    rc = load [0x44, rb]           ; B[A[ra]]  -- the transmitter
out:
",
    )
    .expect("the program assembles");

    // Sequentially, the bounds check protects the secret: the canonical
    // in-order execution produces no secret-labeled observation.
    let seq = run_sequential(&asm.program, asm.config.clone(), Params::paper(), 10_000)
        .expect("sequential execution succeeds");
    println!(
        "sequential trace: [{}]  (constant-time: {})",
        seq.outcome.trace,
        seq.outcome.trace.is_public()
    );

    // Speculatively, Pitchfork's worst-case schedules find the Spectre
    // v1 leak. Submit the program as a *job* to a session service — the
    // in-process form of the `pitchfork --serve` daemon: jobs queue
    // FIFO, run through one shared session, and leave a typed record
    // plus an event log behind.
    let session = AnalysisSession::builder()
        .v1_mode(20)
        .build()
        .expect("uncached session");
    let mut service = SessionService::new(session);
    let monitor = service.monitor();

    let id = service.submit(Job::new("fig1", asm.program, asm.config));
    println!("\nsubmitted as {id}: status {}", service.status(id).unwrap());
    service.run_pending();

    let record = service.record(id).expect("job record");
    assert_eq!(record.status, JobStatus::Done);
    let report = record.report.expect("finished jobs carry a report");
    println!(
        "pitchfork: {} ({} states explored)",
        report.verdict(),
        report.stats.states
    );
    for v in &report.violations {
        println!("\n{v}");
    }

    // The monitor mirrors what a daemon streams to subscribed clients.
    let (events, _) = monitor.events_since(id, 0).expect("event log");
    let witnesses = events
        .iter()
        .filter(|e| matches!(e, OwnedEvent::ViolationFound { .. }))
        .count();
    println!(
        "event stream: {} events ({witnesses} violation-found)",
        events.len()
    );

    assert!(report.has_violations(), "Figure 1 violates SCT");
}
