//! Quickstart: define a program, run it speculatively, and check it for
//! speculative constant-time violations.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spectre_ct::asm::assemble;
use spectre_ct::core::sched::sequential::run_sequential;
use spectre_ct::core::Params;
use spectre_ct::pitchfork::AnalysisSession;

fn main() {
    // The paper's Figure 1 gadget, written in the `sct` assembly
    // language. `.reg`/`.public`/`.secret` directives describe the
    // initial configuration; `ra` is an attacker-controlled index that
    // is out of bounds for the 4-element array A.
    let asm = assemble(
        r"
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1          ; array A
.public 0x44 = 0, 3, 1, 2          ; array B
.secret 0x48 = 0x11, 0x22, 0x33, 0x44  ; the key

start:
    br gt(4, ra), then, out        ; bounds check for A
then:
    rb = load [0x40, ra]           ; A[ra]
    rc = load [0x44, rb]           ; B[A[ra]]  -- the transmitter
out:
",
    )
    .expect("the program assembles");

    // Sequentially, the bounds check protects the secret: the canonical
    // in-order execution produces no secret-labeled observation.
    let seq = run_sequential(&asm.program, asm.config.clone(), Params::paper(), 10_000)
        .expect("sequential execution succeeds");
    println!(
        "sequential trace: [{}]  (constant-time: {})",
        seq.outcome.trace,
        seq.outcome.trace.is_public()
    );

    // Speculatively, Pitchfork's worst-case schedules find the Spectre
    // v1 leak: the mispredicted branch lets both loads execute before
    // the bounds check resolves.
    let mut session = AnalysisSession::builder()
        .v1_mode(20)
        .build()
        .expect("uncached session");
    let report = session.analyze(&asm.program, &asm.config);
    println!(
        "\npitchfork: {} ({} states explored)",
        report.verdict(),
        report.stats.states
    );
    for v in &report.violations {
        println!("\n{v}");
    }
    assert!(report.has_violations(), "Figure 1 violates SCT");
}
