//! A step-by-step replay of the paper's Figure 1: drive the speculative
//! machine directive by directive and watch the reorder buffer and the
//! leakage evolve.
//!
//! ```sh
//! cargo run --example spectre_v1_attack
//! ```

use spectre_ct::core::directive::Directive::*;
use spectre_ct::core::examples::fig1;
use spectre_ct::core::machine::Machine;

fn main() {
    let (program, config) = fig1();
    println!("Program:");
    for (n, i) in program.iter() {
        println!("  {n}: {i}");
    }
    println!("\nInitial registers: ra = {}", config.regs.read(spectre_ct::core::reg::names::RA));
    println!("Memory: A at 0x40 (pub), B at 0x44 (pub), Key at 0x48 (sec)\n");

    let mut m = Machine::new(&program, config);
    let attack = [
        (FetchBranch(true), "speculatively follow the 'in-bounds' arm"),
        (Fetch, "fetch the first load"),
        (Fetch, "fetch the second load"),
        (Execute(2), "execute A[ra]: reads Key[1] out of bounds"),
        (Execute(3), "execute B[rb]: the address *is* the secret"),
        (Execute(1), "finally resolve the branch: misprediction, rollback"),
    ];
    for (d, why) in attack {
        let obs = m.step(d).expect("the attack schedule is well-formed");
        let leakage = if obs.is_empty() {
            String::new()
        } else {
            format!(
                "   leaks: {}",
                obs.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(", ")
            )
        };
        println!("{d:<16} -- {why}{leakage}");
        for (i, t) in m.cfg.rob.iter() {
            println!("    buf {i} ↦ {t}");
        }
    }
    println!(
        "\nThe secret Key[1] = 0x22 escaped through the address 0x44 + 0x22 = 0x66\n\
         before the rollback — exactly the paper's Figure 1 trace."
    );
}
