//! Scan every Table 2 case study and the whole litmus corpus with
//! `BatchAnalyzer`: one shared expression arena, one pass per detector
//! mode, aggregate statistics at the end.
//!
//! ```text
//! cargo run --release --example batch_scan
//! ```

use spectre_ct::casestudies::table2;
use spectre_ct::litmus;
use spectre_ct::pitchfork::{BatchAnalyzer, DetectorOptions};
use spectre_ct::symx::arena_stats;

fn main() {
    let (v1_bound, v4_bound) = (40, 20);

    println!("== Table 2 case studies ==\n");
    let v1 = BatchAnalyzer::new(DetectorOptions::v1_mode(v1_bound))
        .analyze_all(table2::batch_items());
    let v4 = BatchAnalyzer::new(DetectorOptions::v4_mode(v4_bound))
        .analyze_all(table2::batch_items());
    println!("v1 mode (bound {v1_bound}):\n{v1}");
    println!("v4 mode (bound {v4_bound}):\n{v4}");
    println!("{}", table2::from_batches(&v1, &v4, v1_bound, v4_bound));

    println!("\n== Litmus corpus ==\n");
    let cases = litmus::all_cases();
    let verdicts = litmus::harness::run_corpus(&cases);
    println!("v1 mode:\n{}", verdicts.v1);
    println!("v4 mode:\n{}", verdicts.v4);

    let arena = arena_stats();
    println!(
        "\nshared arena after both corpora: {} nodes, {} cache hits / {} misses ({:.1}% hit rate)",
        arena.nodes,
        arena.app_cache_hits,
        arena.app_cache_misses,
        100.0 * arena.app_cache_hits as f64
            / (arena.app_cache_hits + arena.app_cache_misses).max(1) as f64,
    );
}
