//! Scan every Table 2 case study and the whole litmus corpus through
//! the session API — then do it all again from a **warm start**: the
//! cold pass saves an `sct-cache` snapshot (expression arena + solver
//! verdict memo), the arena epoch is retired as if the process had
//! exited, and the warm pass hydrates everything back from disk.
//!
//! ```text
//! cargo run --release --example batch_scan [CACHE_PATH]
//! ```
//!
//! With no argument the example uses a temp file and resets it first,
//! so the cold→warm contrast is deterministic. A user-supplied
//! `CACHE_PATH` is never deleted: pointing two invocations at the same
//! path demonstrates cross-process warm starts (the "cold" pass then
//! reports a warm start itself).

use spectre_ct::casestudies::table2;
use spectre_ct::litmus;
use spectre_ct::litmus::harness::SymbolicSweep;
use spectre_ct::pitchfork::{AnalysisSession, BatchReport};
use spectre_ct::symx::arena_stats;
use std::time::Instant;

fn pass(cache: &std::path::Path, label: &str) -> (Vec<BatchReport>, std::time::Duration) {
    let start = Instant::now();
    let cases = litmus::all_cases();
    let corpus = litmus::harness::run_corpus_cached(&cases, cache)
        .unwrap_or_else(|e| panic!("{label} corpus pass: {e}"));
    let (table, t2_v1, t2_v4) = table2::run_cached(40, 20, cache)
        .unwrap_or_else(|e| panic!("{label} table2 pass: {e}"));
    let wall = start.elapsed();

    println!("== {label} pass ==\n");
    if let Some(load) = &corpus.verdicts.v1.cache_load {
        println!("warm start: {load}");
    } else {
        println!("cold start (no snapshot on disk)");
    }
    println!("litmus v1 batch:\n{}", corpus.verdicts.v1);
    println!("{}", corpus.sweep);
    println!("{table}");
    let SymbolicSweep { ra_only, per_case } = corpus.sweep;
    (
        vec![corpus.verdicts.v1, corpus.verdicts.v4, ra_only, per_case, t2_v1, t2_v4],
        wall,
    )
}

fn main() {
    let cache = match std::env::args().nth(1) {
        Some(path) => std::path::PathBuf::from(path),
        None => {
            // Default temp file only: reset so the first pass is cold.
            let path = std::env::temp_dir().join("spectre_ct_batch_scan.cache");
            let _ = std::fs::remove_file(&path);
            path
        }
    };

    let (cold_reports, cold_wall) = pass(&cache, "cold");
    let cold_nodes = arena_stats().nodes;
    let cold_queries: usize = cold_reports.iter().map(|r| r.totals.solver_queries).sum();

    // Simulate a process exit: retire the epoch through a cache-less
    // session (old ExprRefs become detectably stale, nothing is
    // rehydrated) and start the next "invocation" from nothing but the
    // snapshot on disk.
    AnalysisSession::builder()
        .build()
        .expect("uncached session")
        .retire()
        .expect("epoch retire without a cache cannot fail");

    let (warm_reports, warm_wall) = pass(&cache, "warm");
    let warm_hits: usize = warm_reports.iter().map(|r| r.totals.solver_memo_hits).sum();
    let warm_queries: usize = warm_reports.iter().map(|r| r.totals.solver_queries).sum();
    let loaded = warm_reports[0]
        .cache_load
        .map(|l| l.added)
        .unwrap_or(0);
    let fresh = arena_stats().nodes.saturating_sub(loaded);

    println!("== cold vs warm ==\n");
    println!("cold: {cold_nodes} nodes interned, {cold_queries} solver queries, {cold_wall:.1?}");
    println!(
        "warm: {loaded} nodes from disk + {fresh} fresh ({:.1}% disk hit), \
         {warm_hits}/{warm_queries} solver queries from the persisted memo, {warm_wall:.1?}",
        100.0 * (1.0 - fresh as f64 / cold_nodes.max(1) as f64),
    );
    println!("snapshot: {}", cache.display());
}
