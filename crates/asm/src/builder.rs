//! Programmatic builders: construct programs and configurations without
//! going through text. The litmus corpus and case studies use these.

use crate::error::AsmError;
use crate::token::Pos;
use sct_core::{Config, Instr, Label, Memory, OpCode, Operand, Pc, Program, Reg, RegFile, Val};
use std::collections::BTreeMap;

/// A not-yet-resolved operand: a concrete [`Operand`] or a label
/// reference (resolved to the label's program point at build time).
#[derive(Clone, Debug)]
pub enum Arg {
    /// A concrete operand.
    Concrete(Operand),
    /// A reference to a builder label.
    Label(String),
}

impl From<Operand> for Arg {
    fn from(o: Operand) -> Self {
        Arg::Concrete(o)
    }
}

impl From<Reg> for Arg {
    fn from(r: Reg) -> Self {
        Arg::Concrete(Operand::Reg(r))
    }
}

impl From<u64> for Arg {
    fn from(v: u64) -> Self {
        Arg::Concrete(Operand::imm(v))
    }
}

impl From<Val> for Arg {
    fn from(v: Val) -> Self {
        Arg::Concrete(Operand::Imm(v))
    }
}

impl From<&str> for Arg {
    fn from(name: &str) -> Self {
        Arg::Label(name.to_string())
    }
}

/// A public immediate argument.
pub fn imm(v: u64) -> Arg {
    Arg::Concrete(Operand::imm(v))
}

/// A secret immediate argument.
pub fn sec(v: u64) -> Arg {
    Arg::Concrete(Operand::Imm(Val::secret(v)))
}

/// A register argument.
pub fn reg(r: Reg) -> Arg {
    Arg::Concrete(Operand::Reg(r))
}

enum Pending {
    Op {
        dst: Reg,
        op: OpCode,
        args: Vec<Arg>,
    },
    Load {
        dst: Reg,
        addr: Vec<Arg>,
    },
    Store {
        src: Arg,
        addr: Vec<Arg>,
    },
    Br {
        op: OpCode,
        args: Vec<Arg>,
        tru: String,
        fls: String,
    },
    Jmp {
        target: String,
    },
    Jmpi {
        args: Vec<Arg>,
    },
    Call {
        target: String,
    },
    Ret,
    Fence,
}

/// A fluent program builder with label resolution and automatic
/// program-point assignment (sequential from 1).
///
/// # Examples
///
/// ```
/// use sct_asm::builder::{imm, reg, ProgramBuilder};
/// use sct_core::reg::names::*;
/// use sct_core::OpCode;
///
/// let mut b = ProgramBuilder::new();
/// b.label("start");
/// b.br(OpCode::Gt, [imm(4), reg(RA)], "then", "out");
/// b.label("then");
/// b.load(RB, [imm(0x40), reg(RA)]);
/// b.load(RC, [imm(0x44), reg(RB)]);
/// b.label("out");
/// let program = b.build().unwrap();
/// assert_eq!(program.len(), 3);
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    items: Vec<Pending>,
    labels: BTreeMap<String, Pc>,
    entry: Option<String>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Bind `name` to the next instruction's program point.
    ///
    /// # Panics
    ///
    /// Panics on duplicate label names (builder misuse).
    pub fn label(&mut self, name: &str) -> &mut Self {
        let pc = self.items.len() as Pc + 1;
        let prev = self.labels.insert(name.to_string(), pc);
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Set the entry label (defaults to program point 1).
    pub fn entry(&mut self, name: &str) -> &mut Self {
        self.entry = Some(name.to_string());
        self
    }

    /// `dst = op(args...)`.
    pub fn op<I: IntoIterator<Item = Arg>>(&mut self, dst: Reg, op: OpCode, args: I) -> &mut Self {
        self.items.push(Pending::Op {
            dst,
            op,
            args: args.into_iter().collect(),
        });
        self
    }

    /// `dst = load [addr...]`.
    pub fn load<I: IntoIterator<Item = Arg>>(&mut self, dst: Reg, addr: I) -> &mut Self {
        self.items.push(Pending::Load {
            dst,
            addr: addr.into_iter().collect(),
        });
        self
    }

    /// `store src, [addr...]`.
    pub fn store<S: Into<Arg>, I: IntoIterator<Item = Arg>>(
        &mut self,
        src: S,
        addr: I,
    ) -> &mut Self {
        self.items.push(Pending::Store {
            src: src.into(),
            addr: addr.into_iter().collect(),
        });
        self
    }

    /// `br op(args...), tru, fls`.
    pub fn br<I: IntoIterator<Item = Arg>>(
        &mut self,
        op: OpCode,
        args: I,
        tru: &str,
        fls: &str,
    ) -> &mut Self {
        self.items.push(Pending::Br {
            op,
            args: args.into_iter().collect(),
            tru: tru.to_string(),
            fls: fls.to_string(),
        });
        self
    }

    /// Unconditional `jmp target` (sugar for an always-taken branch).
    pub fn jmp(&mut self, target: &str) -> &mut Self {
        self.items.push(Pending::Jmp {
            target: target.to_string(),
        });
        self
    }

    /// `jmpi [args...]`.
    pub fn jmpi<I: IntoIterator<Item = Arg>>(&mut self, args: I) -> &mut Self {
        self.items.push(Pending::Jmpi {
            args: args.into_iter().collect(),
        });
        self
    }

    /// `call target` (the return point is the following instruction).
    pub fn call(&mut self, target: &str) -> &mut Self {
        self.items.push(Pending::Call {
            target: target.to_string(),
        });
        self
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.items.push(Pending::Ret);
        self
    }

    /// `fence`.
    pub fn fence(&mut self) -> &mut Self {
        self.items.push(Pending::Fence);
        self
    }

    /// The program point the next instruction will occupy.
    pub fn here(&self) -> Pc {
        self.items.len() as Pc + 1
    }

    /// Resolve labels and produce the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] for dangling label references.
    pub fn build(&self) -> Result<Program, AsmError> {
        let lookup = |name: &str| -> Result<Pc, AsmError> {
            self.labels
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel {
                    name: name.to_string(),
                    pos: Pos::START,
                })
        };
        let arg = |a: &Arg| -> Result<Operand, AsmError> {
            match a {
                Arg::Concrete(o) => Ok(*o),
                Arg::Label(name) => Ok(Operand::Imm(Val::public(lookup(name)?))),
            }
        };
        let args = |xs: &[Arg]| -> Result<Vec<Operand>, AsmError> { xs.iter().map(arg).collect() };

        let mut program = Program::new();
        for (k, item) in self.items.iter().enumerate() {
            let pc = k as Pc + 1;
            let next = pc + 1;
            let instr = match item {
                Pending::Op { dst, op, args: a } => Instr::Op {
                    dst: *dst,
                    op: *op,
                    args: args(a)?,
                    next,
                },
                Pending::Load { dst, addr } => Instr::Load {
                    dst: *dst,
                    addr: args(addr)?,
                    next,
                },
                Pending::Store { src, addr } => Instr::Store {
                    src: arg(src)?,
                    addr: args(addr)?,
                    next,
                },
                Pending::Br {
                    op,
                    args: a,
                    tru,
                    fls,
                } => Instr::Br {
                    op: *op,
                    args: args(a)?,
                    tru: lookup(tru)?,
                    fls: lookup(fls)?,
                },
                Pending::Jmp { target } => {
                    let n = lookup(target)?;
                    Instr::Br {
                        op: OpCode::Eq,
                        args: vec![Operand::imm(0), Operand::imm(0)],
                        tru: n,
                        fls: n,
                    }
                }
                Pending::Jmpi { args: a } => Instr::Jmpi { args: args(a)? },
                Pending::Call { target } => Instr::Call {
                    callee: lookup(target)?,
                    ret: next,
                },
                Pending::Ret => Instr::Ret,
                Pending::Fence => Instr::Fence { next },
            };
            program.insert(pc, instr);
        }
        program.entry = match &self.entry {
            Some(name) => lookup(name)?,
            None => 1,
        };
        Ok(program)
    }
}

/// A fluent initial-configuration builder.
///
/// # Examples
///
/// ```
/// use sct_asm::builder::ConfigBuilder;
/// use sct_core::reg::names::RA;
/// use sct_core::Val;
///
/// let cfg = ConfigBuilder::new()
///     .reg(RA, Val::public(9))
///     .public_array(0x40, &[1, 0, 2, 1])
///     .secret_array(0x48, &[0x11, 0x22, 0x33, 0x44])
///     .entry(1)
///     .build();
/// assert_eq!(cfg.regs.read(RA), Val::public(9));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConfigBuilder {
    regs: RegFile,
    mem: Memory,
    entry: Pc,
}

impl ConfigBuilder {
    /// An empty builder (entry 1).
    pub fn new() -> Self {
        ConfigBuilder {
            regs: RegFile::new(),
            mem: Memory::new(),
            entry: 1,
        }
    }

    /// Set a register.
    pub fn reg(mut self, r: Reg, v: Val) -> Self {
        self.regs.write(r, v);
        self
    }

    /// Set the stack pointer.
    pub fn rsp(self, addr: u64) -> Self {
        self.reg(Reg::RSP, Val::public(addr))
    }

    /// Write a public array at `base`.
    pub fn public_array(mut self, base: u64, data: &[u64]) -> Self {
        self.mem.write_array(base, data, Label::Public);
        self
    }

    /// Write a secret array at `base`.
    pub fn secret_array(mut self, base: u64, data: &[u64]) -> Self {
        self.mem.write_array(base, data, Label::Secret);
        self
    }

    /// Write a single labeled cell.
    pub fn cell(mut self, addr: u64, v: Val) -> Self {
        self.mem.write(addr, v);
        self
    }

    /// Set the entry program point (use the program's entry).
    pub fn entry(mut self, pc: Pc) -> Self {
        self.entry = pc;
        self
    }

    /// Finish.
    pub fn build(self) -> Config {
        Config::initial(self.regs, self.mem, self.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::reg::names::*;

    #[test]
    fn builder_reproduces_fig1() {
        let mut b = ProgramBuilder::new();
        b.entry("start");
        b.label("start");
        b.br(OpCode::Gt, [imm(4), reg(RA)], "then", "out");
        b.label("then");
        b.load(RB, [imm(0x40), reg(RA)]);
        b.load(RC, [imm(0x44), reg(RB)]);
        b.label("out");
        let program = b.build().unwrap();
        let cfg = ConfigBuilder::new()
            .reg(RA, Val::public(9))
            .public_array(0x40, &[1, 0, 2, 1])
            .public_array(0x44, &[0, 3, 1, 2])
            .secret_array(0x48, &[0x11, 0x22, 0x33, 0x44])
            .entry(program.entry)
            .build();
        let (expect_p, expect_c) = sct_core::examples::fig1();
        assert_eq!(program, expect_p);
        assert_eq!(cfg, expect_c);
    }

    #[test]
    fn dangling_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.jmp("nowhere");
        assert!(matches!(
            b.build(),
            Err(AsmError::UndefinedLabel { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.label("x");
    }

    #[test]
    fn trailing_label_points_past_program() {
        let mut b = ProgramBuilder::new();
        b.op(RA, OpCode::Add, [imm(1)]);
        b.label("end");
        assert_eq!(b.here(), 2);
        let p = b.build().unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.fetch(2).is_none());
    }

    #[test]
    fn call_targets_resolve() {
        let mut b = ProgramBuilder::new();
        b.call("f");
        b.op(RA, OpCode::Add, [imm(1)]);
        b.label("f");
        b.ret();
        let p = b.build().unwrap();
        match p.fetch(1).unwrap() {
            Instr::Call { callee, ret } => {
                assert_eq!(*callee, 3);
                assert_eq!(*ret, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_args_become_program_points() {
        let mut b = ProgramBuilder::new();
        b.jmpi([Arg::from("t")]);
        b.label("t");
        b.op(RA, OpCode::Add, [imm(1)]);
        let p = b.build().unwrap();
        match p.fetch(1).unwrap() {
            Instr::Jmpi { args } => assert_eq!(args[0], Operand::imm(2)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
