//! Assembly errors with source positions.

use crate::token::{Pos, Token};
use std::fmt;

/// An error produced while lexing, parsing, or assembling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A character the lexer does not understand.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it occurred.
        pos: Pos,
    },
    /// A malformed number literal.
    BadNumber {
        /// The literal text.
        text: String,
        /// Where it occurred.
        pos: Pos,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// The token found.
        found: Token,
        /// What the parser was expecting.
        expected: &'static str,
        /// Where it occurred.
        pos: Pos,
    },
    /// An unknown instruction or opcode mnemonic.
    UnknownMnemonic {
        /// The mnemonic text.
        name: String,
        /// Where it occurred.
        pos: Pos,
    },
    /// An unknown register name.
    UnknownRegister {
        /// The register text.
        name: String,
        /// Where it occurred.
        pos: Pos,
    },
    /// An unknown value-label annotation (only `pub`/`sec` are valid).
    UnknownValueLabel {
        /// The annotation text.
        name: String,
        /// Where it occurred.
        pos: Pos,
    },
    /// A label was used but never defined.
    UndefinedLabel {
        /// The label name.
        name: String,
        /// Where it was referenced.
        pos: Pos,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label name.
        name: String,
        /// Where the second definition occurred.
        pos: Pos,
    },
    /// `.entry` named a label that does not exist, or was given twice.
    BadEntry {
        /// Explanation.
        reason: String,
        /// Where it occurred.
        pos: Pos,
    },
    /// A semantic constraint was violated (e.g. non-boolean branch
    /// opcode, wrong operand count).
    Invalid {
        /// Explanation.
        reason: String,
        /// Where it occurred.
        pos: Pos,
    },
}

impl AsmError {
    /// The source position the error points at.
    pub fn pos(&self) -> Pos {
        match self {
            AsmError::UnexpectedChar { pos, .. }
            | AsmError::BadNumber { pos, .. }
            | AsmError::UnexpectedToken { pos, .. }
            | AsmError::UnknownMnemonic { pos, .. }
            | AsmError::UnknownRegister { pos, .. }
            | AsmError::UnknownValueLabel { pos, .. }
            | AsmError::UndefinedLabel { pos, .. }
            | AsmError::DuplicateLabel { pos, .. }
            | AsmError::BadEntry { pos, .. }
            | AsmError::Invalid { pos, .. } => *pos,
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnexpectedChar { ch, pos } => {
                write!(f, "{pos}: unexpected character `{ch}`")
            }
            AsmError::BadNumber { text, pos } => {
                write!(f, "{pos}: malformed number `{text}`")
            }
            AsmError::UnexpectedToken {
                found,
                expected,
                pos,
            } => write!(f, "{pos}: expected {expected}, found {found}"),
            AsmError::UnknownMnemonic { name, pos } => {
                write!(f, "{pos}: unknown mnemonic `{name}`")
            }
            AsmError::UnknownRegister { name, pos } => {
                write!(f, "{pos}: unknown register `{name}`")
            }
            AsmError::UnknownValueLabel { name, pos } => {
                write!(f, "{pos}: unknown value label `@{name}` (use `pub` or `sec`)")
            }
            AsmError::UndefinedLabel { name, pos } => {
                write!(f, "{pos}: undefined label `{name}`")
            }
            AsmError::DuplicateLabel { name, pos } => {
                write!(f, "{pos}: duplicate label `{name}`")
            }
            AsmError::BadEntry { reason, pos } => write!(f, "{pos}: bad .entry: {reason}"),
            AsmError::Invalid { reason, pos } => write!(f, "{pos}: {reason}"),
        }
    }
}

impl std::error::Error for AsmError {}
