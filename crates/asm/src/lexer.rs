//! A hand-written, line-oriented lexer.

use crate::error::AsmError;
use crate::token::{Pos, Spanned, Token};

/// Lex the whole source into tokens (with a trailing [`Token::Eof`]).
///
/// Comments run from `;` or `#` to end of line. Newlines are significant
/// (statements are line-oriented) and consecutive newlines collapse.
///
/// # Errors
///
/// Returns [`AsmError::UnexpectedChar`] or [`AsmError::BadNumber`] with
/// the offending position.
pub fn lex(src: &str) -> Result<Vec<Spanned>, AsmError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            out.push(Spanned {
                token: $tok,
                pos: $pos,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
                if !matches!(
                    out.last(),
                    None | Some(Spanned {
                        token: Token::Newline,
                        ..
                    })
                ) {
                    push!(Token::Newline, pos);
                }
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            ';' | '#' => {
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            ':' => {
                chars.next();
                col += 1;
                push!(Token::Colon, pos);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Token::Comma, pos);
            }
            '=' => {
                chars.next();
                col += 1;
                push!(Token::Equals, pos);
            }
            '[' => {
                chars.next();
                col += 1;
                push!(Token::LBracket, pos);
            }
            ']' => {
                chars.next();
                col += 1;
                push!(Token::RBracket, pos);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Token::LParen, pos);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Token::RParen, pos);
            }
            '@' => {
                chars.next();
                col += 1;
                push!(Token::At, pos);
            }
            '.' => {
                chars.next();
                col += 1;
                let mut name = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        name.push(c2);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(AsmError::UnexpectedChar { ch: '.', pos });
                }
                push!(Token::Directive(name), pos);
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        text.push(c2);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let cleaned = text.replace('_', "");
                let value = if let Some(hex) = cleaned
                    .strip_prefix("0x")
                    .or_else(|| cleaned.strip_prefix("0X"))
                {
                    u64::from_str_radix(hex, 16)
                } else {
                    cleaned.parse::<u64>()
                };
                match value {
                    Ok(n) => push!(Token::Number(n), pos),
                    Err(_) => return Err(AsmError::BadNumber { text, pos }),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        name.push(c2);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Token::Ident(name), pos);
            }
            other => return Err(AsmError::UnexpectedChar { ch: other, pos }),
        }
    }
    let end = Pos { line, col };
    if !matches!(
        out.last(),
        None | Some(Spanned {
            token: Token::Newline,
            ..
        })
    ) {
        push!(Token::Newline, end);
    }
    push!(Token::Eof, end);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_basic_instruction() {
        assert_eq!(
            toks("rb = load [0x40, ra]"),
            vec![
                Token::Ident("rb".into()),
                Token::Equals,
                Token::Ident("load".into()),
                Token::LBracket,
                Token::Number(0x40),
                Token::Comma,
                Token::Ident("ra".into()),
                Token::RBracket,
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let t = toks("; header\n\n\nfoo: ; trailing\n\nret\n");
        assert_eq!(
            t,
            vec![
                Token::Ident("foo".into()),
                Token::Colon,
                Token::Newline,
                Token::Ident("ret".into()),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers_decimal_hex_underscore() {
        assert_eq!(
            toks("1 0x2A 1_000"),
            vec![
                Token::Number(1),
                Token::Number(0x2a),
                Token::Number(1000),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn directives_and_annotations() {
        assert_eq!(
            toks(".secret 0x48 = 7@sec"),
            vec![
                Token::Directive("secret".into()),
                Token::Number(0x48),
                Token::Equals,
                Token::Number(7),
                Token::At,
                Token::Ident("sec".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn bad_number_reports_position() {
        let err = lex("  0xZZ").unwrap_err();
        assert_eq!(err.pos().col, 3);
        assert!(matches!(err, AsmError::BadNumber { .. }));
    }

    #[test]
    fn unexpected_char_reports_position() {
        let err = lex("ra $ rb").unwrap_err();
        assert!(matches!(err, AsmError::UnexpectedChar { ch: '$', .. }));
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("a\nbb\n  c").unwrap();
        let c = spanned
            .iter()
            .find(|s| s.token == Token::Ident("c".into()))
            .unwrap();
        assert_eq!(c.pos.line, 3);
        assert_eq!(c.pos.col, 3);
    }
}
