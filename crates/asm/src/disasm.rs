//! Disassembler: [`Program`] (plus optionally a [`Config`]) → source text
//! that reassembles to the same program.
//!
//! Program points that are targets of branches/calls get synthetic
//! `L<pc>:` labels; instructions are emitted in program-point order.
//! Gaps in the program-point space cannot be represented (the assembler
//! assigns contiguous points), so disassembly requires a contiguous
//! program — which is what the assembler and builder always produce.

use sct_core::{Config, Instr, Operand, Pc, Program, Val};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn fmt_val(v: Val) -> String {
    if v.label.is_secret() {
        format!("{:#x}@sec", v.bits)
    } else {
        format!("{:#x}", v.bits)
    }
}

fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => r.name(),
        Operand::Imm(v) => fmt_val(*v),
    }
}

fn fmt_operands(ops: &[Operand]) -> String {
    ops.iter().map(fmt_operand).collect::<Vec<_>>().join(", ")
}

/// Collect every program point that needs a label.
fn label_targets(program: &Program) -> BTreeSet<Pc> {
    let mut targets = BTreeSet::new();
    targets.insert(program.entry);
    for (pc, instr) in program.iter() {
        match instr {
            Instr::Br { tru, fls, .. } => {
                targets.insert(*tru);
                targets.insert(*fls);
            }
            Instr::Call { callee, ret } => {
                targets.insert(*callee);
                targets.insert(*ret);
            }
            // `next` pointers other than pc+1 are unrepresentable; assert
            // the contiguous discipline in debug builds.
            _ => {
                if let Some(n) = instr.next() {
                    debug_assert!(
                        matches!(instr, Instr::Call { .. }) || n == pc + 1,
                        "non-contiguous next pointer at {pc}"
                    );
                }
            }
        }
    }
    targets
}

/// Disassemble a program (no configuration directives).
pub fn disassemble(program: &Program) -> String {
    disassemble_with(program, None)
}

/// Disassemble a program together with an initial configuration's
/// `.reg`/`.mem` directives.
pub fn disassemble_with(program: &Program, config: Option<&Config>) -> String {
    let targets = label_targets(program);
    let label = |pc: Pc| format!("L{pc}");
    let mut out = String::new();
    let _ = writeln!(out, ".entry {}", label(program.entry));
    if let Some(cfg) = config {
        for (r, v) in cfg.regs.iter() {
            let _ = writeln!(out, ".reg {} = {}", r.name(), fmt_val(v));
        }
        for (a, v) in cfg.mem.iter() {
            if v.label.is_secret() {
                let _ = writeln!(out, ".secret {a:#x} = {:#x}", v.bits);
            } else {
                let _ = writeln!(out, ".public {a:#x} = {:#x}", v.bits);
            }
        }
    }
    let max = program.max_pc().unwrap_or(0);
    for (pc, instr) in program.iter() {
        if targets.contains(&pc) {
            let _ = writeln!(out, "{}:", label(pc));
        }
        let line = match instr {
            Instr::Op { dst, op, args, .. } => {
                format!("{} = {} {}", dst.name(), op.mnemonic(), fmt_operands(args))
            }
            Instr::Br { op, args, tru, fls } => {
                // `jmp` sugar round-trips as a plain branch; that is fine
                // because the lowering is semantically identical.
                format!(
                    "br {}({}), {}, {}",
                    op.mnemonic(),
                    fmt_operands(args),
                    label(*tru),
                    label(*fls)
                )
            }
            Instr::Load { dst, addr, .. } => {
                format!("{} = load [{}]", dst.name(), fmt_operands(addr))
            }
            Instr::Store { src, addr, .. } => {
                format!("store {}, [{}]", fmt_operand(src), fmt_operands(addr))
            }
            Instr::Jmpi { args } => format!("jmpi [{}]", fmt_operands(args)),
            Instr::Call { callee, .. } => format!("call {}", label(*callee)),
            Instr::Ret => "ret".to_string(),
            Instr::Fence { .. } => "fence".to_string(),
        };
        let _ = writeln!(out, "    {line}");
    }
    // Labels pointing one past the last instruction (fall-through exits).
    for &t in targets.iter().filter(|&&t| t == max + 1) {
        let _ = writeln!(out, "{}:", label(t));
    }
    out
}

/// `true` when the program uses only contiguous `next` pointers and
/// in-range branch labels, i.e. is representable in assembly text.
pub fn is_representable(program: &Program) -> bool {
    let max = program.max_pc().unwrap_or(0);
    let in_range = |n: Pc| n >= 1 && n <= max + 1;
    if !in_range(program.entry.max(1)) {
        return false;
    }
    for (pc, instr) in program.iter() {
        match instr {
            Instr::Call { callee, ret } => {
                if !in_range(*callee) || *ret != pc + 1 {
                    return false;
                }
            }
            Instr::Br { tru, fls, .. } => {
                if !in_range(*tru) || !in_range(*fls) {
                    return false;
                }
            }
            _ => {
                if let Some(n) = instr.next() {
                    if n != pc + 1 {
                        return false;
                    }
                }
            }
        }
    }
    // Contiguity of program points themselves.
    program
        .iter()
        .zip(1u64..)
        .all(|((pc, _), expect)| pc == expect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn fig1_round_trips() {
        let (p, c) = sct_core::examples::fig1();
        assert!(is_representable(&p));
        let text = disassemble_with(&p, Some(&c));
        let asm = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        assert_eq!(asm.program, p);
        assert_eq!(asm.config, c);
    }

    #[test]
    fn all_instruction_kinds_round_trip() {
        let src = "\
.entry L1
.reg rsp = 0x7c
L1:
    ra = add rb, 0x4
    rb = load [0x40, ra]
    store rb, [0x44]
    br lt(ra, rb), L1, L5
L5:
    jmpi [0xc, rb]
    call L8
    fence
L8:
    ret
";
        let asm = assemble(src).unwrap();
        let text = disassemble_with(&asm.program, Some(&asm.config));
        let again = assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(again.program, asm.program);
        assert_eq!(again.config, asm.config);
    }

    #[test]
    fn secret_immediates_round_trip() {
        let asm = assemble("x: store 7@sec, [0x40]").unwrap();
        let text = disassemble(&asm.program);
        let again = assemble(&text).unwrap();
        assert_eq!(again.program, asm.program);
    }

    #[test]
    fn representability_rejects_gaps() {
        let mut p = Program::new();
        p.entry = 1;
        p.insert(
            1,
            Instr::Fence { next: 5 }, // non-contiguous next
        );
        assert!(!is_representable(&p));
    }
}
