//! Tokens and source positions for the `sct` assembly language.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The start of the file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// An identifier: instruction mnemonic, register, or label name.
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal).
    Number(u64),
    /// A dot-directive such as `.entry`, `.reg`, `.public`, `.secret`.
    Directive(String),
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `@` (label annotation on immediates, e.g. `42@sec`)
    At,
    /// End of a line (statements are line-oriented).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::Directive(d) => write!(f, "directive `.{d}`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Equals => write!(f, "`=`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::At => write!(f, "`@`"),
            Token::Newline => write!(f, "end of line"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}
