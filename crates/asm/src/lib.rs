//! # sct-asm
//!
//! Assembly front-end for the `sct` ISA of
//! [`sct-core`](sct_core): a textual assembly language (lexer, parser,
//! two-pass assembler), a disassembler, and programmatic
//! program/configuration builders.
//!
//! The paper analyzes x86 binaries through angr; our reproduction works
//! on this ISA directly, so the litmus tests and case studies are written
//! either in assembly text or with the builders here.
//!
//! # Example
//!
//! ```
//! use sct_asm::assemble;
//!
//! let asm = assemble(r"
//! .entry start
//! .reg ra = 9
//! .public 0x40 = 1, 0, 2, 1
//! .secret 0x48 = 0x11, 0x22, 0x33, 0x44
//! start:
//!     br gt(4, ra), then, out
//! then:
//!     rb = load [0x40, ra]
//!     rc = load [0x44, rb]
//! out:
//! ").unwrap();
//!
//! // Assembled files carry both the program and the initial configuration.
//! let mut machine = sct_core::Machine::new(&asm.program, asm.config.clone());
//! assert!(machine.step(sct_core::Directive::FetchBranch(true)).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assembler;
pub mod ast;
pub mod builder;
pub mod disasm;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use assembler::{assemble, assemble_file, Assembled};
pub use builder::{imm, reg, sec, Arg, ConfigBuilder, ProgramBuilder};
pub use disasm::{disassemble, disassemble_with, is_representable};
pub use error::AsmError;
pub use parser::parse;
