//! Abstract syntax of assembly files.

use crate::token::Pos;
use sct_core::Label;

/// An operand as written in the source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OperandAst {
    /// A register reference.
    Reg(String, Pos),
    /// A number, optionally annotated `@pub` / `@sec`.
    Num(u64, Label, Pos),
    /// A reference to a code label, resolved to its program point.
    LabelRef(String, Pos),
}

impl OperandAst {
    /// The operand's source position.
    pub fn pos(&self) -> Pos {
        match self {
            OperandAst::Reg(_, p) | OperandAst::Num(_, _, p) | OperandAst::LabelRef(_, p) => *p,
        }
    }
}

/// One statement (an instruction; label definitions are separate items).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StmtKind {
    /// `rd = <op> a, b, ...`
    OpAssign {
        /// Destination register name.
        dst: String,
        /// Opcode mnemonic.
        mnemonic: String,
        /// Operands.
        args: Vec<OperandAst>,
    },
    /// `rd = load [a, b, ...]`
    Load {
        /// Destination register name.
        dst: String,
        /// Address operands.
        addr: Vec<OperandAst>,
    },
    /// `store v, [a, b, ...]`
    Store {
        /// Stored operand.
        src: OperandAst,
        /// Address operands.
        addr: Vec<OperandAst>,
    },
    /// `br <op>(a, b, ...), true_label, false_label`
    Br {
        /// Boolean opcode mnemonic.
        mnemonic: String,
        /// Condition operands.
        args: Vec<OperandAst>,
        /// True-branch label.
        tru: String,
        /// False-branch label.
        fls: String,
    },
    /// `jmp label` — sugar for an always-taken conditional branch.
    Jmp {
        /// Target label.
        target: String,
    },
    /// `jmpi [a, b, ...]`
    Jmpi {
        /// Target-address operands.
        args: Vec<OperandAst>,
    },
    /// `call label` (the return point is the next statement).
    Call {
        /// Callee label.
        target: String,
    },
    /// `ret`
    Ret,
    /// `fence`
    Fence,
}

/// A top-level item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// `name:`
    LabelDef {
        /// The label name.
        name: String,
        /// Where it was defined.
        pos: Pos,
    },
    /// An instruction statement.
    Stmt {
        /// The statement.
        kind: StmtKind,
        /// Where it started.
        pos: Pos,
    },
    /// `.entry name`
    Entry {
        /// Entry label name.
        name: String,
        /// Where it occurred.
        pos: Pos,
    },
    /// `.reg rX = value[@label]`
    RegInit {
        /// Register name.
        name: String,
        /// Initial value.
        value: u64,
        /// Security label.
        label: Label,
        /// Where it occurred.
        pos: Pos,
    },
    /// `.public base = v, v, ...` / `.secret base = v, v, ...` /
    /// `.mem base = v[@l], ...`
    MemInit {
        /// First address.
        base: u64,
        /// Values with labels, stored at consecutive addresses.
        values: Vec<(u64, Label)>,
        /// Where it occurred.
        pos: Pos,
    },
}

/// A parsed file: items in source order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct File {
    /// The items.
    pub items: Vec<Item>,
}
