//! Two-pass assembler: AST → ([`Program`], [`Config`]).

use crate::ast::{File, Item, OperandAst, StmtKind};
use crate::error::AsmError;
use crate::parser::parse;
use crate::token::Pos;
use sct_core::{Config, Instr, Memory, OpCode, Operand, Pc, Program, Reg, RegFile, Val};
use std::collections::BTreeMap;

/// The result of assembling a source file: the program, the initial
/// configuration described by its directives, and symbol metadata.
#[derive(Clone, Debug)]
pub struct Assembled {
    /// The program (instruction space).
    pub program: Program,
    /// The initial configuration (registers/memory from directives,
    /// program point at the entry).
    pub config: Config,
    /// Label name → program point.
    pub labels: BTreeMap<String, Pc>,
    /// Program point → source line (for diagnostics).
    pub lines: BTreeMap<Pc, u32>,
}

impl Assembled {
    /// Look up a label's program point.
    pub fn label(&self, name: &str) -> Option<Pc> {
        self.labels.get(name).copied()
    }
}

/// Assemble a source string.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
///
/// # Examples
///
/// ```
/// let asm = sct_asm::assemble(r"
/// .entry start
/// .reg ra = 9
/// .public 0x40 = 1, 0, 2, 1
/// .secret 0x48 = 0x11, 0x22, 0x33, 0x44
/// start:
///     br gt(4, ra), then, out
/// then:
///     rb = load [0x40, ra]
///     rc = load [0x44, rb]
/// out:
/// ").unwrap();
/// assert_eq!(asm.program.len(), 3);
/// assert_eq!(asm.config.pc, asm.label("start").unwrap());
/// ```
pub fn assemble(src: &str) -> Result<Assembled, AsmError> {
    let file = parse(src)?;
    assemble_file(&file)
}

/// Assemble an already-parsed file.
///
/// # Errors
///
/// Returns label-resolution and semantic errors.
pub fn assemble_file(file: &File) -> Result<Assembled, AsmError> {
    // Pass 1: assign program points (1-based, sequential) and bind labels.
    let mut labels: BTreeMap<String, Pc> = BTreeMap::new();
    let mut next_pc: Pc = 1;
    for item in &file.items {
        match item {
            Item::LabelDef { name, pos }
                if labels.insert(name.clone(), next_pc).is_some() => {
                    return Err(AsmError::DuplicateLabel {
                        name: name.clone(),
                        pos: *pos,
                    });
                }
            Item::Stmt { .. } => next_pc += 1,
            _ => {}
        }
    }
    let end_pc = next_pc;

    // Pass 2: emit instructions and configuration.
    let mut program = Program::new();
    let mut regs = RegFile::new();
    let mut mem = Memory::new();
    let mut lines = BTreeMap::new();
    let mut entry: Option<(Pc, Pos)> = None;
    let mut pc: Pc = 1;

    let lookup = |name: &str, pos: Pos| -> Result<Pc, AsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::UndefinedLabel {
                name: name.to_string(),
                pos,
            })
    };

    for item in &file.items {
        match item {
            Item::LabelDef { .. } => {}
            Item::Entry { name, pos } => {
                if entry.is_some() {
                    return Err(AsmError::BadEntry {
                        reason: "multiple .entry directives".into(),
                        pos: *pos,
                    });
                }
                entry = Some((lookup(name, *pos)?, *pos));
            }
            Item::RegInit {
                name,
                value,
                label,
                pos,
            } => {
                let reg = Reg::parse(name).ok_or_else(|| AsmError::UnknownRegister {
                    name: name.clone(),
                    pos: *pos,
                })?;
                regs.write(reg, Val::new(*value, *label));
            }
            Item::MemInit { base, values, .. } => {
                for (k, (v, l)) in values.iter().enumerate() {
                    mem.write(base + k as u64, Val::new(*v, *l));
                }
            }
            Item::Stmt { kind, pos } => {
                let next = pc + 1;
                let instr = lower_stmt(kind, *pos, next, &labels, end_pc)?;
                program.insert(pc, instr);
                lines.insert(pc, pos.line);
                pc = next;
            }
        }
    }

    program.entry = entry.map(|(n, _)| n).unwrap_or(1);
    let config = Config::initial(regs, mem, program.entry);
    Ok(Assembled {
        program,
        config,
        labels,
        lines,
    })
}

fn lower_operand(
    op: &OperandAst,
    labels: &BTreeMap<String, Pc>,
) -> Result<Operand, AsmError> {
    match op {
        OperandAst::Reg(name, pos) => Reg::parse(name)
            .map(Operand::Reg)
            .ok_or_else(|| AsmError::UnknownRegister {
                name: name.clone(),
                pos: *pos,
            }),
        OperandAst::Num(v, l, _) => Ok(Operand::Imm(Val::new(*v, *l))),
        OperandAst::LabelRef(name, pos) => labels
            .get(name)
            .map(|&n| Operand::Imm(Val::public(n)))
            .ok_or_else(|| AsmError::UndefinedLabel {
                name: name.clone(),
                pos: *pos,
            }),
    }
}

fn lower_operands(
    ops: &[OperandAst],
    labels: &BTreeMap<String, Pc>,
) -> Result<Vec<Operand>, AsmError> {
    ops.iter().map(|o| lower_operand(o, labels)).collect()
}

fn lower_stmt(
    kind: &StmtKind,
    pos: Pos,
    next: Pc,
    labels: &BTreeMap<String, Pc>,
    _end_pc: Pc,
) -> Result<Instr, AsmError> {
    let lookup = |name: &str| -> Result<Pc, AsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::UndefinedLabel {
                name: name.to_string(),
                pos,
            })
    };
    let parse_reg = |name: &str| -> Result<Reg, AsmError> {
        Reg::parse(name).ok_or_else(|| AsmError::UnknownRegister {
            name: name.to_string(),
            pos,
        })
    };
    Ok(match kind {
        StmtKind::OpAssign {
            dst,
            mnemonic,
            args,
        } => {
            let op = OpCode::parse(mnemonic).ok_or_else(|| AsmError::UnknownMnemonic {
                name: mnemonic.clone(),
                pos,
            })?;
            let args = lower_operands(args, labels)?;
            if let Some(n) = op.arity() {
                if args.len() != n {
                    return Err(AsmError::Invalid {
                        reason: format!(
                            "opcode `{mnemonic}` expects {n} operand(s), got {}",
                            args.len()
                        ),
                        pos,
                    });
                }
            } else if args.is_empty() {
                return Err(AsmError::Invalid {
                    reason: format!("opcode `{mnemonic}` needs at least one operand"),
                    pos,
                });
            }
            Instr::Op {
                dst: parse_reg(dst)?,
                op,
                args,
                next,
            }
        }
        StmtKind::Load { dst, addr } => Instr::Load {
            dst: parse_reg(dst)?,
            addr: lower_operands(addr, labels)?,
            next,
        },
        StmtKind::Store { src, addr } => Instr::Store {
            src: lower_operand(src, labels)?,
            addr: lower_operands(addr, labels)?,
            next,
        },
        StmtKind::Br {
            mnemonic,
            args,
            tru,
            fls,
        } => {
            let op = OpCode::parse(mnemonic).ok_or_else(|| AsmError::UnknownMnemonic {
                name: mnemonic.clone(),
                pos,
            })?;
            Instr::Br {
                op,
                args: lower_operands(args, labels)?,
                tru: lookup(tru)?,
                fls: lookup(fls)?,
            }
        }
        StmtKind::Jmp { target } => {
            let n = lookup(target)?;
            // Sugar: an always-true branch with both arms at the target.
            Instr::Br {
                op: OpCode::Eq,
                args: vec![Operand::imm(0), Operand::imm(0)],
                tru: n,
                fls: n,
            }
        }
        StmtKind::Jmpi { args } => Instr::Jmpi {
            args: lower_operands(args, labels)?,
        },
        StmtKind::Call { target } => Instr::Call {
            callee: lookup(target)?,
            ret: next,
        },
        StmtKind::Ret => Instr::Ret,
        StmtKind::Fence => Instr::Fence { next },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::reg::names::*;

    #[test]
    fn fig1_assembles_to_paper_program() {
        let asm = assemble(
            "\
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1
.public 0x44 = 0, 3, 1, 2
.secret 0x48 = 0x11, 0x22, 0x33, 0x44
start:
    br gt(4, ra), then, out
then:
    rb = load [0x40, ra]
    rc = load [0x44, rb]
out:
",
        )
        .unwrap();
        let (expect_p, expect_c) = sct_core::examples::fig1();
        assert_eq!(asm.program, expect_p);
        assert_eq!(asm.config, expect_c);
        assert_eq!(asm.label("then"), Some(2));
        assert_eq!(asm.label("out"), Some(4));
    }

    #[test]
    fn entry_defaults_to_one() {
        let asm = assemble("x: ra = add 1, 2").unwrap();
        assert_eq!(asm.program.entry, 1);
        assert_eq!(asm.config.pc, 1);
    }

    #[test]
    fn undefined_label_is_reported() {
        let err = assemble("x: jmp nowhere").unwrap_err();
        assert!(matches!(err, AsmError::UndefinedLabel { .. }), "{err}");
    }

    #[test]
    fn duplicate_label_is_reported() {
        let err = assemble("x:\nra = add 1\nx:\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { .. }));
    }

    #[test]
    fn arity_is_checked_at_assembly() {
        let err = assemble("x: ra = not 1, 2").unwrap_err();
        assert!(matches!(err, AsmError::Invalid { .. }), "{err}");
        let err = assemble("x: ra = add").unwrap_err();
        assert!(matches!(err, AsmError::Invalid { .. }), "{err}");
    }

    #[test]
    fn call_return_point_is_next_statement() {
        let asm = assemble(
            "\
main:
    call f
    ra = add 1
f:
    ret
",
        )
        .unwrap();
        match asm.program.fetch(1).unwrap() {
            Instr::Call { callee, ret } => {
                assert_eq!(*callee, 3);
                assert_eq!(*ret, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jmp_lowers_to_always_taken_branch() {
        let asm = assemble("a: jmp b\nb: ra = add 1\n").unwrap();
        match asm.program.fetch(1).unwrap() {
            Instr::Br { op, tru, fls, .. } => {
                assert_eq!(*op, OpCode::Eq);
                assert_eq!(*tru, 2);
                assert_eq!(*fls, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_refs_resolve_to_program_points() {
        let asm = assemble(
            "\
a:
    jmpi [target]
target:
    ra = add 1
",
        )
        .unwrap();
        match asm.program.fetch(1).unwrap() {
            Instr::Jmpi { args } => {
                assert_eq!(args[0], Operand::imm(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assembled_program_runs() {
        let asm = assemble(
            "\
.reg ra = 2
.public 0x40 = 10, 20, 30
start:
    rb = load [0x40, ra]
    rc = add rb, 5
",
        )
        .unwrap();
        let out = sct_core::sched::sequential::run_sequential(
            &asm.program,
            asm.config,
            sct_core::Params::paper(),
            1_000,
        )
        .unwrap();
        assert!(out.terminal);
        assert_eq!(out.config.regs.read(RC), Val::public(35));
    }

    #[test]
    fn lines_map_points_back_to_source() {
        let asm = assemble("a:\n    ra = add 1\n    rb = add 2\n").unwrap();
        assert_eq!(asm.lines.get(&1), Some(&2));
        assert_eq!(asm.lines.get(&2), Some(&3));
    }
}
