//! Recursive-descent parser for the line-oriented assembly syntax.
//!
//! ```text
//! .entry start
//! .reg ra = 9
//! .secret 0x48 = 0x11, 0x22, 0x33, 0x44
//! .public 0x40 = 1, 0, 2, 1
//!
//! start:
//!     br gt(4, ra), then, out
//! then:
//!     rb = load [0x40, ra]
//!     rc = load [0x44, rb]
//! out:
//!     rd = add ra, 4
//!     store rd, [0x40, ra]
//!     fence
//! ```

use crate::ast::{File, Item, OperandAst, StmtKind};
use crate::error::AsmError;
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Token};
use sct_core::{Label, Reg};

/// Parse a whole source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
pub fn parse(src: &str) -> Result<File, AsmError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        index: 0,
    }
    .file()
}

struct Parser {
    tokens: Vec<Spanned>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.tokens[self.index.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Spanned {
        let t = self.tokens[self.index.min(self.tokens.len() - 1)].clone();
        if self.index < self.tokens.len() - 1 {
            self.index += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, expected: &'static str) -> Result<Pos, AsmError> {
        let t = self.next();
        if &t.token == want {
            Ok(t.pos)
        } else {
            Err(AsmError::UnexpectedToken {
                found: t.token,
                expected,
                pos: t.pos,
            })
        }
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<(String, Pos), AsmError> {
        let t = self.next();
        match t.token {
            Token::Ident(s) => Ok((s, t.pos)),
            other => Err(AsmError::UnexpectedToken {
                found: other,
                expected,
                pos: t.pos,
            }),
        }
    }

    fn expect_number(&mut self, expected: &'static str) -> Result<(u64, Pos), AsmError> {
        let t = self.next();
        match t.token {
            Token::Number(n) => Ok((n, t.pos)),
            other => Err(AsmError::UnexpectedToken {
                found: other,
                expected,
                pos: t.pos,
            }),
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if &self.peek().token == tok {
            self.next();
            true
        } else {
            false
        }
    }

    fn end_of_line(&mut self) -> Result<(), AsmError> {
        let t = self.next();
        match t.token {
            Token::Newline | Token::Eof => Ok(()),
            other => Err(AsmError::UnexpectedToken {
                found: other,
                expected: "end of line",
                pos: t.pos,
            }),
        }
    }

    fn file(mut self) -> Result<File, AsmError> {
        let mut items = Vec::new();
        loop {
            match &self.peek().token {
                Token::Eof => break,
                Token::Newline => {
                    self.next();
                }
                Token::Directive(_) => {
                    self.directive(&mut items)?;
                    self.end_of_line()?;
                }
                _ => {
                    self.line(&mut items)?;
                }
            }
        }
        Ok(File { items })
    }

    /// A code line: zero or more `label:` prefixes, then an optional
    /// statement.
    fn line(&mut self, items: &mut Vec<Item>) -> Result<(), AsmError> {
        loop {
            // Lookahead: `ident :` is a label definition.
            if let Token::Ident(name) = &self.peek().token {
                let name = name.clone();
                if self.tokens.get(self.index + 1).map(|s| &s.token) == Some(&Token::Colon) {
                    let pos = self.next().pos; // ident
                    self.next(); // colon
                    items.push(Item::LabelDef { name, pos });
                    continue;
                }
            }
            break;
        }
        if matches!(self.peek().token, Token::Newline | Token::Eof) {
            self.end_of_line()?;
            return Ok(());
        }
        let (kind, pos) = self.statement()?;
        items.push(Item::Stmt { kind, pos });
        self.end_of_line()
    }

    fn directive(&mut self, items: &mut Vec<Item>) -> Result<(), AsmError> {
        let t = self.next();
        let Token::Directive(name) = t.token else {
            unreachable!()
        };
        let pos = t.pos;
        match name.as_str() {
            "entry" => {
                let (label, _) = self.expect_ident("entry label")?;
                items.push(Item::Entry { name: label, pos });
            }
            "reg" => {
                let (reg, rpos) = self.expect_ident("register name")?;
                if Reg::parse(&reg).is_none() {
                    return Err(AsmError::UnknownRegister {
                        name: reg,
                        pos: rpos,
                    });
                }
                self.expect(&Token::Equals, "`=`")?;
                let (value, label) = self.labeled_number(Label::Public)?;
                items.push(Item::RegInit {
                    name: reg,
                    value,
                    label,
                    pos,
                });
            }
            "public" | "secret" | "mem" => {
                let default = match name.as_str() {
                    "secret" => Label::Secret,
                    _ => Label::Public,
                };
                let (base, _) = self.expect_number("base address")?;
                self.expect(&Token::Equals, "`=`")?;
                let mut values = Vec::new();
                loop {
                    let (v, l) = self.labeled_number(default)?;
                    values.push((v, l));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                items.push(Item::MemInit { base, values, pos });
            }
            other => {
                return Err(AsmError::UnknownMnemonic {
                    name: format!(".{other}"),
                    pos,
                })
            }
        }
        Ok(())
    }

    /// `NUMBER [@pub|@sec]`, with a default label.
    fn labeled_number(&mut self, default: Label) -> Result<(u64, Label), AsmError> {
        let (value, _) = self.expect_number("number")?;
        if self.eat(&Token::At) {
            let (l, lpos) = self.expect_ident("`pub` or `sec`")?;
            let label = match l.as_str() {
                "pub" => Label::Public,
                "sec" => Label::Secret,
                _ => {
                    return Err(AsmError::UnknownValueLabel { name: l, pos: lpos });
                }
            };
            Ok((value, label))
        } else {
            Ok((value, default))
        }
    }

    fn operand(&mut self) -> Result<OperandAst, AsmError> {
        let t = self.next();
        match t.token {
            Token::Number(n) => {
                if self.eat(&Token::At) {
                    let (l, lpos) = self.expect_ident("`pub` or `sec`")?;
                    let label = match l.as_str() {
                        "pub" => Label::Public,
                        "sec" => Label::Secret,
                        _ => return Err(AsmError::UnknownValueLabel { name: l, pos: lpos }),
                    };
                    Ok(OperandAst::Num(n, label, t.pos))
                } else {
                    Ok(OperandAst::Num(n, Label::Public, t.pos))
                }
            }
            Token::Ident(name) => {
                if Reg::parse(&name).is_some() {
                    Ok(OperandAst::Reg(name, t.pos))
                } else {
                    Ok(OperandAst::LabelRef(name, t.pos))
                }
            }
            other => Err(AsmError::UnexpectedToken {
                found: other,
                expected: "operand (number, register, or label)",
                pos: t.pos,
            }),
        }
    }

    fn operand_list(&mut self, close: &Token) -> Result<Vec<OperandAst>, AsmError> {
        let mut out = Vec::new();
        if &self.peek().token == close {
            self.next();
            return Ok(out);
        }
        loop {
            out.push(self.operand()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            let t = self.next();
            if &t.token == close {
                return Ok(out);
            }
            return Err(AsmError::UnexpectedToken {
                found: t.token,
                expected: "`,` or closing bracket",
                pos: t.pos,
            });
        }
    }

    fn bracketed_operands(&mut self) -> Result<Vec<OperandAst>, AsmError> {
        self.expect(&Token::LBracket, "`[`")?;
        self.operand_list(&Token::RBracket)
    }

    fn statement(&mut self) -> Result<(StmtKind, Pos), AsmError> {
        let t = self.next();
        let pos = t.pos;
        let Token::Ident(head) = t.token else {
            return Err(AsmError::UnexpectedToken {
                found: t.token,
                expected: "instruction",
                pos,
            });
        };

        // `rd = ...` assignment forms.
        if Reg::parse(&head).is_some() && self.peek().token == Token::Equals {
            self.next(); // `=`
            let (mnemonic, mpos) = self.expect_ident("opcode or `load`")?;
            if mnemonic == "load" {
                let addr = self.bracketed_operands()?;
                return Ok((StmtKind::Load { dst: head, addr }, pos));
            }
            if sct_core::OpCode::parse(&mnemonic).is_none() {
                return Err(AsmError::UnknownMnemonic {
                    name: mnemonic,
                    pos: mpos,
                });
            }
            let mut args = Vec::new();
            if !matches!(self.peek().token, Token::Newline | Token::Eof) {
                loop {
                    args.push(self.operand()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            return Ok((
                StmtKind::OpAssign {
                    dst: head,
                    mnemonic,
                    args,
                },
                pos,
            ));
        }

        match head.as_str() {
            "store" => {
                let src = self.operand()?;
                self.expect(&Token::Comma, "`,`")?;
                let addr = self.bracketed_operands()?;
                Ok((StmtKind::Store { src, addr }, pos))
            }
            "br" => {
                let (mnemonic, mpos) = self.expect_ident("boolean opcode")?;
                match sct_core::OpCode::parse(&mnemonic) {
                    Some(op) if op.is_boolean() => {}
                    _ => {
                        return Err(AsmError::Invalid {
                            reason: format!("`{mnemonic}` is not a boolean opcode"),
                            pos: mpos,
                        })
                    }
                }
                self.expect(&Token::LParen, "`(`")?;
                let args = self.operand_list(&Token::RParen)?;
                self.expect(&Token::Comma, "`,`")?;
                let (tru, _) = self.expect_ident("true-branch label")?;
                self.expect(&Token::Comma, "`,`")?;
                let (fls, _) = self.expect_ident("false-branch label")?;
                Ok((
                    StmtKind::Br {
                        mnemonic,
                        args,
                        tru,
                        fls,
                    },
                    pos,
                ))
            }
            "jmp" => {
                let (target, _) = self.expect_ident("target label")?;
                Ok((StmtKind::Jmp { target }, pos))
            }
            "jmpi" => {
                let args = self.bracketed_operands()?;
                Ok((StmtKind::Jmpi { args }, pos))
            }
            "call" => {
                let (target, _) = self.expect_ident("callee label")?;
                Ok((StmtKind::Call { target }, pos))
            }
            "ret" => Ok((StmtKind::Ret, pos)),
            "fence" => Ok((StmtKind::Fence, pos)),
            other => Err(AsmError::UnknownMnemonic {
                name: other.to_string(),
                pos,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_shape() {
        let f = parse(
            "\
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1
.secret 0x48 = 0x11, 0x22

start:
    br gt(4, ra), then, out
then:
    rb = load [0x40, ra]
    rc = load [0x44, rb]
out:
",
        )
        .unwrap();
        assert_eq!(f.items.len(), 10);
        assert!(matches!(&f.items[0], Item::Entry { name, .. } if name == "start"));
        assert!(matches!(
            &f.items[5],
            Item::Stmt {
                kind: StmtKind::Br { .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_all_statement_forms() {
        let f = parse(
            "\
l:
    ra = add rb, 4
    ra = load [0x40]
    store ra, [0x40, rb]
    br lt(ra, rb), l, l
    jmp l
    jmpi [12, rb]
    call l
    ret
    fence
    ra = mov 7@sec
",
        )
        .unwrap();
        let stmts = f
            .items
            .iter()
            .filter(|i| matches!(i, Item::Stmt { .. }))
            .count();
        assert_eq!(stmts, 10);
    }

    #[test]
    fn rejects_non_boolean_branch_opcode() {
        let err = parse("x: br add(1, 2), x, x").unwrap_err();
        assert!(matches!(err, AsmError::Invalid { .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let err = parse("bogus ra, rb").unwrap_err();
        assert!(matches!(err, AsmError::UnknownMnemonic { .. }));
    }

    #[test]
    fn rejects_unknown_register_in_reg_init() {
        let err = parse(".reg zz = 4").unwrap_err();
        assert!(matches!(err, AsmError::UnknownRegister { .. }));
    }

    #[test]
    fn rejects_bad_value_label() {
        let err = parse(".reg ra = 4@top").unwrap_err();
        assert!(matches!(err, AsmError::UnknownValueLabel { .. }));
    }

    #[test]
    fn label_and_statement_on_one_line() {
        let f = parse("a: b: ret").unwrap();
        assert_eq!(f.items.len(), 3);
    }

    #[test]
    fn operands_distinguish_registers_and_labels() {
        let f = parse("x: jmpi [ra, x, 4]").unwrap();
        let Item::Stmt {
            kind: StmtKind::Jmpi { args },
            ..
        } = &f.items[1]
        else {
            panic!()
        };
        assert!(matches!(args[0], OperandAst::Reg(..)));
        assert!(matches!(args[1], OperandAst::LabelRef(..)));
        assert!(matches!(args[2], OperandAst::Num(..)));
    }
}
