//! Property test: disassembling any generated program and reassembling
//! it yields the identical program (and configuration).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sct_asm::{assemble, disassemble_with, is_representable};
use sct_core::proggen::{random_config, random_program, ProgGenOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn disassembly_reassembles_identically(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ProgGenOptions::default();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);
        prop_assert!(is_representable(&program));
        let text = disassemble_with(&program, Some(&config));
        let asm = assemble(&text)
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        prop_assert_eq!(asm.program, program);
        prop_assert_eq!(asm.config, config);
    }

    #[test]
    fn disassembly_is_stable(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ProgGenOptions::default();
        let program = random_program(&mut rng, &opts);
        let text = disassemble_with(&program, None);
        let asm = assemble(&text).unwrap();
        let text2 = disassemble_with(&asm.program, None);
        prop_assert_eq!(text, text2);
    }
}
