//! # sct-bench
//!
//! The benchmark/reproduction harness: Criterion benches (one per paper
//! table/figure plus ablations) and the `reproduce` binary that
//! regenerates every table and figure as text.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manifest;
pub mod render;
pub mod sweep;
