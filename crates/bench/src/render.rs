//! Text rendering of figures and tables.

use sct_litmus::figures::FigureRun;
use std::fmt::Write as _;

/// Render one figure replay as the paper's directive/effect/leakage
/// table, followed by the final reorder-buffer state.
pub fn render_figure(run: &FigureRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure {}: {}", run.id, run.title);
    let _ = writeln!(out, "\nProgram:");
    for (n, i) in run.program.iter() {
        let _ = writeln!(out, "  {n}: {i}");
    }
    let _ = writeln!(out, "\nRegisters:");
    for (r, v) in run.config.regs.iter() {
        let _ = writeln!(out, "  {r} = {v}");
    }
    let _ = writeln!(out, "Memory:");
    for (a, v) in run.config.mem.iter() {
        let _ = writeln!(out, "  {a:#x} = {v}");
    }
    if run.shown_from > 0 {
        let setup: Vec<String> = run
            .schedule
            .iter()
            .take(run.shown_from)
            .map(|d| d.to_string())
            .collect();
        let _ = writeln!(out, "\nSetup directives: {}", setup.join("; "));
    }
    let _ = writeln!(out, "\n{:<28} Leakage", "Directive");
    for (k, d) in run.schedule.iter().enumerate().skip(run.shown_from) {
        let obs: Vec<String> = run.step_obs[k].iter().map(|o| o.to_string()).collect();
        let _ = writeln!(out, "{:<28} {}", d.to_string(), obs.join(", "));
    }
    let _ = writeln!(out, "\nFinal reorder buffer:");
    for (i, t) in run.final_config.rob.iter() {
        let _ = writeln!(out, "  {i} ↦ {t}");
    }
    let _ = writeln!(out, "Final program point: {}", run.final_config.pc);
    let _ = writeln!(
        out,
        "Secret leaked: {}",
        if run.leaks_secret() { "YES" } else { "no" }
    );
    out
}

/// Render Table 1 (instructions and their transient forms) from the
/// implementation's own vocabulary.
pub fn render_table1() -> String {
    let rows: [(&str, &str, &str); 9] = [
        (
            "arithmetic operation",
            "(r = op(op, rv⃗, n'))",
            "(r = op(op, rv⃗)) unresolved; (r = vℓ) resolved value",
        ),
        (
            "conditional branch",
            "br(op, rv⃗, n_true, n_false)",
            "br(op, rv⃗, n0, (n_true, n_false)) unresolved; jump n0 resolved",
        ),
        (
            "memory load",
            "(r = load(rv⃗, n'))",
            "(r = load(rv⃗))_n; (r = load(rv⃗, (vℓ, j)))_n partially resolved; (r = vℓ{⊥|j, a})_n resolved",
        ),
        (
            "memory store",
            "store(rv, rv⃗, n')",
            "store(rv, rv⃗) unresolved; store(vℓ, aℓ) resolved",
        ),
        (
            "indirect jump",
            "jmpi(rv⃗)",
            "jmpi(rv⃗, n0) unresolved predicted to n0; jump n0 resolved",
        ),
        ("function call", "call(nf, nret)", "call (marker) + rsp bump + return-address store"),
        ("return", "ret", "ret (marker) + return-address load + rsp pop + jmpi"),
        ("speculation fence", "fence n", "fence (no resolution step)"),
        ("(jump sugar)", "jmp n", "lowered to an always-taken br"),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: instructions and their transient forms\n");
    let _ = writeln!(out, "{:<22} {:<24} Transient form(s)", "Instruction", "Physical form");
    for (a, b, c) in rows {
        let _ = writeln!(out, "{a:<22} {b:<24} {c}");
    }
    out
}
