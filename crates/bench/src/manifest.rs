//! Per-run provenance for bench artifacts.
//!
//! Every bench that emits a `BENCH_*.json` artifact stamps it with a
//! [`RunManifest`] — the git commit, a hash of the measurement
//! configuration, the steal seed, the host's CPU count, and the thread
//! counts exercised — and appends one line to `audit.jsonl` next to
//! the artifact. The manifest answers "what produced this number?"
//! months later, and the audit log accumulates a local history of runs
//! so a regression can be bisected against the environment (a 1-CPU CI
//! container and an 8-core workstation produce very different
//! "speedups"; without `host_cpus` in the artifact they are
//! indistinguishable).

use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Provenance captured once per bench invocation.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// `git rev-parse HEAD` at run time (`"unknown"` outside a
    /// checkout or when git is unavailable — never an error: a bench
    /// must run from a tarball too).
    pub git_commit: String,
    /// FNV-1a hash of the bench's rendered configuration string
    /// (bounds, rep counts, workload names). Two artifacts with equal
    /// `config_hash` measured the same thing.
    pub config_hash: u64,
    /// The deterministic seed the run used (0 = default victim
    /// rotation for work-stealing benches; benches without a seeded
    /// component pass 0).
    pub seed: u64,
    /// CPUs available to this process when the run started.
    pub host_cpus: usize,
    /// Worker-thread counts the bench exercised.
    pub threads: Vec<usize>,
}

impl RunManifest {
    /// Capture a manifest now: resolve the git commit, hash `config`,
    /// and record the host parallelism.
    pub fn capture(config: &str, seed: u64, threads: &[usize]) -> RunManifest {
        RunManifest {
            git_commit: git_head(),
            config_hash: fnv1a(config.as_bytes()),
            seed,
            host_cpus: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            threads: threads.to_vec(),
        }
    }

    /// The manifest as JSON object *fields* (no braces), indented for
    /// embedding into a hand-rolled `BENCH_*.json` artifact.
    pub fn json_fields(&self, indent: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{indent}\"git_commit\": \"{}\",",
            escape(&self.git_commit)
        );
        let _ = writeln!(out, "{indent}\"config_hash\": \"{:016x}\",", self.config_hash);
        let _ = writeln!(out, "{indent}\"seed\": {},", self.seed);
        let _ = writeln!(out, "{indent}\"host_cpus\": {},", self.host_cpus);
        let threads: Vec<String> = self.threads.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(out, "{indent}\"threads\": [{}],", threads.join(", "));
        out
    }

    /// Append one audit line for `artifact` to `audit.jsonl` in `dir`
    /// (created on first use). Each line is a self-contained JSON
    /// object: unix timestamp, artifact name, and the manifest.
    pub fn append_audit(&self, dir: &Path, artifact: &str) -> std::io::Result<()> {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let threads: Vec<String> = self.threads.iter().map(|t| t.to_string()).collect();
        let line = format!(
            "{{\"ts\": {ts}, \"artifact\": \"{}\", \"git_commit\": \"{}\", \
             \"config_hash\": \"{:016x}\", \"seed\": {}, \"host_cpus\": {}, \
             \"threads\": [{}]}}\n",
            escape(artifact),
            escape(&self.git_commit),
            self.config_hash,
            self.seed,
            self.host_cpus,
            threads.join(", ")
        );
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("audit.jsonl"))?;
        f.write_all(line.as_bytes())
    }
}

/// `git rev-parse HEAD`, or `"unknown"`.
fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// 64-bit FNV-1a (the artifact only needs a stable fingerprint, not a
/// cryptographic digest).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_stable_per_config() {
        let a = RunManifest::capture("workload=x bound=20", 0, &[1, 2, 4]);
        let b = RunManifest::capture("workload=x bound=20", 0, &[1, 2, 4]);
        let c = RunManifest::capture("workload=x bound=21", 0, &[1, 2, 4]);
        assert_eq!(a.config_hash, b.config_hash);
        assert_ne!(a.config_hash, c.config_hash);
        assert!(a.host_cpus >= 1);
        assert!(!a.git_commit.is_empty());
    }

    #[test]
    fn json_fields_carry_every_provenance_key() {
        let m = RunManifest::capture("cfg", 7, &[1, 8]);
        let fields = m.json_fields("  ");
        for key in ["git_commit", "config_hash", "seed", "host_cpus", "threads"] {
            assert!(fields.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(fields.contains("\"seed\": 7"));
        assert!(fields.contains("[1, 8]"));
    }

    #[test]
    fn audit_lines_append() {
        let dir = std::env::temp_dir().join(format!("sct-bench-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = RunManifest::capture("cfg", 0, &[1]);
        m.append_audit(&dir, "BENCH_test.json").unwrap();
        m.append_audit(&dir, "BENCH_test.json").unwrap();
        let log = std::fs::read_to_string(dir.join("audit.jsonl")).unwrap();
        assert_eq!(log.lines().count(), 2);
        assert!(log.lines().all(|l| l.contains("\"artifact\": \"BENCH_test.json\"")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
