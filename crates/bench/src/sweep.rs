//! The tractability experiment (§4.2): exploration cost versus
//! speculation bound, with and without forwarding-hazard detection.
//!
//! The paper reports that analysis remained tractable up to a bound of
//! **250** without forwarding hazards but only **20** with them; the
//! sweep regenerates that cliff on our case studies.

use pitchfork::{AnalysisSession, DetectorOptions};
use std::time::Instant;

/// One sweep measurement.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The speculation bound.
    pub bound: usize,
    /// Forwarding-hazard detection on?
    pub forwarding_hazards: bool,
    /// States expanded.
    pub states: usize,
    /// Schedules completed.
    pub schedules: usize,
    /// Machine steps taken.
    pub steps: usize,
    /// Whether exploration hit its budget.
    pub truncated: bool,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

/// Run the detector over `study` at each bound, in the given mode.
pub fn sweep(
    program: &sct_core::Program,
    config: &sct_core::Config,
    bounds: &[usize],
    forwarding_hazards: bool,
    max_states: usize,
) -> Vec<SweepPoint> {
    bounds
        .iter()
        .map(|&bound| {
            let mut options = if forwarding_hazards {
                DetectorOptions::v4_mode(bound)
            } else {
                DetectorOptions::v1_mode(bound)
            };
            options.explorer.max_states = max_states;
            // Count full exploration work, not first-hit shortcuts: keep
            // exploring past violations, as the paper's tool does when
            // collecting all flagged locations.
            options.explorer.stop_path_on_violation = false;
            options.explorer.max_violations = usize::MAX;
            let start = Instant::now();
            let report = AnalysisSession::with_options(options).analyze(program, config);
            SweepPoint {
                bound,
                forwarding_hazards,
                states: report.stats.states,
                schedules: report.stats.schedules,
                steps: report.stats.steps,
                truncated: report.stats.truncated,
                millis: start.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// A synthetic worst-case workload: a chain of `depth` bounds checks
/// each guarding a load pair — every branch multiplies the schedule
/// count, reproducing the path explosion that limited the paper's tool.
pub fn branch_chain(depth: usize) -> (sct_core::Program, sct_core::Config) {
    use sct_asm::builder::{imm, reg, ProgramBuilder};
    use sct_core::reg::names::{RA, RB, RC};
    use sct_core::OpCode;
    let mut b = ProgramBuilder::new();
    for k in 0..depth {
        b.br(
            OpCode::Gt,
            [imm(4), reg(RA)],
            &format!("l{k}"),
            &format!("l{k}"),
        );
        b.label(&format!("l{k}"));
        b.load(RB, [imm(0x40), reg(RA)]);
        b.load(RC, [imm(0x50), reg(RB)]);
    }
    let program = b.build().expect("branch chain builds");
    let config = sct_asm::ConfigBuilder::new()
        .reg(RA, sct_core::Val::public(9))
        .public_array(0x40, &[1, 0, 2, 1])
        .secret_array(0x44, &[7; 8])
        .public_array(0x50, &[0; 16])
        .entry(program.entry)
        .build();
    (program, config)
}

/// Render a sweep as an aligned table.
pub fn render(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>10}  trunc",
        "bound", "fwd", "states", "schedules", "steps", "ms"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>10} {:>10} {:>10} {:>10.1}  {}",
            p.bound,
            if p.forwarding_hazards { "on" } else { "off" },
            p.states,
            p.schedules,
            p.steps,
            p.millis,
            if p.truncated { "yes" } else { "no" }
        );
    }
    out
}
