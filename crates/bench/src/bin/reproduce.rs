//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce                 # everything
//! reproduce --fig 1         # one figure (1, 2, 4a, 4b, 5, 6, 7, 8, 11, 12, 13)
//! reproduce --table 1       # Table 1 or 2
//! reproduce --kocher        # the Kocher/v1.1/v4 litmus verdicts (§4.2)
//! reproduce --sweep         # bound-tractability sweep (§4.2 text)
//! reproduce --v1-bound 250 --v4-bound 20   # Table 2 bounds
//! ```

use sct_bench::{render, sweep};
use sct_litmus::figures;

struct Args {
    fig: Option<String>,
    table: Option<u32>,
    kocher: bool,
    sweep: bool,
    all: bool,
    v1_bound: usize,
    v4_bound: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        fig: None,
        table: None,
        kocher: false,
        sweep: false,
        all: true,
        v1_bound: 250,
        v4_bound: 20,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => {
                out.fig = args.next();
                out.all = false;
            }
            "--table" => {
                out.table = args.next().and_then(|s| s.parse().ok());
                out.all = false;
            }
            "--kocher" => {
                out.kocher = true;
                out.all = false;
            }
            "--sweep" => {
                out.sweep = true;
                out.all = false;
            }
            "--v1-bound" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    out.v1_bound = v;
                }
            }
            "--v4-bound" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    out.v4_bound = v;
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    out
}

fn show_figures(which: Option<&str>) {
    for run in figures::all_figures() {
        if which.is_none_or(|w| w == run.id) {
            println!("{}", "=".repeat(72));
            println!("{}", render::render_figure(&run));
        }
    }
}

fn show_table(n: u32, v1_bound: usize, v4_bound: usize) {
    match n {
        1 => println!("{}", render::render_table1()),
        2 => {
            let table = sct_casestudies::table2::run(v1_bound, v4_bound);
            println!("{table}");
        }
        other => eprintln!("no table {other} in the paper's evaluation"),
    }
}

fn show_kocher() {
    println!("Litmus corpus verdicts (§4.2 test suites)\n");
    println!(
        "{:<12} {:<10} {:<6} {:<6} {:<6}  description",
        "case", "seq-clean", "v1", "v4", "expect"
    );
    for case in sct_litmus::all_cases() {
        let got = sct_litmus::run_case(&case);
        let expect = match (case.expect.v1_violation, case.expect.v4_violation) {
            (true, _) => "✗",
            (false, true) => "f",
            (false, false) => "✓",
        };
        println!(
            "{:<12} {:<10} {:<6} {:<6} {:<6}  {}",
            case.name,
            got.sequentially_clean,
            got.v1_violation,
            got.v4_violation,
            expect,
            case.description
        );
    }
}

fn show_sweep() {
    println!("Tractability sweep (§4.2): exploration cost vs speculation bound\n");

    let study = sct_casestudies::ssl3::fact_variant();
    println!(
        "workload A: {} ({}), {} instructions (straight-line)\n",
        study.name,
        study.variant.name(),
        study.program.len()
    );
    println!("without forwarding-hazard detection (v1 mode):");
    let points = sweep::sweep(
        &study.program,
        &study.config,
        &[2, 4, 8, 16, 32, 64, 128, 250],
        false,
        200_000,
    );
    println!("{}", sweep::render(&points));
    println!("with forwarding-hazard detection (v4 mode):");
    let points = sweep::sweep(
        &study.program,
        &study.config,
        &[2, 4, 8, 12, 16, 20, 24],
        true,
        200_000,
    );
    println!("{}", sweep::render(&points));

    let (program, config) = sweep::branch_chain(8);
    println!(
        "workload B: synthetic chain of 8 bounds checks ({} instructions) —\n\
         every branch multiplies the schedule count (the paper's path\n\
         explosion; violations suppressed to measure full exploration)\n",
        program.len()
    );
    println!("without forwarding-hazard detection (v1 mode):");
    let points = sweep::sweep(&program, &config, &[2, 4, 8, 12, 16, 20, 24], false, 400_000);
    println!("{}", sweep::render(&points));
    println!("with forwarding-hazard detection (v4 mode):");
    let points = sweep::sweep(&program, &config, &[2, 4, 8, 12, 16], true, 400_000);
    println!("{}", sweep::render(&points));
}

fn main() {
    let args = parse_args();
    if args.all {
        show_figures(None);
        println!("{}", "=".repeat(72));
        show_table(1, args.v1_bound, args.v4_bound);
        println!("{}", "=".repeat(72));
        show_table(2, args.v1_bound, args.v4_bound);
        println!("{}", "=".repeat(72));
        show_kocher();
        println!("{}", "=".repeat(72));
        show_sweep();
        return;
    }
    if let Some(fig) = &args.fig {
        show_figures(Some(fig));
    }
    if let Some(t) = args.table {
        show_table(t, args.v1_bound, args.v4_bound);
    }
    if args.kocher {
        show_kocher();
    }
    if args.sweep {
        show_sweep();
    }
}
