//! Bench: replaying every paper figure on the reference machine
//! (Figures 1, 2, 4–8, 11–13). Measures the semantics' step throughput
//! on the exact traces the paper presents.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_core::{Machine, Params};
use sct_litmus::figures;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for run in figures::all_figures() {
        group.bench_function(format!("fig{}", run.id), |b| {
            b.iter(|| {
                let mut m = Machine::with_params(
                    &run.program,
                    run.config.clone(),
                    Params::paper(),
                );
                for d in run.schedule.iter() {
                    black_box(m.step(d).unwrap());
                }
                black_box(m.cfg.pc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
