//! Bench: Table 2 — Pitchfork analysis time per case study and mode
//! (§4.2.1's procedure: v1 mode with a deep bound, v4 mode with a
//! reduced bound).

use criterion::{criterion_group, criterion_main, Criterion};
use sct_casestudies::table2::{all_studies, analyze};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for study in all_studies() {
        let label = format!("{}/{}", study.name.replace(' ', "_"), study.variant.name());
        group.bench_function(format!("{label}/v1_bound40"), |b| {
            b.iter(|| black_box(analyze(&study, false, 40).has_violations()))
        });
        group.bench_function(format!("{label}/v4_bound12"), |b| {
            b.iter(|| black_box(analyze(&study, true, 12).has_violations()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
