//! Bench: incremental re-analysis — a cold CI-gate pass over the
//! litmus corpus versus a one-line-edit resubmit against the baseline
//! the cold pass saved.
//!
//! Besides the criterion timings, this bench records the ISSUE 9
//! acceptance numbers in `BENCH_incremental.json`: after editing a
//! single corpus entry, the diff-aware resubmit must re-explore under
//! 20% of the cold run's states (`reexplored_fraction`), and the
//! fence-removal edit must surface as a detected regression. Phases
//! are separated by [`sct_symx::retire_arena`], exactly like separate
//! CLI invocations of `pitchfork ci-gate`.

use criterion::{criterion_group, criterion_main, Criterion};
use pitchfork::incremental::save_baseline;
use pitchfork::{BaselineManifest, BatchItem, DetectorOptions, IncrementalReport, SessionBuilder};
use sct_core::Reg;
use sct_symx::retire_arena;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const BOUND: usize = 16;
/// The corpus entry the "one-line edit" mutates: dropping its fence
/// reintroduces the Spectre v1 leak the fence suppressed, so the edit
/// both dirties exactly one fingerprint and flips a verdict.
const EDIT_TARGET: &str = "spectre_v1_fenced";

fn baseline_dir() -> PathBuf {
    std::env::temp_dir().join(format!("sct_bench_incremental_{}", std::process::id()))
}

/// The shipped corpus as symbolic-`ra` batch items, optionally with
/// the one-line fence-removal edit applied to [`EDIT_TARGET`].
fn corpus_items(edit: bool) -> Vec<BatchItem> {
    let ra = Reg::parse("ra").expect("ra parses");
    sct_litmus::corpus::entries()
        .iter()
        .map(|e| {
            let mut source = e.source.to_string();
            if edit && e.name == EDIT_TARGET {
                source = source
                    .lines()
                    .filter(|l| l.trim() != "fence")
                    .collect::<Vec<_>>()
                    .join("\n");
            }
            let asm = sct_asm::assemble(&source).expect("corpus entry assembles");
            BatchItem::new(e.name, asm.program, asm.config).symbolize([ra])
        })
        .collect()
}

/// One `ci-gate`-shaped pass: a fresh session warm-started from the
/// baseline directory's pruned snapshot (cold start when absent), run
/// through the diff planner.
fn gate_pass(dir: &Path, items: Vec<BatchItem>, baseline: &BaselineManifest) -> IncrementalReport {
    let options = DetectorOptions::v1_mode(BOUND);
    let cache = dir.join(BaselineManifest::CACHE_NAME);
    let mut session = match SessionBuilder::new().options(options).cache(&cache).build() {
        Ok(s) => s,
        Err(_) => {
            let mut s = SessionBuilder::new()
                .options(options)
                .build()
                .expect("cache-less session build cannot fail");
            s.attach_cache(&cache);
            s
        }
    };
    session.analyze_incremental(items, baseline)
}

fn bench_incremental(c: &mut Criterion) {
    let dir = baseline_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("baseline dir");

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // Cold gate: empty epoch, empty baseline — every entry is New.
    group.bench_function("gate_cold", |b| {
        b.iter(|| {
            retire_arena();
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("baseline dir");
            std::hint::black_box(gate_pass(&dir, corpus_items(false), &BaselineManifest::empty()))
        })
    });

    // Seed the baseline the diff runs replay against.
    retire_arena();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("baseline dir");
    let cold = gate_pass(&dir, corpus_items(false), &BaselineManifest::empty());
    save_baseline(&dir, &cold.manifest).expect("baseline saves");
    let baseline = BaselineManifest::load_dir(&dir).expect("baseline loads");

    // Warm replay: nothing changed, every entry replays (zero
    // exploration) — the steady-state CI cost of an untouched corpus.
    group.bench_function("gate_replay", |b| {
        b.iter(|| {
            retire_arena();
            std::hint::black_box(gate_pass(&dir, corpus_items(false), &baseline))
        })
    });

    // One-line edit: exactly one entry re-explored against the warm
    // memo, the other 22 replayed.
    group.bench_function("gate_one_edit", |b| {
        b.iter(|| {
            retire_arena();
            std::hint::black_box(gate_pass(&dir, corpus_items(true), &baseline))
        })
    });
    group.finish();

    write_incremental_stats(&dir, &baseline, &cold);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One representative cold / replay / one-edit triple, recording the
/// acceptance-criteria numbers.
fn write_incremental_stats(dir: &Path, baseline: &BaselineManifest, cold: &IncrementalReport) {
    let cold_states = cold.states_explored;
    let cold_wall = cold.wall;

    retire_arena();
    let replay_start = Instant::now();
    let replay = gate_pass(dir, corpus_items(false), baseline);
    let replay_wall = replay_start.elapsed();

    retire_arena();
    let edit_start = Instant::now();
    let edited = gate_pass(dir, corpus_items(true), baseline);
    let edit_wall = edit_start.elapsed();

    let reexplored_fraction = edited.states_explored as f64 / cold_states.max(1) as f64;
    let speedup = cold_wall.as_secs_f64() / edit_wall.as_secs_f64().max(1e-9);
    let regressions: Vec<String> = edited
        .regressions()
        .iter()
        .map(|o| o.name.clone())
        .collect();

    let manifest = sct_bench::manifest::RunManifest::capture(
        &format!(
            "incremental litmus_corpus_v1_symbolic bound={BOUND} edit={EDIT_TARGET} entries={}",
            cold.outcomes.len()
        ),
        0,
        &[1],
    );
    let mut json = String::from("{\n");
    json.push_str(&manifest.json_fields("  "));
    let _ = writeln!(json, "  \"workload\": \"litmus corpus, symbolic ra, v1 mode\",");
    let _ = writeln!(json, "  \"bound\": {BOUND},");
    let _ = writeln!(json, "  \"entries\": {},", cold.outcomes.len());
    let _ = writeln!(json, "  \"edit_target\": \"{EDIT_TARGET}\",");
    let _ = writeln!(json, "  \"cold_wall_ms\": {},", cold_wall.as_millis());
    let _ = writeln!(json, "  \"cold_states\": {cold_states},");
    let _ = writeln!(json, "  \"replay_wall_us\": {},", replay_wall.as_micros());
    let _ = writeln!(json, "  \"replay_reused\": {},", replay.reused);
    let _ = writeln!(json, "  \"replay_states\": {},", replay.states_explored);
    let _ = writeln!(json, "  \"edit_wall_ms\": {},", edit_wall.as_millis());
    let _ = writeln!(json, "  \"edit_reused\": {},", edited.reused);
    let _ = writeln!(json, "  \"edit_reanalyzed\": {},", edited.reanalyzed);
    let _ = writeln!(json, "  \"edit_states\": {},", edited.states_explored);
    let _ = writeln!(json, "  \"edit_skip_ratio\": {:.4},", edited.skip_ratio());
    let _ = writeln!(json, "  \"reexplored_fraction\": {reexplored_fraction:.4},");
    let _ = writeln!(
        json,
        "  \"under_20pct\": {},",
        reexplored_fraction < 0.20
    );
    let _ = writeln!(json, "  \"edit_speedup\": {speedup:.1},");
    let regs: Vec<String> = regressions.iter().map(|n| format!("\"{n}\"")).collect();
    let _ = writeln!(json, "  \"regressions\": [{}],", regs.join(", "));
    let _ = writeln!(
        json,
        "  \"regression_detected\": {}",
        regressions.iter().any(|n| n == EDIT_TARGET)
    );
    json.push_str("}\n");

    let out_dir = criterion::Criterion::output_dir();
    let path = out_dir.join("BENCH_incremental.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
    let _ = manifest.append_audit(&out_dir, "BENCH_incremental.json");
    println!(
        "incremental one-edit resubmit: {}/{} states ({:.1}% of cold), {:.0}x faster, regression {}",
        edited.states_explored,
        cold_states,
        100.0 * reexplored_fraction,
        speedup,
        if regressions.iter().any(|n| n == EDIT_TARGET) {
            "detected"
        } else {
            "MISSED"
        }
    );
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
