//! Bench: raw machine throughput — the reference semantics executing
//! the donna case study sequentially, the random adversary, and the
//! symbolic machine on the same workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitchfork::machine::SymMachine;
use pitchfork::state::SymState;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sct_core::sched::random::{run_random, RandomSchedulerOptions};
use sct_core::sched::sequential::run_sequential;
use sct_core::Params;
use std::hint::black_box;

fn bench_machine(c: &mut Criterion) {
    let study = sct_casestudies::donna::fact_variant();
    let instrs = study.program.len() as u64;

    let mut group = c.benchmark_group("machine");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("sequential_donna", |b| {
        b.iter(|| {
            let out = run_sequential(
                &study.program,
                study.config.clone(),
                Params::paper(),
                1_000_000,
            )
            .unwrap();
            black_box(out.outcome.retired)
        })
    });
    group.bench_function("random_adversary_donna", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let run = run_random(
                &study.program,
                study.config.clone(),
                Params::paper(),
                RandomSchedulerOptions {
                    max_steps: 2_000,
                    max_rob: 24,
                    fetch_bias: 60,
                },
                &mut rng,
            );
            black_box(run.outcome.retired)
        })
    });
    group.bench_function("symbolic_replay_donna", |b| {
        // Drive the symbolic machine down the canonical sequential
        // schedule recorded by the reference machine.
        let seq = run_sequential(
            &study.program,
            study.config.clone(),
            Params::paper(),
            1_000_000,
        )
        .unwrap();
        let machine = SymMachine::new(&study.program);
        b.iter(|| {
            let mut st = SymState::from_config(&study.config);
            for d in seq.schedule.iter() {
                st = machine
                    .step(&st, d)
                    .unwrap()
                    .into_iter()
                    .next()
                    .unwrap();
            }
            black_box(st.pc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
