//! Bench: detection time over the Kocher-style litmus suites (§4.2's
//! sanity-check corpus), per case and for the whole corpus.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use pitchfork::{Detector, DetectorOptions};
use std::hint::black_box;

fn bench_kocher(c: &mut Criterion) {
    let mut group = c.benchmark_group("kocher");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for case in sct_litmus::kocher::all() {
        group.bench_function(case.name, |b| {
            let detector = Detector::new(DetectorOptions::v1_mode(case.bound));
            b.iter(|| black_box(detector.analyze(&case.program, &case.config).has_violations()))
        });
    }
    group.bench_function("whole_corpus_v1_and_v4", |b| {
        b.iter(|| {
            let mut flagged = 0usize;
            for case in sct_litmus::all_cases() {
                let v1 = Detector::new(DetectorOptions::v1_mode(case.bound))
                    .analyze(&case.program, &case.config);
                let v4 = Detector::new(DetectorOptions::v4_mode(case.bound))
                    .analyze(&case.program, &case.config);
                flagged += usize::from(v1.has_violations() || v4.has_violations());
            }
            black_box(flagged)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kocher);
criterion_main!(benches);
