//! Bench: exploration cost versus speculation bound, with and without
//! forwarding-hazard detection — the tractability observation of §4.2
//! (bound 250 feasible without forwarding hazards, only ~20 with).


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitchfork::{Detector, DetectorOptions};
use std::hint::black_box;

fn bench_bound_sweep(c: &mut Criterion) {
    let study = sct_casestudies::ssl3::fact_variant();
    let mut group = c.benchmark_group("bound_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for bound in [4usize, 8, 16, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("v1_mode", bound),
            &bound,
            |b, &bound| {
                let det = Detector::new(DetectorOptions::v1_mode(bound));
                b.iter(|| black_box(det.analyze(&study.program, &study.config).stats.states))
            },
        );
    }
    for bound in [4usize, 8, 12, 16, 20] {
        group.bench_with_input(
            BenchmarkId::new("v4_mode", bound),
            &bound,
            |b, &bound| {
                let det = Detector::new(DetectorOptions::v4_mode(bound));
                b.iter(|| black_box(det.analyze(&study.program, &study.config).stats.states))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bound_sweep);
criterion_main!(benches);
