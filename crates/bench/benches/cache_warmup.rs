//! Bench: warm-start caching — cold versus warm runs of the litmus
//! corpus (concrete v1/v4 passes plus a symbolic-`ra` v1 pass) and the
//! Table 2 matrix, through `sct-cache` snapshots.
//!
//! Besides the criterion timings (`BENCH_cache_warmup.json` gets the
//! group results), this bench records the ISSUE 2 acceptance numbers in
//! the same file: snapshot size, load time, the node disk-hit rate of
//! the warm run, and the solver-memo hit rate. Cold and warm phases are
//! separated by [`sct_symx::retire_arena`], exactly like separate CLI
//! invocations.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_cache::Snapshot;
use sct_litmus::{all_cases, harness};
use sct_symx::{arena_stats, retire_arena};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const V1_BOUND: usize = 40;
const V4_BOUND: usize = 20;

fn cache_path() -> PathBuf {
    std::env::temp_dir().join(format!("sct_bench_cache_warmup_{}.cache", std::process::id()))
}

/// One full workload pass (litmus corpus + Table 2) against `path`,
/// returning (explored states, solver queries, solver memo hits).
fn workload(path: &std::path::Path) -> (usize, usize, usize) {
    let cases = all_cases();
    let corpus = harness::run_corpus_cached(&cases, path).expect("corpus pass");
    let (_, t2_v1, t2_v4) =
        sct_casestudies::table2::run_cached(V1_BOUND, V4_BOUND, path).expect("table2 pass");
    let reports = [
        &corpus.verdicts.v1,
        &corpus.verdicts.v4,
        corpus.v1_symbolic(),
        &t2_v1,
        &t2_v4,
    ];
    (
        reports.iter().map(|r| r.totals.states).sum(),
        reports.iter().map(|r| r.totals.solver_queries).sum(),
        reports.iter().map(|r| r.totals.solver_memo_hits).sum(),
    )
}

fn bench_cache_warmup(c: &mut Criterion) {
    let path = cache_path();
    let _ = std::fs::remove_file(&path);

    let mut group = c.benchmark_group("cache_warmup");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // Cold pass: empty epoch, no snapshot on disk.
    group.bench_function("corpus_table2_cold", |b| {
        b.iter(|| {
            retire_arena();
            let _ = std::fs::remove_file(&path);
            black_box(workload(&path))
        })
    });
    // Warm pass: empty epoch, hydrated from the snapshot the previous
    // iteration saved.
    retire_arena();
    let _ = std::fs::remove_file(&path);
    workload(&path); // seed the snapshot
    group.bench_function("corpus_table2_warm", |b| {
        b.iter(|| {
            retire_arena();
            black_box(workload(&path))
        })
    });
    // Snapshot decode+hydrate alone, into an empty epoch.
    let bytes = std::fs::read(&path).expect("snapshot exists");
    group.bench_function("snapshot_load", |b| {
        b.iter(|| {
            retire_arena();
            let snap = Snapshot::decode(black_box(&bytes)).expect("decodes");
            black_box(snap.hydrate().expect("hydrates"))
        })
    });
    group.finish();

    write_warmup_stats(&path);
    let _ = std::fs::remove_file(&path);
}

/// One representative cold/warm pair, recording the acceptance-criteria
/// numbers (disk-hit rates, load time, snapshot size).
fn write_warmup_stats(path: &std::path::Path) {
    // Cold: empty epoch, no snapshot.
    retire_arena();
    let _ = std::fs::remove_file(path);
    let cold_start = Instant::now();
    let (cold_states, cold_queries, _) = workload(path);
    let cold_wall = cold_start.elapsed();
    let cold_nodes = arena_stats().nodes;
    let snapshot_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);

    // Warm: empty epoch, hydrate from the cold run's snapshot.
    retire_arena();
    let load_start = Instant::now();
    let load = sct_cache::load(path).expect("snapshot loads");
    let load_wall = load_start.elapsed();
    let warm_start = Instant::now();
    let (warm_states, warm_queries, warm_hits) = workload(path);
    let warm_wall = warm_start.elapsed();
    let warm_nodes = arena_stats().nodes;

    let fresh = warm_nodes.saturating_sub(load.added);
    let node_hit_rate = 1.0 - fresh as f64 / cold_nodes.max(1) as f64;
    let memo_hit_rate = warm_hits as f64 / warm_queries.max(1) as f64;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"litmus corpus (v1, v4, v1-symbolic) + table2\",");
    let _ = writeln!(json, "  \"cold_wall_ms\": {},", cold_wall.as_millis());
    let _ = writeln!(json, "  \"warm_wall_ms\": {},", warm_wall.as_millis());
    let _ = writeln!(json, "  \"cold_states\": {cold_states},");
    let _ = writeln!(json, "  \"warm_states\": {warm_states},");
    let _ = writeln!(json, "  \"cold_nodes\": {cold_nodes},");
    let _ = writeln!(json, "  \"snapshot_nodes_loaded\": {},", load.added);
    let _ = writeln!(json, "  \"warm_fresh_nodes\": {fresh},");
    let _ = writeln!(json, "  \"node_disk_hit_rate\": {node_hit_rate:.4},");
    let _ = writeln!(json, "  \"cold_solver_queries\": {cold_queries},");
    let _ = writeln!(json, "  \"warm_solver_queries\": {warm_queries},");
    let _ = writeln!(json, "  \"warm_solver_memo_hits\": {warm_hits},");
    let _ = writeln!(json, "  \"solver_memo_hit_rate\": {memo_hit_rate:.4},");
    let _ = writeln!(json, "  \"verdicts_loaded\": {},", load.verdicts_imported);
    let _ = writeln!(json, "  \"snapshot_bytes\": {snapshot_bytes},");
    let _ = writeln!(json, "  \"load_time_us\": {}", load_wall.as_micros());
    json.push_str("}\n");

    let out = criterion::Criterion::output_dir().join("BENCH_cache_warmup.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("could not write {}: {e}", out.display());
    } else {
        println!("wrote {}", out.display());
    }
}

criterion_group!(benches, bench_cache_warmup);
criterion_main!(benches);
