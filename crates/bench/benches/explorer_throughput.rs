//! Bench: worklist-engine throughput (states/sec) and explored-state
//! counts on fig1 and the whole litmus corpus at the paper's bounds
//! {20, 50, 250}, with deduplication on and off.
//!
//! Besides the criterion timings (`BENCH_explorer_throughput.json`),
//! this bench writes `BENCH_explorer_dedup.json` recording the state
//! counts both ways, quantifying exactly how much the fingerprint
//! visited-set prunes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pitchfork::{AnalysisSession, DetectorOptions, Report};
use sct_core::examples::fig1;
use sct_litmus::{all_cases, harness};
use std::fmt::Write as _;
use std::hint::black_box;

const BOUNDS: [usize; 3] = [20, 50, 250];

fn options(bound: usize, v4: bool, dedup: bool) -> DetectorOptions {
    let mut o = if v4 {
        DetectorOptions::v4_mode(bound)
    } else {
        DetectorOptions::v1_mode(bound)
    }
    .dedup(dedup);
    o.explorer.max_states = 200_000;
    o
}

/// Pre-parsed corpus items, so timed iterations measure exploration
/// only (cloning items is cheap; parsing `.sasm` fixtures is not).
fn corpus_items(bound: usize) -> Vec<pitchfork::BatchItem> {
    let cases = all_cases();
    let mut items = harness::batch_items(&cases);
    // One corpus-wide bound so the sweep actually exercises it.
    for item in &mut items {
        item.bound = Some(bound);
    }
    items
}

fn corpus_pass(items: &[pitchfork::BatchItem], bound: usize, v4: bool, dedup: bool) -> pitchfork::BatchReport {
    AnalysisSession::with_options(options(bound, v4, dedup)).run_batch(items.to_vec())
}

fn fig1_pass(bound: usize, v4: bool, dedup: bool) -> Report {
    let (p, cfg) = fig1();
    AnalysisSession::with_options(options(bound, v4, dedup)).analyze(&p, &cfg)
}

fn bench_explorer_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for bound in BOUNDS {
        let items = corpus_items(bound);
        group.throughput(Throughput::Elements(fig1_pass(bound, false, true).stats.states as u64));
        group.bench_with_input(BenchmarkId::new("fig1_v1_dedup", bound), &bound, |b, &n| {
            b.iter(|| black_box(fig1_pass(n, false, true).stats.states))
        });

        // Throughput is set per benchmark from that configuration's own
        // state count (the group value applies to subsequent benches).
        group.throughput(Throughput::Elements(
            corpus_pass(&items, bound, false, true).totals.states as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("corpus_v1_dedup", bound),
            &bound,
            |b, &n| b.iter(|| black_box(corpus_pass(&items, n, false, true).totals.states)),
        );
        group.throughput(Throughput::Elements(
            corpus_pass(&items, bound, false, false).totals.states as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("corpus_v1_nodedup", bound),
            &bound,
            |b, &n| b.iter(|| black_box(corpus_pass(&items, n, false, false).totals.states)),
        );
    }
    // The v4 cliff, at the paper's v4 bound.
    let items = corpus_items(20);
    group.throughput(Throughput::Elements(
        corpus_pass(&items, 20, true, true).totals.states as u64,
    ));
    group.bench_with_input(BenchmarkId::new("corpus_v4_dedup", 20), &20, |b, &n| {
        b.iter(|| black_box(corpus_pass(&items, n, true, true).totals.states))
    });
    group.throughput(Throughput::Elements(
        corpus_pass(&items, 20, true, false).totals.states as u64,
    ));
    group.bench_with_input(BenchmarkId::new("corpus_v4_nodedup", 20), &20, |b, &n| {
        b.iter(|| black_box(corpus_pass(&items, n, true, false).totals.states))
    });
    group.finish();

    write_dedup_counts();
}

/// One representative run per configuration, recording explored-state
/// counts with dedup on/off (the numbers the timings are explained by).
fn write_dedup_counts() {
    let mut json = String::from("{\n  \"workloads\": [\n");
    let mut first = true;
    let mut emit = |name: &str, bound: usize, on: (usize, usize, bool), off: (usize, bool)| {
        let sep = if first { "" } else { ",\n" };
        first = false;
        let _ = write!(
            json,
            "{sep}    {{\"workload\": \"{name}\", \"bound\": {bound}, \
             \"states_dedup\": {}, \"pruned\": {}, \"truncated_dedup\": {}, \
             \"states_nodedup\": {}, \"truncated_nodedup\": {}}}",
            on.0, on.1, on.2, off.0, off.1
        );
    };
    for bound in BOUNDS {
        let items = corpus_items(bound);
        for v4 in [false, true] {
            let name = if v4 { "corpus_v4" } else { "corpus_v1" };
            let on = corpus_pass(&items, bound, v4, true);
            let off = corpus_pass(&items, bound, v4, false);
            emit(
                name,
                bound,
                (on.totals.states, on.totals.deduped, on.totals.truncated > 0),
                (off.totals.states, off.totals.truncated > 0),
            );
            let fig_on = fig1_pass(bound, v4, true);
            let fig_off = fig1_pass(bound, v4, false);
            emit(
                if v4 { "fig1_v4" } else { "fig1_v1" },
                bound,
                (
                    fig_on.stats.states,
                    fig_on.stats.deduped,
                    fig_on.stats.truncated,
                ),
                (fig_off.stats.states, fig_off.stats.truncated),
            );
        }
    }
    json.push_str("\n  ]\n}\n");
    let path = criterion::Criterion::output_dir().join("BENCH_explorer_dedup.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, bench_explorer_throughput);
criterion_main!(benches);
