//! Bench: worklist-engine throughput (states/sec) and explored-state
//! counts on fig1 and the whole litmus corpus at the paper's bounds
//! {20, 50, 250}, with deduplication on and off.
//!
//! Besides the criterion timings (`BENCH_explorer_throughput.json`),
//! this bench writes `BENCH_explorer_dedup.json` recording the state
//! counts both ways, quantifying exactly how much the fingerprint
//! visited-set prunes, and `BENCH_telemetry_overhead.json` — an A/B of
//! the same serial corpus pass with the `sct-telemetry` registry
//! disabled and enabled, gating the instrumentation's overhead (the
//! CI metrics-smoke job asserts it stays under 3%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pitchfork::{AnalysisSession, DetectorOptions, Report};
use sct_core::examples::fig1;
use sct_litmus::{all_cases, harness};
use std::fmt::Write as _;
use std::hint::black_box;

const BOUNDS: [usize; 3] = [20, 50, 250];

fn options(bound: usize, v4: bool, dedup: bool) -> DetectorOptions {
    let mut o = if v4 {
        DetectorOptions::v4_mode(bound)
    } else {
        DetectorOptions::v1_mode(bound)
    }
    .dedup(dedup);
    o.explorer.max_states = 200_000;
    o
}

/// Pre-parsed corpus items, so timed iterations measure exploration
/// only (cloning items is cheap; parsing `.sasm` fixtures is not).
fn corpus_items(bound: usize) -> Vec<pitchfork::BatchItem> {
    let cases = all_cases();
    let mut items = harness::batch_items(&cases);
    // One corpus-wide bound so the sweep actually exercises it.
    for item in &mut items {
        item.bound = Some(bound);
    }
    items
}

fn corpus_pass(items: &[pitchfork::BatchItem], bound: usize, v4: bool, dedup: bool) -> pitchfork::BatchReport {
    AnalysisSession::with_options(options(bound, v4, dedup)).run_batch(items.to_vec())
}

fn fig1_pass(bound: usize, v4: bool, dedup: bool) -> Report {
    let (p, cfg) = fig1();
    AnalysisSession::with_options(options(bound, v4, dedup)).analyze(&p, &cfg)
}

fn bench_explorer_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for bound in BOUNDS {
        let items = corpus_items(bound);
        group.throughput(Throughput::Elements(fig1_pass(bound, false, true).stats.states as u64));
        group.bench_with_input(BenchmarkId::new("fig1_v1_dedup", bound), &bound, |b, &n| {
            b.iter(|| black_box(fig1_pass(n, false, true).stats.states))
        });

        // Throughput is set per benchmark from that configuration's own
        // state count (the group value applies to subsequent benches).
        group.throughput(Throughput::Elements(
            corpus_pass(&items, bound, false, true).totals.states as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("corpus_v1_dedup", bound),
            &bound,
            |b, &n| b.iter(|| black_box(corpus_pass(&items, n, false, true).totals.states)),
        );
        group.throughput(Throughput::Elements(
            corpus_pass(&items, bound, false, false).totals.states as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("corpus_v1_nodedup", bound),
            &bound,
            |b, &n| b.iter(|| black_box(corpus_pass(&items, n, false, false).totals.states)),
        );
    }
    // The v4 cliff, at the paper's v4 bound.
    let items = corpus_items(20);
    group.throughput(Throughput::Elements(
        corpus_pass(&items, 20, true, true).totals.states as u64,
    ));
    group.bench_with_input(BenchmarkId::new("corpus_v4_dedup", 20), &20, |b, &n| {
        b.iter(|| black_box(corpus_pass(&items, n, true, true).totals.states))
    });
    group.throughput(Throughput::Elements(
        corpus_pass(&items, 20, true, false).totals.states as u64,
    ));
    group.bench_with_input(BenchmarkId::new("corpus_v4_nodedup", 20), &20, |b, &n| {
        b.iter(|| black_box(corpus_pass(&items, n, true, false).totals.states))
    });
    group.finish();

    write_dedup_counts();
    write_telemetry_overhead();
}

/// One representative run per configuration, recording explored-state
/// counts with dedup on/off (the numbers the timings are explained by).
fn write_dedup_counts() {
    let mut json = String::from("{\n  \"workloads\": [\n");
    let mut first = true;
    let mut emit = |name: &str, bound: usize, on: (usize, usize, bool), off: (usize, bool)| {
        let sep = if first { "" } else { ",\n" };
        first = false;
        let _ = write!(
            json,
            "{sep}    {{\"workload\": \"{name}\", \"bound\": {bound}, \
             \"states_dedup\": {}, \"pruned\": {}, \"truncated_dedup\": {}, \
             \"states_nodedup\": {}, \"truncated_nodedup\": {}}}",
            on.0, on.1, on.2, off.0, off.1
        );
    };
    for bound in BOUNDS {
        let items = corpus_items(bound);
        for v4 in [false, true] {
            let name = if v4 { "corpus_v4" } else { "corpus_v1" };
            let on = corpus_pass(&items, bound, v4, true);
            let off = corpus_pass(&items, bound, v4, false);
            emit(
                name,
                bound,
                (on.totals.states, on.totals.deduped, on.totals.truncated > 0),
                (off.totals.states, off.totals.truncated > 0),
            );
            let fig_on = fig1_pass(bound, v4, true);
            let fig_off = fig1_pass(bound, v4, false);
            emit(
                if v4 { "fig1_v4" } else { "fig1_v1" },
                bound,
                (
                    fig_on.stats.states,
                    fig_on.stats.deduped,
                    fig_on.stats.truncated,
                ),
                (fig_off.stats.states, fig_off.stats.truncated),
            );
        }
    }
    json.push_str("\n  ]\n}\n");
    let path = criterion::Criterion::output_dir().join("BENCH_explorer_dedup.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// A/B overhead gate for the telemetry instrumentation: the same
/// serial corpus pass (bound 20, dedup on) with the registry disabled
/// and enabled. Rates use the *minimum* pass time per arm — the
/// noise-robust estimator — so the <3% gate holds on shared runners.
fn write_telemetry_overhead() {
    const BOUND: usize = 20;
    const REPS: usize = 5;
    let items = corpus_items(BOUND);
    // One warm-up pass so neither arm pays first-touch allocation.
    corpus_pass(&items, BOUND, false, true);

    let time_arm = |enabled: bool| -> (usize, f64) {
        sct_telemetry::set_enabled(enabled);
        let mut states = 0usize;
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            states = corpus_pass(&items, BOUND, false, true).totals.states;
            best = best.min(start.elapsed().as_secs_f64());
        }
        (states, states as f64 / best)
    };
    let (states, rate_off) = time_arm(false);
    let (_, rate_on) = time_arm(true);
    sct_telemetry::set_enabled(true);
    let overhead_pct = (rate_off / rate_on - 1.0) * 100.0;

    // The instrumented arm's own histograms, as the registry saw them.
    let hist = |name: &str| -> (u64, u64, u64) {
        sct_telemetry::global()
            .snapshot()
            .into_iter()
            .find(|m| m.name == name)
            .map(|m| (m.value, m.percentile_ns(0.50), m.percentile_ns(0.99)))
            .unwrap_or((0, 0, 0))
    };
    let (hit_n, hit_p50, hit_p99) = hist(sct_telemetry::names::SOLVER_CHECK_HIT);
    let (miss_n, miss_p50, miss_p99) = hist(sct_telemetry::names::SOLVER_CHECK_MISS);
    let (exp_n, exp_p50, exp_p99) = hist(sct_telemetry::names::STATE_EXPAND);

    let manifest = sct_bench::manifest::RunManifest::capture(
        &format!("telemetry_overhead corpus_v1_dedup bound={BOUND} reps={REPS}"),
        0,
        &[1],
    );
    let mut json = String::from("{\n");
    json.push_str(&manifest.json_fields("  "));
    let _ = write!(
        json,
        "  \"workload\": \"corpus_v1_dedup\",\n  \"bound\": {BOUND},\n  \"reps\": {REPS},\n  \
         \"states\": {states},\n  \"rate_off\": {rate_off:.1},\n  \"rate_on\": {rate_on:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"within_3pct\": {},\n  \
         \"solver_check_hit\": {{\"count\": {hit_n}, \"p50_ns\": {hit_p50}, \"p99_ns\": {hit_p99}}},\n  \
         \"solver_check_miss\": {{\"count\": {miss_n}, \"p50_ns\": {miss_p50}, \"p99_ns\": {miss_p99}}},\n  \
         \"state_expand\": {{\"count\": {exp_n}, \"p50_ns\": {exp_p50}, \"p99_ns\": {exp_p99}}}\n}}\n",
        overhead_pct < 3.0
    );
    let dir = criterion::Criterion::output_dir();
    let path = dir.join("BENCH_telemetry_overhead.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
    let _ = manifest.append_audit(&dir, "BENCH_telemetry_overhead.json");
    println!(
        "telemetry overhead: {overhead_pct:.2}% (off {rate_off:.0} states/s, on {rate_on:.0} states/s)"
    );
}

criterion_group!(benches, bench_explorer_throughput);
criterion_main!(benches);
