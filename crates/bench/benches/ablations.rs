//! Bench: ablations over the design knobs DESIGN.md calls out —
//! addressing mode, ROB capacity, RSB policy, and the solver's
//! candidate search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_core::sched::sequential::run_sequential;
use sct_core::{AddrMode, Params, RsbPolicy, StackDiscipline};
use sct_symx::{Expr, Solver};
use std::hint::black_box;

fn bench_addr_mode(c: &mut Criterion) {
    let study = sct_casestudies::secretbox::fact_variant();
    let mut group = c.benchmark_group("ablation_addr_mode");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, mode) in [("sum", AddrMode::Sum), ("x86", AddrMode::X86)] {
        let params = Params {
            addr_mode: mode,
            ..Params::paper()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = run_sequential(
                    &study.program,
                    study.config.clone(),
                    params,
                    1_000_000,
                )
                .unwrap();
                black_box(out.outcome.retired)
            })
        });
    }
    group.finish();
}

fn bench_rob_capacity(c: &mut Criterion) {
    let (program, config) = sct_core::examples::fig1();
    let mut group = c.benchmark_group("ablation_rob_capacity");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for cap in [2usize, 4, 8, 16] {
        let params = Params {
            rob_capacity: Some(cap),
            ..Params::paper()
        };
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| {
                let out =
                    run_sequential(&program, config.clone(), params, 10_000).unwrap();
                black_box(out.outcome.retired)
            })
        });
    }
    group.finish();
}

fn bench_rsb_policy(c: &mut Criterion) {
    // A call/ret round trip under the three empty-RSB policies.
    let study = sct_casestudies::meecbc::fact_variant();
    let mut group = c.benchmark_group("ablation_rsb_policy");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, policy) in [
        ("attacker_choice", RsbPolicy::AttackerChoice),
        ("refuse", RsbPolicy::Refuse),
        ("circular", RsbPolicy::Circular { stale: 1 }),
    ] {
        let params = Params {
            rsb_policy: policy,
            stack: StackDiscipline::default(),
            ..Params::paper()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = run_sequential(
                    &study.program,
                    study.config.clone(),
                    params,
                    1_000_000,
                )
                .unwrap();
                black_box(out.outcome.retired)
            })
        });
    }
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    use sct_core::OpCode;
    use sct_symx::VarId;
    let mut group = c.benchmark_group("ablation_solver");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let x = Expr::var(VarId(0));
    let in_bounds = Expr::app(OpCode::Gt, vec![Expr::constant(4), x]);
    let oob = Expr::app(OpCode::Eq, vec![in_bounds, Expr::constant(0)]);
    let solver = Solver::new();
    group.bench_function("feasibility_in_bounds", |b| {
        b.iter(|| black_box(solver.check(std::slice::from_ref(&in_bounds))))
    });
    group.bench_function("feasibility_oob", |b| {
        b.iter(|| black_box(solver.check(std::slice::from_ref(&oob))))
    });
    let addr = Expr::app(OpCode::Add, vec![Expr::constant(0x40), x]);
    group.bench_function("concretize_address", |b| {
        b.iter(|| black_box(solver.concretize(&addr, std::slice::from_ref(&oob))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_addr_mode,
    bench_rob_capacity,
    bench_rsb_policy,
    bench_solver
);
criterion_main!(benches);
