//! Bench: frontier-order A/B comparison on the Kocher gadgets.
//!
//! Every `SearchStrategy` reaches the same verdicts (the corpus
//! equivalence tests pin that); what differs — and what this bench
//! measures — is **states-to-first-witness**: how much of the schedule
//! space each order burns before producing a violation witness. Under
//! a tight state budget that number decides whether the tool finds the
//! bug at all.
//!
//! Besides the criterion timings, the bench writes
//! `BENCH_strategy_sweep.json`: per strategy, the per-gadget
//! first-witness state count and schedule depth, plus aggregate totals
//! (the `strategy` tag in the report JSON is the ISSUE 3 satellite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitchfork::{AnalysisSession, BatchReport, StrategyKind};
use sct_litmus::{harness, kocher};
use std::fmt::Write as _;
use std::hint::black_box;

/// The Kocher suite as batch items (per-case bounds preserved).
fn kocher_items() -> Vec<pitchfork::BatchItem> {
    harness::batch_items(&kocher::all())
}

fn pass(items: &[pitchfork::BatchItem], strategy: StrategyKind) -> BatchReport {
    AnalysisSession::builder()
        .v1_mode(16)
        .strategy(strategy)
        .build()
        .expect("uncached session")
        .run_batch(items.to_vec())
}

fn bench_strategy_sweep(c: &mut Criterion) {
    let items = kocher_items();
    let mut group = c.benchmark_group("strategy_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for strategy in StrategyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("kocher_v1", strategy.name()),
            &strategy,
            |b, &s| b.iter(|| black_box(pass(&items, s).totals.states)),
        );
    }
    group.finish();

    write_sweep_stats(&items);
}

/// One representative pass per strategy, recording the A/B numbers.
fn write_sweep_stats(items: &[pitchfork::BatchItem]) {
    let mut json = String::from("{\n  \"workload\": \"kocher gadgets, v1 mode\",\n  \"strategies\": [\n");
    let mut first_strategy = true;
    for strategy in StrategyKind::ALL {
        let report = pass(items, strategy);
        let witnesses = report.first_witnesses();
        let mean_states = if witnesses.is_empty() {
            0.0
        } else {
            witnesses.iter().map(|(_, s, _)| *s as f64).sum::<f64>() / witnesses.len() as f64
        };
        let sep = if first_strategy { "" } else { ",\n" };
        first_strategy = false;
        let _ = write!(
            json,
            "{sep}    {{\"strategy\": \"{}\", \"total_states\": {}, \"flagged\": {}, \
             \"mean_states_to_first_witness\": {mean_states:.1}, \"cases\": [",
            report.strategy, report.totals.states, report.totals.flagged,
        );
        let mut first_case = true;
        for (name, states, depth) in witnesses {
            let sep = if first_case { "" } else { ", " };
            first_case = false;
            let _ = write!(
                json,
                "{sep}{{\"name\": \"{name}\", \"states_to_first_witness\": {states}, \
                 \"witness_depth\": {depth}}}"
            );
        }
        let _ = write!(json, "]}}");
    }
    json.push_str("\n  ]\n}\n");
    let path = criterion::Criterion::output_dir().join("BENCH_strategy_sweep.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, bench_strategy_sweep);
criterion_main!(benches);
