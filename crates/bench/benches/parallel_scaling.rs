//! Bench: parallel-frontier scaling — corpus throughput (states/sec)
//! at 1/2/4/8 worker threads, cold (arena + memo retired before each
//! pass) and memo-warm, on the corpus_v4 workload the explorer
//! throughput bench established as the dedup stress case.
//!
//! Emits `BENCH_parallel_scaling.json` with the measured rates, the
//! host's CPU count (scaling above 1× requires real cores — a
//! single-core container measures lock overhead, not speedup), the
//! derived parallel-vs-serial ratios, per-configuration worker
//! utilization (busy/steal/parked nanoseconds from one extra
//! telemetry-instrumented pass, kept outside the timed reps so the
//! clock reads never skew the medians), and a provenance manifest
//! ([`sct_bench::manifest::RunManifest`]: git commit, config hash,
//! seed, host CPUs, thread counts); every run also appends a line to
//! `audit.jsonl` next to the artifact. On a single-core host the
//! ratio is labeled `oversubscription`, never `speedup` — there is no
//! parallelism to measure there, only scheduling overhead. Timing is
//! hand-rolled rather than criterion-driven because the cold
//! configuration must retire the process-wide arena *between* (not
//! inside) timed passes.

use pitchfork::{AnalysisSession, BatchItem, DetectorOptions};
use sct_bench::manifest::RunManifest;
use sct_litmus::{all_cases, harness};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const BOUND: usize = 20;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const COLD_REPS: usize = 7;
const WARM_REPS: usize = 21;

fn corpus_items() -> Vec<BatchItem> {
    let cases = all_cases();
    let mut items = harness::batch_items(&cases);
    for item in &mut items {
        item.bound = Some(BOUND);
    }
    items
}

fn options(threads: usize) -> DetectorOptions {
    let mut o = DetectorOptions::v4_mode(BOUND);
    o.explorer.threads = threads;
    o.explorer.max_states = 200_000;
    o
}

/// One timed corpus pass; returns (wall, states expanded).
fn pass(items: &[BatchItem], threads: usize) -> (Duration, usize) {
    let mut session = AnalysisSession::with_options(options(threads));
    let start = Instant::now();
    let report = session.run_batch(items.to_vec());
    (start.elapsed(), report.totals.states)
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

struct Sample {
    name: String,
    threads: usize,
    mode: &'static str,
    states: usize,
    median_ns: u128,
    per_second: f64,
    busy_ns: u64,
    steal_ns: u64,
    parked_ns: u64,
}

impl Sample {
    /// Fraction of worker wall time spent expanding states (vs
    /// hunting for work or parked). `0.0` when no worker counters
    /// moved — the 1-thread configurations run the serial engine.
    fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.steal_ns + self.parked_ns;
        if total == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / total as f64
    }
}

/// Cumulative (busy, steal, parked) nanoseconds summed across all
/// worker slots in the process-wide registry.
fn worker_totals() -> (u64, u64, u64) {
    let (mut busy, mut steal, mut parked) = (0u64, 0u64, 0u64);
    for m in sct_telemetry::global().snapshot() {
        if let Some(rest) = m.name.strip_prefix("worker_") {
            match rest.split('{').next() {
                Some("busy_ns") => busy += m.value,
                Some("steal_ns") => steal += m.value,
                Some("parked_ns") => parked += m.value,
                _ => {}
            }
        }
    }
    (busy, steal, parked)
}

fn measure(items: &[BatchItem], threads: usize, cold: bool) -> Sample {
    let reps = if cold { COLD_REPS } else { WARM_REPS };
    let mut walls = Vec::with_capacity(reps);
    let mut states = 0usize;
    if cold {
        for _ in 0..reps {
            // A fresh epoch before (outside) each timed pass: the pass
            // pays all interning and all solver misses.
            sct_symx::retire_arena();
            let (wall, s) = pass(items, threads);
            walls.push(wall);
            states = s;
        }
    } else {
        // Warm the process-wide memo once from a fresh epoch, then
        // time passes that answer almost everything from caches.
        sct_symx::retire_arena();
        let (_, _) = pass(items, threads);
        for _ in 0..reps {
            let (wall, s) = pass(items, threads);
            walls.push(wall);
            states = s;
        }
    }
    // One extra instrumented pass per configuration: telemetry on,
    // counter deltas captured, telemetry restored. Run after (never
    // between) the timed reps so per-state clock reads cannot leak
    // into the medians.
    if cold {
        sct_symx::retire_arena();
    }
    let was = sct_telemetry::set_enabled(true);
    let before = worker_totals();
    let _ = pass(items, threads);
    let after = worker_totals();
    sct_telemetry::set_enabled(was);
    let med = median(walls);
    let per_second = states as f64 / med.as_secs_f64();
    let mode = if cold { "cold" } else { "warm" };
    Sample {
        name: format!("corpus_v4_{mode}/threads={threads}"),
        threads,
        mode,
        states,
        median_ns: med.as_nanos(),
        per_second,
        busy_ns: after.0 - before.0,
        steal_ns: after.1 - before.1,
        parked_ns: after.2 - before.2,
    }
}

fn main() {
    // `cargo bench` passes harness flags; a plain main ignores them.
    let items = corpus_items();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut samples = Vec::new();
    for cold in [true, false] {
        for threads in THREAD_COUNTS {
            let s = measure(&items, threads, cold);
            println!(
                "{:<34} {:>9.0} states/s  (median {:>10} ns over {} states, \
                 utilization {:.2})",
                s.name,
                s.per_second,
                s.median_ns,
                s.states,
                s.utilization()
            );
            samples.push(s);
        }
    }

    let rate = |mode: &str, threads: usize| {
        samples
            .iter()
            .find(|s| s.mode == mode && s.threads == threads)
            .map(|s| s.per_second)
            .unwrap_or(f64::NAN)
    };
    let ratio_cold_4t = rate("cold", 4) / rate("cold", 1);
    let ratio_warm_4t = rate("warm", 4) / rate("warm", 1);
    // A "speedup" headline requires real cores to speed up on. With
    // one CPU the 4-thread passes time-slice a single core, so the
    // ratio measures oversubscription overhead — refusing the label
    // keeps a 1-core CI container from publishing a bogus scaling
    // claim (or a bogus regression).
    let ratio_kind = if host_cpus > 1 {
        "speedup"
    } else {
        "oversubscription"
    };
    println!(
        "host cpus: {host_cpus}; 4-thread {ratio_kind}: cold {ratio_cold_4t:.2}x, warm {ratio_warm_4t:.2}x"
    );
    if host_cpus == 1 {
        println!(
            "note: single core — 4 workers time-slice one CPU; this ratio is \
             oversubscription overhead, not a speedup"
        );
    } else if host_cpus < 4 {
        println!(
            "note: {host_cpus} core(s) available — the ≥2x-at-4-threads target \
             is only observable on ≥4 real cores"
        );
    }

    let manifest = RunManifest::capture(
        &format!(
            "workload=corpus_v4 bound={BOUND} max_states=200000 \
             cold_reps={COLD_REPS} warm_reps={WARM_REPS} threads={THREAD_COUNTS:?}"
        ),
        0,
        &THREAD_COUNTS,
    );
    let mut json = String::from("{\n  \"group\": \"parallel_scaling\",\n");
    json.push_str(&manifest.json_fields("  "));
    let _ = writeln!(json, "  \"workload\": \"corpus_v4\",");
    let _ = writeln!(json, "  \"bound\": {BOUND},");
    let _ = writeln!(
        json,
        "  \"cold_reps\": {COLD_REPS},\n  \"warm_reps\": {WARM_REPS},"
    );
    let _ = writeln!(json, "  \"ratio_kind\": \"{ratio_kind}\",");
    let _ = writeln!(json, "  \"ratio_cold_4t\": {ratio_cold_4t:.3},");
    let _ = writeln!(json, "  \"ratio_warm_4t\": {ratio_warm_4t:.3},");
    json.push_str("  \"benchmarks\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"mode\": \"{}\", \"states\": {}, \
             \"median_ns\": {}, \"per_second\": {:.1}, \"busy_ns\": {}, \"steal_ns\": {}, \
             \"parked_ns\": {}, \"utilization\": {:.3}}}{}",
            s.name,
            s.threads,
            s.mode,
            s.states,
            s.median_ns,
            s.per_second,
            s.busy_ns,
            s.steal_ns,
            s.parked_ns,
            s.utilization(),
            sep
        );
    }
    json.push_str("  ]\n}\n");
    let dir = criterion::Criterion::output_dir();
    let path = dir.join("BENCH_parallel_scaling.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    match manifest.append_audit(&dir, "BENCH_parallel_scaling.json") {
        Ok(()) => println!("appended {}", dir.join("audit.jsonl").display()),
        Err(e) => eprintln!("could not append audit.jsonl: {e}"),
    }
}
