//! Lock-contention probe: run the litmus corpus (v1 + v4) at a given
//! worker count and print the summed shared-lock contention and
//! thread-cache hits from the per-case reports.
//!
//! ```text
//! cargo run --release -p sct-bench --example lock_waits -- 4
//! ```
//!
//! This is the observability companion to the scaling bench: the
//! `arena_lock_waits` / `memo_lock_waits` columns are the signal the
//! work-stealing engine and the thread-local L1 caches exist to drive
//! down, and `local_cache_hits` shows where the avoided acquisitions
//! went.

use pitchfork::StrategyKind;
use sct_litmus::corpus;
use sct_litmus::harness::run_corpus_parallel;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cases = corpus::cases();
    let run = run_corpus_parallel(&cases, StrategyKind::Lifo, threads);
    let (mut arena, mut memo, mut local, mut steals, mut states) = (0usize, 0, 0, 0, 0);
    for o in run.v1.outcomes.iter().chain(run.v4.outcomes.iter()) {
        arena += o.report.stats.arena_lock_waits;
        memo += o.report.stats.memo_lock_waits;
        local += o.report.stats.local_cache_hits;
        steals += o.report.stats.steals;
        states += o.report.stats.states;
    }
    println!(
        "threads={threads} states={states} arena_lock_waits={arena} \
         memo_lock_waits={memo} local_cache_hits={local} steals={steals}"
    );
}
