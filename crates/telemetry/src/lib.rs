//! # sct-telemetry
//!
//! A `std`-only metrics layer for the pitchfork engine: a process-wide
//! [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s, and
//! **log-bucketed latency [`Histogram`]s**, plus a line-oriented JSONL
//! [`TraceWriter`] for structured run traces.
//!
//! # Design
//!
//! * **Histograms are log-bucketed** with fixed power-of-two boundaries
//!   in nanoseconds: bucket 0 counts zero-duration observations, bucket
//!   `i` (for `i >= 1`) counts values in `[2^(i-1), 2^i)`. Boundaries
//!   never move, so snapshots taken at different times (or merged from
//!   different threads) stay comparable, and a percentile readout is a
//!   single cumulative scan ([`MetricSnapshot::percentile_ns`]).
//! * **Recording is lock-free.** The shared [`Histogram`] uses relaxed
//!   atomics; the hot paths go further and batch into a thread-owned
//!   [`LocalHist`] — plain integer bumps, no shared cache line —
//!   **flushed on drop** (and optionally every N records), in the style
//!   of `sct-symx`'s `ThreadStats` thread-local counters.
//! * **Registration is get-or-create by name.** Metric structs are
//!   leaked on first registration so call sites can hold a
//!   `&'static Histogram` in a `LazyLock` and pay the registry lock
//!   exactly once per process.
//! * **A kill switch.** `SCT_TELEMETRY=0` (or `off`/`false`) in the
//!   environment disables span timing at the source: [`enabled`] is a
//!   single atomic load, and [`span_start`] returns `None` without
//!   touching the clock. [`set_enabled`] flips it at runtime (used by
//!   the A/B throughput gate in CI).
//!
//! # Exposition
//!
//! [`render_prometheus`] renders a snapshot in Prometheus text format:
//! `_bucket{le="..."}` cumulative series, `_sum` / `_count`, and a
//! human-oriented summary comment per histogram
//! (`# name p50=... p90=... p99=... max=...`). Metric names may embed a
//! label set (`worker_busy_ns{worker="0"}`); the renderer folds extra
//! labels into the series it derives.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime};

/// Fixed bucket count of every [`Histogram`]. The top bucket is
/// open-ended; bucket 38's upper bound is 2^38 ns ≈ 4.6 minutes, far
/// beyond any single span this engine times.
pub const BUCKETS: usize = 40;

/// The bucket index an observation of `ns` nanoseconds lands in:
/// bucket 0 for `ns == 0`, otherwise `1 + floor(log2 ns)`, clamped to
/// the open-ended top bucket.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The exclusive upper bound of bucket `i` in nanoseconds (`0` maps to
/// the zero bucket's inclusive bound, the top bucket to `u64::MAX`).
pub fn bucket_upper_ns(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => 1u64 << i,
    }
}

// ----- enable switch ------------------------------------------------------

fn env_enabled() -> bool {
    match std::env::var("SCT_TELEMETRY") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

static ENABLED: LazyLock<AtomicBool> = LazyLock::new(|| AtomicBool::new(env_enabled()));

/// Whether span timing is on (default yes; `SCT_TELEMETRY=0` in the
/// environment starts it off).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span timing on or off at runtime; returns the previous value.
/// Metrics already recorded stay in the registry either way.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Start a span: `Some(now)` when telemetry is enabled, `None` (no
/// clock read) when it is off.
#[inline]
pub fn span_start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Nanoseconds elapsed since a [`span_start`], or `None` if the span
/// never started (telemetry off at the time).
#[inline]
pub fn span_ns(start: Option<Instant>) -> Option<u64> {
    start.map(|t| saturating_ns(t.elapsed()))
}

/// A `Duration` as saturating nanoseconds.
#[inline]
pub fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ----- metric primitives --------------------------------------------------

/// A monotonically increasing counter.
#[derive(Default, Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Default, Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram (see [`bucket_of`] for the bucket
/// layout). All updates are relaxed atomics; for per-thread batching
/// use [`LocalHist`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// Exemplar: the job id supplied with the max observation (0 =
    /// none — job ids start at 1), so a p99/max spike links back to a
    /// concrete submission.
    max_job: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            max_job: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.observe_ns_tagged(ns, 0);
    }

    /// Record one observation of `ns` nanoseconds tagged with the job
    /// id it came from: when this observation is the new maximum, the
    /// family's exemplar follows it. (The untagged form passes job 0 =
    /// "no exemplar", keeping the invariant that `max_job` always
    /// describes the max observation.)
    #[inline]
    pub fn observe_ns_tagged(&self, ns: u64, job: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        let prev = self.max_ns.fetch_max(ns, Ordering::Relaxed);
        if ns >= prev {
            // Benign race: a concurrent equal-or-larger observation may
            // overwrite; either exemplar is a genuine max-tier sample.
            self.max_job.store(job, Ordering::Relaxed);
        }
    }

    /// Record one observation of a `Duration`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(saturating_ns(d));
    }

    /// Merge a batch of pre-bucketed observations (a [`LocalHist`]
    /// flush) in one pass. `max_job` is the exemplar tag of the
    /// batch's `max_ns` observation.
    pub fn merge(
        &self,
        buckets: &[u64; BUCKETS],
        count: u64,
        sum_ns: u64,
        max_ns: u64,
        max_job: u64,
    ) {
        if count == 0 {
            return;
        }
        for (slot, &n) in self.buckets.iter().zip(buckets.iter()) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum_ns.fetch_add(sum_ns, Ordering::Relaxed);
        let prev = self.max_ns.fetch_max(max_ns, Ordering::Relaxed);
        if max_ns >= prev {
            self.max_job.store(max_job, Ordering::Relaxed);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the bucket counts and aggregates
    /// (relaxed reads; concurrent recording may skew `count` vs the
    /// bucket sum by in-flight observations).
    pub fn snapshot(&self, name: &str) -> MetricSnapshot {
        MetricSnapshot {
            name: name.to_string(),
            kind: MetricKind::Histogram,
            value: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            max_job: self.max_job.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A thread-owned accumulation buffer in front of a shared
/// [`Histogram`]: recording is plain integer arithmetic, and the batch
/// is folded into the shared atomics on [`LocalHist::flush`] — called
/// automatically every `flush_every` records (if nonzero) and **on
/// drop**, mirroring how `sct-symx`'s per-thread stats are published.
pub struct LocalHist {
    target: &'static Histogram,
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
    max_job: u64,
    flush_every: u64,
}

impl LocalHist {
    /// A buffer that publishes only on explicit flush / drop.
    pub fn new(target: &'static Histogram) -> LocalHist {
        LocalHist::with_auto_flush(target, 0)
    }

    /// A buffer that additionally publishes every `every` records
    /// (`0` = never), bounding how stale a concurrent snapshot can be.
    pub fn with_auto_flush(target: &'static Histogram, every: u64) -> LocalHist {
        LocalHist {
            target,
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            max_job: 0,
            flush_every: every,
        }
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.record_ns_tagged(ns, 0);
    }

    /// Record one observation tagged with the job id it came from
    /// (see [`Histogram::observe_ns_tagged`]).
    #[inline]
    pub fn record_ns_tagged(&mut self, ns: u64, job: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        if ns >= self.max_ns {
            self.max_ns = ns;
            self.max_job = job;
        }
        if self.flush_every != 0 && self.count >= self.flush_every {
            self.flush();
        }
    }

    /// Record one observation of a `Duration`.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_ns(saturating_ns(d));
    }

    /// Publish the buffered batch to the shared histogram and reset.
    pub fn flush(&mut self) {
        if self.count == 0 {
            return;
        }
        self.target
            .merge(&self.buckets, self.count, self.sum_ns, self.max_ns, self.max_job);
        self.buckets = [0; BUCKETS];
        self.count = 0;
        self.sum_ns = 0;
        self.max_ns = 0;
        self.max_job = 0;
    }
}

impl Drop for LocalHist {
    fn drop(&mut self) {
        self.flush();
    }
}

// ----- registry -----------------------------------------------------------

/// What a [`MetricSnapshot`] describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Log-bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// The wire name (`counter` / `gauge` / `histogram`).
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Parse a wire name (inverse of [`MetricKind::name`]).
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// A point-in-time copy of one metric, flat and wire-friendly: for
/// counters and gauges only `value` is meaningful; for histograms
/// `value` is the observation count and `buckets` has [`BUCKETS`]
/// entries (tolerant consumers accept fewer).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetricSnapshot {
    /// Registered name (may embed a `{label="..."}` set).
    pub name: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Counter/gauge value; histogram observation count.
    pub value: u64,
    /// Histogram: sum of observed nanoseconds.
    pub sum_ns: u64,
    /// Histogram: largest observed value in nanoseconds.
    pub max_ns: u64,
    /// Histogram: exemplar job id of the `max_ns` observation (`0` =
    /// untagged; job ids start at 1).
    pub max_job: u64,
    /// Histogram bucket counts (non-cumulative), `[]` otherwise.
    pub buckets: Vec<u64>,
}

impl MetricSnapshot {
    /// The upper bound (ns) of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), capped at the exact observed maximum. `0` for
    /// an empty histogram.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean observed nanoseconds (`0` for an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.value).unwrap_or(0)
    }
}

/// A process-wide, name-keyed collection of metrics. Get-or-create
/// registration; every lookup after the first can be cached in a
/// `&'static` at the call site.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    hists: Mutex<BTreeMap<String, &'static Histogram>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production code uses
    /// [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = lock(&self.counters);
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Counter::default())))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = lock(&self.gauges);
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = lock(&self.hists);
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
    }

    /// Snapshot every registered metric, sorted by name (counters and
    /// gauges as single values, histograms with their buckets).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut out: Vec<MetricSnapshot> = Vec::new();
        for (name, c) in lock(&self.counters).iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                kind: MetricKind::Counter,
                value: c.get(),
                sum_ns: 0,
                max_ns: 0,
                max_job: 0,
                buckets: Vec::new(),
            });
        }
        for (name, g) in lock(&self.gauges).iter() {
            out.push(MetricSnapshot {
                name: name.clone(),
                kind: MetricKind::Gauge,
                value: g.get(),
                sum_ns: 0,
                max_ns: 0,
                max_job: 0,
                buckets: Vec::new(),
            });
        }
        for (name, h) in lock(&self.hists).iter() {
            out.push(h.snapshot(name));
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

static GLOBAL: LazyLock<MetricsRegistry> = LazyLock::new(MetricsRegistry::default);

/// The process-wide registry every engine layer records into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Shorthand for [`global`]`.counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Shorthand for [`global`]`.gauge(name)`.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Shorthand for [`global`]`.histogram(name)`.
pub fn histogram(name: &str) -> &'static Histogram {
    global().histogram(name)
}

/// The canonical metric names the engine records (the pitchfork crate
/// docs carry the full table).
pub mod names {
    /// `Solver::check` latency, answered from a memo layer (thread
    /// cache or stripe hit).
    pub const SOLVER_CHECK_HIT: &str = "solver_check_hit_ns";
    /// `Solver::check` latency through the full pipeline (memo miss).
    pub const SOLVER_CHECK_MISS: &str = "solver_check_miss_ns";
    /// Per-state expansion latency in the explorer (serial and
    /// parallel engines).
    pub const STATE_EXPAND: &str = "state_expand_ns";
    /// Latency of one steal attempt (`grab_batch`) in the
    /// work-stealing engine.
    pub const STEAL_ATTEMPT: &str = "steal_attempt_ns";
    /// Daemon job queue-wait latency (submit → dequeue).
    pub const JOB_QUEUE_WAIT: &str = "job_queue_wait_ns";
    /// Daemon job run latency (dequeue → finished).
    pub const JOB_RUN: &str = "job_run_ns";
    /// Per-job events dropped by the bounded retention window.
    pub const EVENTS_DROPPED: &str = "job_events_dropped";
    /// Arena nodes imported from warm-start snapshots shipped over
    /// `seed` requests.
    pub const SEED_NODES_ADDED: &str = "seed_nodes_added";
    /// Memoised verdicts imported from warm-start snapshots shipped
    /// over `seed` requests.
    pub const SEED_VERDICTS_IMPORTED: &str = "seed_verdicts_imported";
    /// Entries whose baseline verdict an incremental run replayed
    /// without exploring (fingerprint unchanged).
    pub const INCR_REUSE_TOTAL: &str = "incr_reuse_total";
    /// Entries an incremental run re-explored (dirty or new
    /// fingerprint).
    pub const INCR_REANALYZED_TOTAL: &str = "incr_reanalyzed_total";
    /// Arena nodes dropped by reachability pruning when a baseline
    /// snapshot was persisted.
    pub const INCR_PRUNE_NODES: &str = "incr_prune_nodes";
    /// Faults the `sct-faults` injector has fired (all points summed;
    /// zero in any run without an armed `SCT_FAULTS` plan).
    pub const FAULT_INJECTED: &str = "fault_injected_total";
    /// Jobs stopped by their per-job wall-clock deadline
    /// (`--deadline-ms`), ending as `timed-out`.
    pub const JOB_DEADLINE_EXCEEDED: &str = "job_deadline_exceeded_total";
    /// Jobs re-submitted from the write-ahead journal on daemon
    /// restart (`--serve --journal PATH`).
    pub const JOURNAL_REPLAYED: &str = "journal_replayed_total";
    /// Corrupt cache snapshots / baselines quarantined with a `.bad`
    /// rename and degraded to a cold start.
    pub const CACHE_QUARANTINED: &str = "cache_quarantined_total";

    /// Nanoseconds worker `i` spent expanding states.
    pub fn worker_busy(i: usize) -> String {
        format!("worker_busy_ns{{worker=\"{i}\"}}")
    }

    /// Nanoseconds worker `i` spent hunting for work (steal sweeps).
    pub fn worker_steal(i: usize) -> String {
        format!("worker_steal_ns{{worker=\"{i}\"}}")
    }

    /// Nanoseconds worker `i` spent parked on the idle condvar.
    pub fn worker_parked(i: usize) -> String {
        format!("worker_parked_ns{{worker=\"{i}\"}}")
    }

    /// Corpus shards the fleet coordinator dispatched to worker `i`.
    pub fn fleet_dispatch(i: usize) -> String {
        format!("fleet_dispatch_total{{worker=\"{i}\"}}")
    }

    /// Shard attempts the coordinator retried after worker `i` died or
    /// errored.
    pub fn fleet_retry(i: usize) -> String {
        format!("fleet_retry_total{{worker=\"{i}\"}}")
    }

    /// End-to-end shard latency (submit → terminal status) on worker
    /// `i`, as observed by the coordinator.
    pub fn fleet_shard(i: usize) -> String {
        format!("fleet_shard_ns{{worker=\"{i}\"}}")
    }
}

// ----- Prometheus-style exposition ---------------------------------------

fn family_of(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (&name[..i], Some(name[i + 1..].trim_end_matches('}'))),
        None => (name, None),
    }
}

fn series(family: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut all = String::new();
    if let Some(l) = labels {
        all.push_str(l);
    }
    if let Some(e) = extra {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(e);
    }
    if all.is_empty() {
        format!("{family}{suffix}")
    } else {
        format!("{family}{suffix}{{{all}}}")
    }
}

/// Render a registry snapshot in Prometheus text exposition format.
/// Histograms become cumulative `_bucket{le="..."}` series plus `_sum`
/// and `_count`, each preceded by a `# name p50=... p90=... p99=...
/// max=... mean=...` summary comment (with a ` max_job=N` exemplar tag
/// when the max observation was recorded with a job id); counters and
/// gauges are single sample lines. Output order follows the (sorted) snapshot, so the
/// format is stable run to run.
pub fn render_prometheus(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for s in snaps {
        let (family, labels) = family_of(&s.name);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} {}", s.kind.name());
            last_family = family.to_string();
        }
        match s.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                let _ = writeln!(out, "{} {}", s.name, s.value);
            }
            MetricKind::Histogram => {
                let exemplar = if s.max_job != 0 {
                    format!(" max_job={}", s.max_job)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "# {} p50={} p90={} p99={} max={} mean={} count={}{}",
                    s.name,
                    s.percentile_ns(0.50),
                    s.percentile_ns(0.90),
                    s.percentile_ns(0.99),
                    s.max_ns,
                    s.mean_ns(),
                    s.value,
                    exemplar,
                );
                let mut cumulative = 0u64;
                let last_nonzero = s.buckets.iter().rposition(|&n| n != 0).unwrap_or(0);
                for (i, &n) in s.buckets.iter().enumerate().take(last_nonzero + 1) {
                    cumulative += n;
                    let le = format!("le=\"{}\"", bucket_upper_ns(i));
                    let _ = writeln!(
                        out,
                        "{} {}",
                        series(family, "_bucket", labels, Some(&le)),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{} {}",
                    series(family, "_bucket", labels, Some("le=\"+Inf\"")),
                    s.value
                );
                let _ = writeln!(out, "{} {}", series(family, "_sum", labels, None), s.sum_ns);
                let _ = writeln!(out, "{} {}", series(family, "_count", labels, None), s.value);
            }
        }
    }
    out
}

/// Render what moved between two scrapes of the same registry — the
/// payload behind `pitchfork metrics --watch N`. One line per changed
/// metric, in `cur`'s order:
///
/// - counters: `name +delta (rate/s)`;
/// - gauges: `name value (was old)`;
/// - histograms: `name +count obs (mean of new = X ns)` from the
///   count/sum deltas.
///
/// Unchanged metrics are skipped, so an idle daemon renders to an
/// empty string; metrics absent from `prev` (registered between
/// scrapes) delta against zero. `elapsed_secs` only scales the rate
/// column.
pub fn render_delta(prev: &[MetricSnapshot], cur: &[MetricSnapshot], elapsed_secs: f64) -> String {
    let old: std::collections::BTreeMap<&str, &MetricSnapshot> =
        prev.iter().map(|s| (s.name.as_str(), s)).collect();
    let mut out = String::new();
    for s in cur {
        let before = old.get(s.name.as_str());
        let prev_value = before.map_or(0, |p| p.value);
        match s.kind {
            MetricKind::Counter => {
                let delta = s.value.saturating_sub(prev_value);
                if delta == 0 {
                    continue;
                }
                let rate = if elapsed_secs > 0.0 {
                    delta as f64 / elapsed_secs
                } else {
                    0.0
                };
                let _ = writeln!(out, "{} +{delta} ({rate:.1}/s)", s.name);
            }
            MetricKind::Gauge => {
                if before.is_some() && s.value == prev_value {
                    continue;
                }
                let _ = writeln!(out, "{} {} (was {prev_value})", s.name, s.value);
            }
            MetricKind::Histogram => {
                let count = s.value.saturating_sub(prev_value);
                if count == 0 {
                    continue;
                }
                let sum = s
                    .sum_ns
                    .saturating_sub(before.map_or(0, |p| p.sum_ns));
                let _ = writeln!(
                    out,
                    "{} +{count} obs (mean of new = {} ns)",
                    s.name,
                    sum / count.max(1),
                );
            }
        }
    }
    out
}

// ----- JSONL trace writer -------------------------------------------------

/// A value in a trace record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on write).
    Str(String),
}

impl TraceValue {
    fn write_to(&self, out: &mut String) {
        match self {
            TraceValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            TraceValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            TraceValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            TraceValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// An append-only JSONL trace: one provenance header line (manifest
/// style, like the repo's `audit.jsonl`) followed by one record per
/// event, each stamped with a millisecond timestamp **relative to the
/// writer's creation** (`t_ms`), so traces are diffable across runs.
/// Shared by reference across threads; each record is written and
/// flushed under one short lock.
pub struct TraceWriter {
    inner: Mutex<BufWriter<File>>,
    origin: Instant,
}

impl TraceWriter {
    /// Open `path` for append and write the provenance header:
    /// `{"ts": <unix-seconds>, "kind": "trace", <header fields>}`.
    pub fn create(path: &Path, header: &[(&str, TraceValue)]) -> io::Result<TraceWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let writer = TraceWriter {
            inner: Mutex::new(BufWriter::new(file)),
            origin: Instant::now(),
        };
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut line = format!("{{\"ts\": {ts}, \"kind\": \"trace\"");
        for (k, v) in header {
            let _ = write!(line, ", \"{k}\": ");
            v.write_to(&mut line);
        }
        line.push('}');
        writer.write_line(&line)?;
        Ok(writer)
    }

    /// Milliseconds since the writer was created (the `t_ms` clock).
    pub fn elapsed_ms(&self) -> u64 {
        self.origin.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// Append one record: `{"t_ms": ..., "event": ..., ["job": ...,]
    /// <fields>}`. Errors are swallowed — tracing must never take the
    /// analysis down.
    pub fn record(&self, job: Option<u64>, event: &str, fields: &[(&str, TraceValue)]) {
        let mut line = format!("{{\"t_ms\": {}, \"event\": ", self.elapsed_ms());
        TraceValue::Str(event.to_string()).write_to(&mut line);
        if let Some(id) = job {
            let _ = write!(line, ", \"job\": {id}");
        }
        for (k, v) in fields {
            let _ = write!(line, ", \"{k}\": ");
            v.write_to(&mut line);
        }
        line.push('}');
        let _ = self.write_line(&line);
    }

    fn write_line(&self, line: &str) -> io::Result<()> {
        let mut w = lock(&self.inner);
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every non-top bucket's values are below its upper bound and
        // at least half of it.
        for i in 1..BUCKETS - 1 {
            let upper = bucket_upper_ns(i);
            assert_eq!(bucket_of(upper - 1), i);
            assert_eq!(bucket_of(upper / 2), i);
            assert_eq!(bucket_of(upper), i + 1);
        }
    }

    #[test]
    fn render_delta_shows_only_what_moved() {
        let snap = |name: &str, kind: MetricKind, value: u64, sum_ns: u64| MetricSnapshot {
            name: name.to_string(),
            kind,
            value,
            sum_ns,
            max_ns: 0,
            max_job: 0,
            buckets: Vec::new(),
        };
        let prev = vec![
            snap("jobs_total", MetricKind::Counter, 10, 0),
            snap("idle_total", MetricKind::Counter, 4, 0),
            snap("queue_depth", MetricKind::Gauge, 3, 0),
            snap("run_ns", MetricKind::Histogram, 2, 1_000),
        ];
        let cur = vec![
            snap("jobs_total", MetricKind::Counter, 16, 0),
            snap("idle_total", MetricKind::Counter, 4, 0),
            snap("queue_depth", MetricKind::Gauge, 3, 0),
            snap("run_ns", MetricKind::Histogram, 4, 5_000),
            snap("born_total", MetricKind::Counter, 2, 0),
        ];
        let text = render_delta(&prev, &cur, 3.0);
        assert!(text.contains("jobs_total +6 (2.0/s)"), "{text}");
        // Untouched counter and gauge render nothing.
        assert!(!text.contains("idle_total"), "{text}");
        assert!(!text.contains("queue_depth"), "{text}");
        // Histogram delta: 2 new observations averaging 2000 ns.
        assert!(text.contains("run_ns +2 obs (mean of new = 2000 ns)"), "{text}");
        // A metric born between scrapes deltas against zero.
        assert!(text.contains("born_total +2"), "{text}");
        // Nothing moved → empty string.
        assert_eq!(render_delta(&cur, &cur, 1.0), "");
    }

    #[test]
    fn percentiles_read_bucket_upper_bounds() {
        let h = Histogram::default();
        // 90 fast observations (~500ns), 10 slow (~1ms).
        for _ in 0..90 {
            h.observe_ns(500);
        }
        for _ in 0..10 {
            h.observe_ns(1_000_000);
        }
        let s = h.snapshot("t");
        assert_eq!(s.value, 100);
        assert_eq!(s.percentile_ns(0.50), 512);
        assert_eq!(s.percentile_ns(0.90), 512);
        // p99 falls in the 2^20 bucket; capped at the true max.
        assert_eq!(s.percentile_ns(0.99), 1_000_000.min(s.max_ns));
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.mean_ns(), (90 * 500 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::default().snapshot("t");
        assert_eq!(s.percentile_ns(0.5), 0);
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn local_hist_flushes_on_drop() {
        let target: &'static Histogram = Box::leak(Box::new(Histogram::default()));
        {
            let mut local = LocalHist::new(target);
            local.record_ns(100);
            local.record_ns(200);
            assert_eq!(target.count(), 0, "nothing published before drop");
        }
        assert_eq!(target.count(), 2);
        let s = target.snapshot("t");
        assert_eq!(s.sum_ns, 300);
        assert_eq!(s.max_ns, 200);
    }

    #[test]
    fn max_observation_carries_its_job_exemplar() {
        let h = Histogram::default();
        h.observe_ns_tagged(100, 3);
        h.observe_ns_tagged(900, 7);
        h.observe_ns_tagged(500, 11);
        let s = h.snapshot("t");
        assert_eq!(s.max_ns, 900);
        assert_eq!(s.max_job, 7, "exemplar follows the max observation");
        // Untagged observations report job 0 = no exemplar.
        h.observe_ns(5_000);
        assert_eq!(h.snapshot("t").max_job, 0);
        // The exposition summary shows the tag only when nonzero.
        let tagged = Histogram::default();
        tagged.observe_ns_tagged(42, 9);
        let text = render_prometheus(&[tagged.snapshot("job_run_ns")]);
        assert!(text.contains("max_job=9"), "missing exemplar in:\n{text}");
        let text = render_prometheus(&[h.snapshot("t")]);
        assert!(!text.contains("max_job"), "untagged exemplar leaked into:\n{text}");
    }

    #[test]
    fn local_hist_batches_preserve_the_exemplar() {
        let target: &'static Histogram = Box::leak(Box::new(Histogram::default()));
        let mut local = LocalHist::new(target);
        local.record_ns_tagged(300, 2);
        local.record_ns_tagged(800, 5);
        local.record_ns_tagged(100, 8);
        local.flush();
        let s = target.snapshot("t");
        assert_eq!(s.max_ns, 800);
        assert_eq!(s.max_job, 5);
        // A later batch with a smaller max does not steal the exemplar.
        local.record_ns_tagged(400, 13);
        local.flush();
        assert_eq!(target.snapshot("t").max_job, 5);
    }

    #[test]
    fn local_hist_auto_flush_threshold() {
        let target: &'static Histogram = Box::leak(Box::new(Histogram::default()));
        let mut local = LocalHist::with_auto_flush(target, 4);
        for _ in 0..7 {
            local.record_ns(1);
        }
        assert_eq!(target.count(), 4, "one threshold flush published");
        drop(local);
        assert_eq!(target.count(), 7);
    }

    #[test]
    fn registry_get_or_create_and_snapshot_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b_counter").add(3);
        r.counter("b_counter").inc();
        r.gauge("c_gauge").set(9);
        r.histogram("a_hist").observe_ns(5);
        let snaps = r.snapshot();
        let names: Vec<&str> = snaps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a_hist", "b_counter", "c_gauge"]);
        assert_eq!(snaps[1].value, 4);
        assert_eq!(snaps[2].value, 9);
        assert_eq!(snaps[0].buckets.len(), BUCKETS);
    }

    #[test]
    fn exposition_is_stable_and_cumulative() {
        let r = MetricsRegistry::new();
        r.counter("requests_total").add(2);
        let h = r.histogram("lat_ns");
        h.observe_ns(3); // bucket 2
        h.observe_ns(5); // bucket 3
        h.observe_ns(5);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum 13\n"));
        assert!(text.contains("lat_ns_count 3\n"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 2\n"));
        // Rendering twice is byte-identical (stable format).
        assert_eq!(text, render_prometheus(&r.snapshot()));
    }

    #[test]
    fn labeled_counter_renders_label_set_verbatim() {
        let r = MetricsRegistry::new();
        r.counter(&names::worker_busy(0)).add(7);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE worker_busy_ns counter"));
        assert!(text.contains("worker_busy_ns{worker=\"0\"} 7\n"));
    }

    #[test]
    fn trace_writer_header_and_records() {
        let dir = std::env::temp_dir().join(format!("sct-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = TraceWriter::create(
            &path,
            &[
                ("host_cpus", TraceValue::U64(4)),
                ("artifact", TraceValue::Str("unit \"test\"".into())),
            ],
        )
        .unwrap();
        w.record(Some(1), "job-started", &[("name", TraceValue::Str("x.sasm".into()))]);
        w.record(None, "shutdown", &[]);
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\": \"trace\""));
        assert!(lines[0].contains("\"host_cpus\": 4"));
        assert!(lines[0].contains("\"artifact\": \"unit \\\"test\\\"\""));
        assert!(lines[1].contains("\"event\": \"job-started\""));
        assert!(lines[1].contains("\"job\": 1"));
        assert!(lines[2].contains("\"event\": \"shutdown\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_switch_suppresses_spans() {
        let was = set_enabled(false);
        assert!(span_start().is_none());
        set_enabled(true);
        assert!(span_start().is_some());
        set_enabled(was);
    }
}
