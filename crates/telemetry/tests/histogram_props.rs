//! Property tests for the histogram primitives.
//!
//! The load-bearing one records a random batch of durations from **8
//! concurrent threads** — a mix of direct atomic observation and
//! [`LocalHist`] buffers with randomized auto-flush thresholds, dropped
//! (not explicitly flushed) at thread exit — and asserts the shared
//! histogram converges to exactly the same totals as a serial
//! reference fold. Nothing may be lost, double-counted, or mis-bucketed
//! whatever the flush interleaving.

use proptest::prelude::*;
use sct_telemetry::{bucket_of, bucket_upper_ns, Histogram, LocalHist, BUCKETS};

const THREADS: usize = 8;

/// Serial reference: fold every observation into plain arrays.
fn reference(values: &[Vec<u64>]) -> (Vec<u64>, u64, u64, u64) {
    let mut buckets = vec![0u64; BUCKETS];
    let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
    for per_thread in values {
        for &ns in per_thread {
            buckets[bucket_of(ns)] += 1;
            count += 1;
            sum += ns;
            max = max.max(ns);
        }
    }
    (buckets, count, sum, max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_recording_loses_nothing(
        (values, thresholds) in (
            proptest::collection::vec(
                proptest::collection::vec(0u64..200_000_000, 0..300),
                THREADS..THREADS + 1,
            ),
            proptest::collection::vec(0u64..64, THREADS..THREADS + 1),
        ),
    ) {
        let shared: &'static Histogram = Box::leak(Box::new(Histogram::default()));
        std::thread::scope(|scope| {
            for (i, per_thread) in values.iter().enumerate() {
                let threshold = thresholds[i];
                scope.spawn(move || {
                    if i % 2 == 0 {
                        // Direct atomic recording.
                        for &ns in per_thread {
                            shared.observe_ns(ns);
                        }
                    } else {
                        // Buffered recording, published by auto-flush
                        // and the drop at scope exit.
                        let mut local = LocalHist::with_auto_flush(shared, threshold);
                        for &ns in per_thread {
                            local.record_ns(ns);
                        }
                    }
                });
            }
        });
        let (buckets, count, sum, max) = reference(&values);
        let snap = shared.snapshot("concurrent");
        prop_assert_eq!(snap.buckets, buckets);
        prop_assert_eq!(snap.value, count);
        prop_assert_eq!(snap.sum_ns, sum);
        prop_assert_eq!(snap.max_ns, max);
    }

    #[test]
    fn percentiles_bound_the_true_quantile(
        (mut values, q_pct) in (
            proptest::collection::vec(0u64..1_000_000_000, 1..500),
            0u64..101,
        ),
    ) {
        let q = q_pct as f64 / 100.0;
        let h = Histogram::default();
        for &ns in &values {
            h.observe_ns(ns);
        }
        let snap = h.snapshot("q");
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let true_quantile = values[rank - 1];
        let reported = snap.percentile_ns(q);
        // The readout is the bucket's upper bound (capped at the exact
        // max): never below the true quantile, never more than one
        // 2x bucket above it.
        prop_assert!(reported >= true_quantile);
        prop_assert!(reported <= bucket_upper_ns(bucket_of(true_quantile)).min(snap.max_ns));
    }
}
