//! End-to-end equivalence for the incremental subsystem: a
//! reachability-pruned snapshot must warm-start re-analysis to exactly
//! the verdicts the unpruned snapshot — or a cold run — produces, over
//! both the shipped litmus corpus and random proggen programs; and the
//! diff planner must replay untouched corpus entries byte-for-byte
//! while flipping the gate on a one-line fence removal.
//!
//! Tests in this binary retire the process-wide arena, so they
//! serialize on a file-local lock.

use pitchfork::incremental::save_baseline;
use pitchfork::{
    AnalysisSession, BaselineManifest, BatchItem, DetectorOptions, SessionBuilder,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sct_cache::Snapshot;
use sct_core::proggen::{random_config, random_program, ProgGenOptions};
use sct_core::Reg;
use sct_symx::retire_arena;
use std::path::PathBuf;
use std::sync::Mutex;

static ARENA_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARENA_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const BOUND: usize = 16;

fn session() -> AnalysisSession {
    SessionBuilder::new()
        .options(DetectorOptions::v1_mode(BOUND))
        .build()
        .expect("cache-less session build cannot fail")
}

/// The shipped `.sasm` corpus (read from `crates/litmus/corpus`, in
/// name order — `sct-litmus` itself depends on this crate, so the
/// sources come off disk rather than through a cyclic dev-dependency).
fn corpus_sources() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../litmus/corpus");
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("litmus corpus dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "sasm"))
        .map(|e| {
            let name = e.path().file_stem().expect("stem").to_string_lossy().into_owned();
            let source = std::fs::read_to_string(e.path()).expect("corpus entry reads");
            (name, source)
        })
        .collect();
    out.sort();
    out
}

/// The corpus as symbolic-`ra` batch items; `edit` applies the
/// one-line fence removal to `spectre_v1_fenced`, reintroducing the
/// Spectre v1 leak the fence suppressed.
fn corpus_items(edit: bool) -> Vec<BatchItem> {
    let ra = Reg::parse("ra").expect("ra parses");
    corpus_sources()
        .into_iter()
        .map(|(name, mut source)| {
            if edit && name == "spectre_v1_fenced" {
                source = source
                    .lines()
                    .filter(|l| l.trim() != "fence")
                    .collect::<Vec<_>>()
                    .join("\n");
            }
            let asm = sct_asm::assemble(&source).expect("corpus entry assembles");
            BatchItem::new(name, asm.program, asm.config).symbolize([ra])
        })
        .collect()
}

/// One batch pass over the corpus, rendered to the per-file report
/// lines every frontend shares.
fn corpus_lines(session: &mut AnalysisSession) -> Vec<String> {
    session
        .run_batch(corpus_items(false))
        .outcomes
        .iter()
        .map(|o| {
            pitchfork::fleet::report_line(
                &o.name,
                o.report.verdict(),
                o.report.stats.states,
                o.report.stats.schedules,
                o.report.stats.strategy,
                o.report.stats.truncated,
            )
        })
        .collect()
}

/// Pruned and unpruned snapshots of the same hot arena hydrate to
/// warm starts that re-analyze the litmus corpus to byte-identical
/// report lines.
#[test]
fn corpus_pruned_and_unpruned_warm_starts_agree() {
    let _guard = lock();
    retire_arena();
    let cold_lines = corpus_lines(&mut session());

    let full_bytes = Snapshot::capture().encode();
    let (pruned, prune) = Snapshot::capture_rooted(&[]);
    let pruned_bytes = pruned.encode();
    assert!(
        pruned_bytes.len() <= full_bytes.len(),
        "pruning must never grow the snapshot ({} > {})",
        pruned_bytes.len(),
        full_bytes.len()
    );
    assert!(prune.kept_nodes > 0, "a corpus run leaves memoized roots");

    retire_arena();
    Snapshot::decode(&pruned_bytes)
        .expect("pruned snapshot decodes")
        .hydrate()
        .expect("pruned snapshot hydrates");
    let pruned_lines = corpus_lines(&mut session());

    retire_arena();
    Snapshot::decode(&full_bytes)
        .expect("full snapshot decodes")
        .hydrate()
        .expect("full snapshot hydrates");
    let full_lines = corpus_lines(&mut session());

    assert_eq!(cold_lines, pruned_lines, "pruned warm start changed a verdict line");
    assert_eq!(full_lines, pruned_lines, "pruned and unpruned warm starts disagree");
    retire_arena();
}

/// The full ci-gate round at the library level: a cold incremental run
/// promotes a baseline, an untouched re-run replays every entry with
/// zero exploration and byte-identical lines, and the one-line fence
/// removal re-explores only the edited entry and regresses the gate.
#[test]
fn incremental_replays_are_byte_identical_and_an_edit_flips_the_gate() {
    let _guard = lock();
    retire_arena();
    let dir = std::env::temp_dir().join(format!("sct_incr_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("baseline dir");
    let entries = corpus_sources().len();

    let cold = session().analyze_incremental(corpus_items(false), &BaselineManifest::empty());
    assert_eq!(cold.reanalyzed, entries);
    assert!(cold.regressions().is_empty(), "an empty baseline cannot flip");
    save_baseline(&dir, &cold.manifest).expect("baseline saves");
    let baseline = BaselineManifest::load_dir(&dir).expect("baseline loads");

    retire_arena();
    let mut warm_session = SessionBuilder::new()
        .options(DetectorOptions::v1_mode(BOUND))
        .cache(dir.join(BaselineManifest::CACHE_NAME))
        .build()
        .expect("pruned baseline snapshot loads");
    let warm = warm_session.analyze_incremental(corpus_items(false), &baseline);
    assert_eq!(warm.reused, entries);
    assert_eq!(warm.states_explored, 0, "replays must not explore");
    let cold_lines: Vec<&str> = cold.outcomes.iter().map(|o| o.line.as_str()).collect();
    let warm_lines: Vec<&str> = warm.outcomes.iter().map(|o| o.line.as_str()).collect();
    assert_eq!(cold_lines, warm_lines, "replayed lines must be byte-identical");

    let edited = warm_session.analyze_incremental(corpus_items(true), &baseline);
    assert_eq!(edited.reused, entries - 1);
    assert_eq!(edited.reanalyzed, 1);
    let flips: Vec<&str> = edited.regressions().iter().map(|o| o.name.as_str()).collect();
    assert_eq!(flips, ["spectre_v1_fenced"], "the fence removal must fail the gate");
    for (old, new) in cold.outcomes.iter().zip(&edited.outcomes) {
        if new.name != "spectre_v1_fenced" {
            assert_eq!(old.line, new.line, "untouched entry {} moved", new.name);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    retire_arena();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Over random proggen programs with every register symbolic, a
    /// pruned snapshot of the post-analysis arena warm-starts to the
    /// same verdict and the same state count as the unpruned snapshot
    /// and the cold run.
    #[test]
    fn proggen_pruned_vs_unpruned_verdicts_agree(seed in any::<u64>()) {
        let _guard = lock();
        retire_arena();
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ProgGenOptions::default();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);
        let symbolic: Vec<Reg> = (0..opts.regs).map(Reg::gpr).collect();
        // Bound the blowup on adversarial programs: a truncated search
        // yields Unknown{explored}, which must still round-trip.
        let mut options = DetectorOptions::v1_mode(6);
        options.explorer.max_states = 4_000;
        let build = |opts: DetectorOptions| {
            SessionBuilder::new().options(opts).build().expect("session builds")
        };
        let cold = build(options).analyze_symbolic(&program, &config, &symbolic);

        let full_bytes = Snapshot::capture().encode();
        let (pruned, _) = Snapshot::capture_rooted(&[]);
        let pruned_bytes = pruned.encode();
        prop_assert!(pruned_bytes.len() <= full_bytes.len());

        retire_arena();
        Snapshot::decode(&pruned_bytes)
            .expect("pruned snapshot decodes")
            .hydrate()
            .expect("pruned snapshot hydrates");
        let warm_pruned = build(options).analyze_symbolic(&program, &config, &symbolic);

        retire_arena();
        Snapshot::decode(&full_bytes)
            .expect("full snapshot decodes")
            .hydrate()
            .expect("full snapshot hydrates");
        let warm_full = build(options).analyze_symbolic(&program, &config, &symbolic);

        prop_assert_eq!(warm_pruned.verdict(), cold.verdict());
        prop_assert_eq!(warm_full.verdict(), cold.verdict());
        prop_assert_eq!(warm_pruned.stats.states, cold.stats.states);
        prop_assert_eq!(warm_full.stats.states, cold.stats.states);
        retire_arena();
    }
}
