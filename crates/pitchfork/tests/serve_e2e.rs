//! End-to-end daemon tests: a real `Server` on a real Unix socket,
//! real `Client`s, byte-identical verdicts against batch mode,
//! memo-warm second submissions, `Retire` round-trips, and garbage
//! tolerance.
//!
//! Every test takes `E2E_LOCK`: the expression arena, the solver memo,
//! and the epoch counter are process-wide, and several tests retire
//! epochs — interleaving them with concurrent analyses would trip the
//! stale-`ExprRef` guard by design.

use pitchfork::client::{Client, ClientError};
use pitchfork::fleet::{self, FleetOptions, ManifestEntry};
use pitchfork::observe::OwnedEvent;
use pitchfork::server::{Server, ServerOptions};
use pitchfork::service::{Job, JobSpec, JobStatus, RetirePolicy, SessionService};
use pitchfork::transport::Endpoint;
use pitchfork::{AnalysisSession, SessionBuilder};
use sct_core::examples::fig1;
use sct_core::reg::names::RA;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

static E2E_LOCK: Mutex<()> = Mutex::new(());

const WAIT: Duration = Duration::from_secs(60);

fn lock() -> std::sync::MutexGuard<'static, ()> {
    E2E_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_path(label: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sct_e2e_{label}_{}.{suffix}",
        std::process::id()
    ))
}

fn fig1_source() -> String {
    let (program, config) = fig1();
    sct_asm::disassemble_with(&program, Some(&config))
}

fn serve(label: &str, session: AnalysisSession) -> (Server, PathBuf) {
    let sock = temp_path(label, "sock");
    let server = Server::bind(&sock, SessionService::new(session)).expect("bind socket");
    (server, sock)
}

#[test]
fn daemon_verdicts_match_batch_mode_and_warm_up() {
    let _guard = lock();
    let cache = temp_path("warm", "cache");
    let _ = std::fs::remove_file(&cache);
    let session = SessionBuilder::new()
        .v1_mode(16)
        .cache(&cache)
        .build()
        .expect("session over a fresh cache path");
    let (server, sock) = serve("warm", session);
    let source = fig1_source();
    let spec = JobSpec {
        symbolic: vec![RA],
        ..JobSpec::default()
    };

    // Batch-mode baseline: the same program, bound, and symbolized
    // registers through a plain session.
    let (program, config) = fig1();
    let mut baseline_session = AnalysisSession::builder().v1_mode(16).build().unwrap();
    let baseline = baseline_session.analyze_symbolic(&program, &config, &[RA]);

    // First client: cold submission.
    let mut client1 = Client::connect(&sock).expect("connect");
    let id1 = client1
        .submit_source("fig1", source.clone(), spec.clone())
        .expect("submit");
    let view1 = client1.wait(id1, WAIT).expect("first job finishes");
    assert_eq!(view1.status, JobStatus::Done);
    let verdict1 = view1.verdict.expect("done jobs carry a verdict");
    let stats1 = view1.stats.expect("done jobs carry stats");
    // Byte-identical verdict and matching exploration against batch mode.
    assert_eq!(verdict1.to_string(), baseline.verdict().to_string());
    assert_eq!(stats1.states, baseline.stats.states);
    assert_eq!(stats1.schedules, baseline.stats.schedules);
    assert_eq!(view1.violations.len(), baseline.violations.len());
    assert!(
        stats1.solver_queries > 0,
        "symbolic ra drives the solver: {stats1:?}"
    );

    // Second client, same program: answered from the warm memo and the
    // already-interned arena.
    let arena_before = sct_symx::arena_stats().nodes;
    let mut client2 = Client::connect(&sock).expect("second connect");
    let id2 = client2.submit_source("fig1-again", source.clone(), spec.clone()).unwrap();
    let view2 = client2.wait(id2, WAIT).expect("second job finishes");
    let stats2 = view2.stats.expect("stats");
    assert_eq!(view2.verdict.unwrap().to_string(), verdict1.to_string());
    assert_eq!(stats2.states, stats1.states);
    assert!(
        stats2.solver_memo_hits > 0,
        "second submission reuses memoized verdicts: {stats2:?}"
    );
    assert_eq!(
        stats2.solver_memo_misses, 0,
        "nothing new to solve on a repeat submission: {stats2:?}"
    );
    assert_eq!(
        sct_symx::arena_stats().nodes,
        arena_before,
        "a repeat submission interns no new arena structure"
    );

    // Retire round-trip: snapshot saved, epoch cycled, next job
    // warm-starts — all without restarting the process.
    let stats = client2.retire().expect("retire");
    assert_eq!(stats.epochs_retired, 1);
    assert!(
        stats.last_reload_nodes > 0,
        "retire warm-starts from the snapshot it just saved: {stats:?}"
    );
    assert!(cache.exists(), "retire persisted the snapshot");

    let id3 = client2.submit_source("fig1-after-retire", source, spec).unwrap();
    let view3 = client2.wait(id3, WAIT).expect("post-retire job finishes");
    let stats3 = view3.stats.expect("stats");
    assert_eq!(view3.verdict.unwrap().to_string(), verdict1.to_string());
    assert_eq!(stats3.states, stats1.states);
    assert!(
        stats3.solver_memo_hits > 0,
        "the re-imported memo answers the post-retire run: {stats3:?}"
    );

    let final_stats = client2.shutdown().expect("shutdown");
    assert_eq!(final_stats.jobs_done, 3);
    server.wait();
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn event_stream_covers_the_whole_exploration() {
    let _guard = lock();
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let (server, sock) = serve("events", session);
    let mut client = Client::connect(&sock).expect("connect");
    let id = client
        .submit_source("fig1", fig1_source(), JobSpec::default())
        .expect("submit");

    // Subscribe immediately — batches flow while (or right after) the
    // worker analyzes; the stream ends exactly at the terminal event.
    let mut events = Vec::new();
    let final_cursor = client
        .stream_events(id, 0, |e| events.push(e.clone()))
        .expect("stream to completion");
    assert_eq!(final_cursor as usize, events.len());

    let view = client.status(id).expect("status");
    let stats = view.stats.expect("done");
    let expanded = events
        .iter()
        .filter(|e| matches!(e, OwnedEvent::StateExpanded { .. }))
        .count();
    assert_eq!(expanded, stats.states, "one event per expanded state");
    assert!(
        events.iter().any(|e| matches!(e, OwnedEvent::ViolationFound { .. })),
        "fig1's witness streams as an event"
    );
    assert!(
        matches!(events.last(), Some(OwnedEvent::ItemFinished { flagged: true, .. })),
        "the stream closes with the terminal item-finished event"
    );

    // Resuming from the final cursor yields an immediately-done empty
    // batch.
    let mut tail = Vec::new();
    let cursor2 = client
        .stream_events(id, final_cursor, |e| tail.push(e.clone()))
        .expect("resume");
    assert_eq!(cursor2, final_cursor);
    assert!(tail.is_empty());

    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn garbage_lines_get_error_responses_and_the_connection_survives() {
    let _guard = lock();
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let (server, sock) = serve("garbage", session);

    let stream = std::os::unix::net::UnixStream::connect(&sock).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for garbage in [
        "{ not json",
        "{\"req\":\"submit\"}",
        "{\"req\":\"nope\"}",
        "[1,2,3]",
        "{\"req\":\"status\",\"id\":\"seven\"}",
    ] {
        writer.write_all(garbage.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).expect("server answers");
        let response = pitchfork::protocol::Response::parse(line.trim_end()).unwrap();
        assert!(
            matches!(response, pitchfork::protocol::Response::Error { .. }),
            "garbage {garbage:?} → {response:?}"
        );
    }
    // The same connection still serves valid requests afterwards.
    writer.write_all(b"{\"req\":\"stats\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        pitchfork::protocol::Response::parse(line.trim_end()).unwrap(),
        pitchfork::protocol::Response::Stats { .. }
    ));
    drop(writer);

    // An oversized line (no newline in sight) is answered with an
    // error and the connection closes — the daemon never buffers more
    // than the protocol cap.
    let oversized = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
    let mut big_reader = BufReader::new(oversized.try_clone().unwrap());
    let mut big_writer = oversized;
    let chunk = vec![b'x'; pitchfork::protocol::MAX_LINE_BYTES + 2];
    big_writer.write_all(&chunk).unwrap();
    let mut line = String::new();
    big_reader.read_line(&mut line).expect("server answers before EOF");
    assert!(
        matches!(
            pitchfork::protocol::Response::parse(line.trim_end()).unwrap(),
            pitchfork::protocol::Response::Error { .. }
        ),
        "oversized line → {line:?}"
    );
    line.clear();
    assert_eq!(
        big_reader.read_line(&mut line).unwrap(),
        0,
        "the desynced connection is closed, not reused"
    );

    // Unknown jobs and unassemblable sources are errors/failures, not
    // hangs.
    let mut client = Client::connect(&sock).unwrap();
    assert!(client.status(pitchfork::JobId::from_u64(999)).is_err());
    let id = client
        .submit_source("bad", "definitely not assembly !!!", JobSpec::default())
        .expect("bad sources are accepted then failed");
    let view = client.wait(id, WAIT).expect("terminal immediately");
    assert_eq!(view.status, JobStatus::Failed);
    assert!(view.error.is_some());

    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn retire_policy_cycles_epochs_under_service() {
    let _guard = lock();
    let cache = temp_path("policy", "cache");
    let _ = std::fs::remove_file(&cache);
    let session = SessionBuilder::new()
        .v1_mode(16)
        .cache(&cache)
        .build()
        .unwrap();
    let mut svc = SessionService::with_policy(session, RetirePolicy::every_jobs(2));
    let epochs_before = svc.session().epochs_retired();
    let (p, cfg) = fig1();
    for i in 0..4 {
        svc.submit(Job::new(format!("fig1-{i}"), p.clone(), cfg.clone()));
    }
    svc.run_pending();
    let stats = svc.stats();
    assert_eq!(stats.jobs_done, 4);
    assert_eq!(
        stats.epochs_retired as usize - epochs_before,
        2,
        "retire every 2 jobs over 4 jobs"
    );
    assert!(
        stats.last_reload_nodes > 0,
        "cache-backed retirement warm-starts: {stats:?}"
    );
    assert!(svc.last_retire_error().is_none());
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn retire_defers_while_jobs_in_flight() {
    let _guard = lock();
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let mut svc = SessionService::new(session);
    let (p, cfg) = fig1();
    svc.submit(Job::new("held", p, cfg));
    let prepared = svc.begin_next().expect("queued job");
    assert_eq!(svc.in_flight(), 1);
    let epochs_before = svc.session().epochs_retired();
    // Retiring now would invalidate the prepared job's ExprRefs: the
    // service defers instead of retiring under it.
    assert!(matches!(svc.retire(), Ok(None)));
    assert_eq!(svc.session().epochs_retired(), epochs_before);
    let finished = prepared.run();
    assert!(finished.report().verdict().is_insecure());
    svc.finish(finished);
    assert_eq!(svc.in_flight(), 0);
    // The deferred retirement was applied by the last finisher, and
    // the job's record survived it.
    assert_eq!(svc.session().epochs_retired(), epochs_before + 1);
    assert_eq!(svc.stats().jobs_done, 1);
}

#[test]
fn concurrent_job_workers_serve_parallel_submissions() {
    let _guard = lock();
    let sock = temp_path("jobs", "sock");
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let service = SessionService::new(session);
    let server = Server::bind_with_workers(&sock, service, 3).unwrap();
    let source = fig1_source();
    let mut client = Client::connect(&sock).unwrap();
    // Burst-submit: with 3 job workers the daemon runs several at
    // once; all must complete with the batch-mode verdict.
    let ids: Vec<_> = (0..6)
        .map(|i| {
            client
                .submit_source(format!("fig1-{i}"), source.clone(), JobSpec::default())
                .unwrap()
        })
        .collect();
    let mut session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let (p, cfg) = fig1();
    let direct = session.analyze(&p, &cfg);
    for id in ids {
        let view = client.wait(id, WAIT).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.verdict.as_ref(), Some(&direct.verdict()));
        let stats = view.stats.expect("done job has stats");
        assert_eq!(stats.states, direct.stats.states);
    }
    let stats = client.shutdown().unwrap();
    assert_eq!(stats.jobs_done, 6);
    server.wait();
}

// ----- fleet mode ---------------------------------------------------------

/// A TCP loopback daemon on an OS-assigned port.
fn serve_tcp(options: ServerOptions) -> Server {
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    Server::bind_endpoint(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        SessionService::new(session),
        1,
        options,
    )
    .expect("bind tcp loopback")
}

#[test]
fn tcp_daemon_authenticates_and_enforces_quota() {
    let _guard = lock();
    let server = serve_tcp(ServerOptions {
        token: Some("sesame".to_string()),
        max_jobs_per_client: 2,
        ..ServerOptions::default()
    });
    let addr = server.local_addr().to_string();
    let source = fig1_source();

    // A wrong token errors and the daemon closes the connection.
    let mut intruder = Client::connect_addr(&addr).expect("connect");
    assert!(matches!(
        intruder.hello("open says me"),
        Err(ClientError::Server(m)) if m.contains("invalid token")
    ));
    assert!(intruder.stats().is_err(), "wrong-token connection is closed");

    // Requests before the handshake are rejected, connection stays up.
    let mut hasty = Client::connect_addr(&addr).expect("connect");
    assert!(matches!(
        hasty.stats(),
        Err(ClientError::Server(m)) if m.contains("authentication required")
    ));
    hasty.hello("sesame").expect("handshake after a rejection");
    hasty.stats().expect("authenticated requests flow");

    // The per-client quota bites on the third submission.
    let id1 = hasty
        .submit_source("q1", source.clone(), JobSpec::default())
        .expect("first submit");
    let id2 = hasty
        .submit_source("q2", source.clone(), JobSpec::default())
        .expect("second submit");
    assert!(matches!(
        hasty.submit_source("q3", source.clone(), JobSpec::default()),
        Err(ClientError::Server(m)) if m.contains("quota")
    ));
    assert_eq!(hasty.wait(id1, WAIT).unwrap().status, JobStatus::Done);
    assert_eq!(hasty.wait(id2, WAIT).unwrap().status, JobStatus::Done);
    // A fresh connection gets a fresh quota.
    let mut next = Client::connect_addr(&addr).unwrap();
    next.hello("sesame").unwrap();
    let id3 = next.submit_source("q3", source, JobSpec::default()).unwrap();
    assert_eq!(next.wait(id3, WAIT).unwrap().status, JobStatus::Done);

    // Cancelling a terminal job is an idempotent no-op; unknown ids
    // are errors.
    next.cancel(id3).expect("terminal cancel is a no-op");
    assert_eq!(next.status(id3).unwrap().status, JobStatus::Done);
    assert!(next.cancel(pitchfork::JobId::from_u64(999)).is_err());

    next.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn cancelling_a_running_job_stops_it_cooperatively() {
    let _guard = lock();
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let mut svc = SessionService::new(session);
    let (p, cfg) = fig1();
    let id = svc.submit(Job::new("doomed", p, cfg));
    let prepared = svc.begin_next().expect("queued job");
    assert_eq!(svc.status(id), Some(JobStatus::Running));
    // Cancel while the job is mid-run: the explorer observes the flag
    // at its next budget check and stops with a truncated report.
    assert_eq!(svc.monitor().request_cancel(id), Some(JobStatus::Running));
    svc.finish(prepared.run());
    assert_eq!(svc.status(id), Some(JobStatus::Cancelled));
    let rec = svc.record(id).expect("record");
    assert!(
        rec.report.expect("cancelled jobs keep their partial report").stats.truncated,
        "a cancelled exploration reports as truncated"
    );
    let stats = svc.stats();
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_done, 0, "cancelled jobs do not count as done");
}

#[test]
fn seed_warm_starts_a_daemon_over_the_wire() {
    let _guard = lock();
    // Produce a genuine snapshot: analyze fig1, save the cache.
    let cache = temp_path("seed_src", "cache");
    let _ = std::fs::remove_file(&cache);
    let mut donor = SessionBuilder::new().v1_mode(16).cache(&cache).build().unwrap();
    let (p, cfg) = fig1();
    let _ = donor.analyze_symbolic(&p, &cfg, &[RA]);
    donor.save().expect("save snapshot").expect("snapshot written");
    let snapshot = std::fs::read(&cache).expect("read snapshot bytes");

    let server = serve_tcp(ServerOptions::default());
    let addr = server.local_addr().to_string();
    let mut client = Client::connect_addr(&addr).unwrap();
    // Garbage is rejected without poisoning the connection.
    assert!(matches!(client.seed(b"not a snapshot"), Err(ClientError::Server(_))));
    // The real snapshot hydrates; the daemon's stats carry the exact
    // import counts the response reported.
    let (nodes, verdicts) = client.seed(&snapshot).expect("seed");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.seed_nodes_added, nodes);
    assert_eq!(stats.seed_verdicts_imported, verdicts);
    // A post-seed submission runs against the hydrated memo/arena and
    // still answers with the canonical verdict.
    let id = client
        .submit_source(
            "fig1",
            fig1_source(),
            JobSpec {
                symbolic: vec![RA],
                ..JobSpec::default()
            },
        )
        .unwrap();
    let view = client.wait(id, WAIT).unwrap();
    assert_eq!(view.status, JobStatus::Done);
    assert!(view.verdict.unwrap().is_insecure());

    client.shutdown().unwrap();
    server.wait();
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn coordinator_merges_fleet_verdicts_byte_identically() {
    let _guard = lock();
    let options = ServerOptions {
        token: Some("fleet".to_string()),
        max_jobs_per_client: 0,
        ..ServerOptions::default()
    };
    let s1 = serve_tcp(options.clone());
    let s2 = serve_tcp(options);
    let manifest: Vec<ManifestEntry> = (0..5)
        .map(|i| ManifestEntry {
            name: format!("fig1-{i}.sasm"),
            source: fig1_source(),
        })
        .collect();
    // Single-process baseline: the same entries through a plain
    // session, rendered with the shared report-line formatter.
    let baseline: Vec<String> = manifest
        .iter()
        .map(|entry| {
            let mut session = SessionBuilder::new().v1_mode(16).build().unwrap();
            let (p, cfg) = fig1();
            let report = session.analyze_symbolic(&p, &cfg, &[RA]);
            fleet::report_line(
                &entry.name,
                report.verdict(),
                report.stats.states,
                report.stats.schedules,
                report.stats.strategy,
                report.stats.truncated,
            )
        })
        .collect();
    let fleet_options = FleetOptions {
        workers: vec![s1.local_addr().to_string(), s2.local_addr().to_string()],
        token: Some("fleet".to_string()),
        spec: JobSpec {
            symbolic: vec![RA],
            ..JobSpec::default()
        },
        ..FleetOptions::default()
    };
    let progress = Mutex::new(Vec::new());
    let report = fleet::run_fleet(&manifest, &fleet_options, |line| {
        progress.lock().unwrap().push(line);
    })
    .expect("fleet run");
    assert_eq!(report.failed(), 0, "outcomes: {:?}", report.outcomes);
    let merged: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| o.line.clone().expect("completed entry"))
        .collect();
    assert_eq!(
        merged, baseline,
        "fleet verdict lines must be byte-identical to batch mode, in manifest order"
    );
    assert_eq!(report.flagged(), manifest.len(), "fig1 flags everywhere");

    for server in [&s1, &s2] {
        let mut c = Client::connect_addr(server.local_addr()).unwrap();
        c.hello("fleet").unwrap();
        c.shutdown().unwrap();
    }
    s1.wait();
    s2.wait();
}

#[test]
fn coordinator_survives_a_worker_dying_mid_run() {
    let _guard = lock();
    let survivor = serve_tcp(ServerOptions::default());
    // A fake worker that accepts exactly one connection, then goes
    // away for good: first the listener closes (no reconnects), then
    // the accepted connection drops mid-conversation (EOF on the
    // in-flight entry).
    let fake = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake worker");
    let fake_addr = fake.local_addr().unwrap().to_string();
    let killer = std::thread::spawn(move || {
        let accepted = fake.accept().map(|(conn, _)| conn);
        drop(fake);
        if let Ok(conn) = accepted {
            // Give the coordinator a moment to send its submit into
            // the doomed connection.
            std::thread::sleep(Duration::from_millis(30));
            drop(conn);
        }
    });
    let manifest: Vec<ManifestEntry> = (0..6)
        .map(|i| ManifestEntry {
            name: format!("fig1-{i}.sasm"),
            source: fig1_source(),
        })
        .collect();
    let fleet_options = FleetOptions {
        workers: vec![survivor.local_addr().to_string(), fake_addr],
        spec: JobSpec {
            symbolic: vec![RA],
            ..JobSpec::default()
        },
        ..FleetOptions::default()
    };
    let progress = Mutex::new(Vec::new());
    let report = fleet::run_fleet(&manifest, &fleet_options, |line| {
        progress.lock().unwrap().push(line);
    })
    .expect("fleet run");
    killer.join().unwrap();
    // Every entry completed despite the dead worker: whatever the fake
    // took was requeued to the survivor.
    assert_eq!(report.failed(), 0, "outcomes: {:?}", report.outcomes);
    assert!(
        report.outcomes.iter().all(|o| o.line.is_some() && o.worker == Some(0)),
        "all verdicts come from the survivor: {:?}",
        report.outcomes
    );

    let mut c = Client::connect_addr(survivor.local_addr()).unwrap();
    c.shutdown().unwrap();
    survivor.wait();
}
