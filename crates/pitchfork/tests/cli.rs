//! CLI smoke tests: run the `pitchfork` binary on corpus-shaped inputs
//! and check exit codes and output.

use std::io::Write as _;
use std::process::Command;

fn run_cli(args: &[&str]) -> (String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_pitchfork"))
        .args(args)
        .output()
        .expect("pitchfork binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (text, out.status.code())
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("pitchfork_cli_{}_{}.sasm", name, std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GADGET: &str = r"
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1
.secret 0x48 = 0x11, 0x22, 0x33, 0x44
start:
    br gt(4, ra), then, out
then:
    rb = load [0x40, ra]
    rc = load [0x44, rb]
out:
";

#[test]
fn flags_a_gadget_with_exit_code_one() {
    let path = write_temp("gadget", GADGET);
    let (text, code) = run_cli(&["--bound", "16", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("VIOLATION"), "{text}");
}

#[test]
fn verbose_mode_prints_schedules() {
    let path = write_temp("verbose", GADGET);
    let (text, code) = run_cli(&["--verbose", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1));
    assert!(text.contains("schedule:"), "{text}");
    assert!(text.contains("fetch"), "{text}");
}

#[test]
fn clean_program_exits_zero() {
    let clean = "start:\n    ra = add 1, 2\n";
    let path = write_temp("clean", clean);
    let (text, code) = run_cli(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(0), "{text}");
    assert!(text.contains("secure"), "{text}");
}

#[test]
fn parse_errors_exit_two() {
    let path = write_temp("bad", "start:\n    bogus ra\n");
    let (text, code) = run_cli(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(2), "{text}");
    assert!(text.contains("unknown mnemonic"), "{text}");
}

#[test]
fn missing_file_exits_two() {
    let (_, code) = run_cli(&["/nonexistent/file.sasm"]);
    assert_eq!(code, Some(2));
}

#[test]
fn usage_on_no_files() {
    let (text, code) = run_cli(&[]);
    assert_eq!(code, Some(2));
    assert!(text.contains("usage"), "{text}");
}

#[test]
fn strategy_flag_selects_the_frontier_order() {
    let path = write_temp("strategy", GADGET);
    for strategy in ["lifo", "fifo", "deepest-rob", "violation-likely"] {
        let (text, code) = run_cli(&["--strategy", strategy, "--bound", "16", path.to_str().unwrap()]);
        assert_eq!(code, Some(1), "{strategy}: {text}");
        assert!(text.contains("VIOLATION"), "{strategy}: {text}");
        assert!(
            text.contains(&format!("strategy {strategy}")),
            "{strategy}: {text}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_strategy_exits_two() {
    let path = write_temp("badstrategy", GADGET);
    let (text, code) = run_cli(&["--strategy", "bogo", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(2), "{text}");
    assert!(text.contains("unknown strategy"), "{text}");
}

#[test]
fn cache_flag_goes_cold_then_warm() {
    let gadget = write_temp("cache_gadget", GADGET);
    let mut cache = std::env::temp_dir();
    cache.push(format!("pitchfork_cli_cache_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&cache);

    // First run: cold start, then a snapshot is saved.
    let args = [
        "--cache",
        cache.to_str().unwrap(),
        "--symbolic",
        "ra",
        gadget.to_str().unwrap(),
    ];
    let (text, code) = run_cli(&args);
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("cache: cold start"), "{text}");
    assert!(text.contains("cache: saved"), "{text}");
    assert!(cache.exists(), "snapshot file must be written");

    // Second run: warm start with a non-zero node count, same verdict.
    let (text, code) = run_cli(&args);
    std::fs::remove_file(&gadget).ok();
    std::fs::remove_file(&cache).ok();
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("cache: warm start"), "{text}");
    let warm_nodes: usize = text
        .lines()
        .find(|l| l.contains("warm start"))
        .and_then(|l| l.split(": ").nth(2))
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    assert!(warm_nodes > 0, "warm start must hydrate nodes: {text}");
    assert!(text.contains("VIOLATION"), "{text}");
}
