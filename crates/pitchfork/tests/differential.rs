//! Differential testing: on fully-concrete inputs the symbolic machine
//! must agree with the reference machine of `sct-core` step for step —
//! same applicability, same observations, same architectural evolution.

use pitchfork::machine::SymMachine;
use pitchfork::state::SymState;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sct_core::proggen::{random_config, random_program, ProgGenOptions};
use sct_core::sched::enumerate::applicable_directives;
use sct_core::Machine;
use sct_symx::Model;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive both machines with the same (randomly chosen, applicable)
    /// directives and compare at every step.
    #[test]
    fn symbolic_machine_agrees_with_reference(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ProgGenOptions::default();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);

        let mut conc = Machine::new(&program, config.clone());
        let sym_machine = SymMachine::new(&program);
        let mut sym = SymState::from_config(&config);
        let zero = Model::new();

        for step in 0..400 {
            let candidates = applicable_directives(&conc);
            if candidates.is_empty() {
                break;
            }
            // Deterministic pick: spread across the candidate list.
            let d = candidates[(seed as usize + step) % candidates.len()];
            let conc_obs = conc.step(d).expect("applicable on reference");
            let succs = sym_machine
                .step(&sym, d)
                .unwrap_or_else(|e| panic!("symbolic step failed on {d}: {e}"));
            prop_assert_eq!(
                succs.len(),
                1,
                "concrete-input symbolic step must not fork (directive {})",
                d
            );
            let prev_len = sym.trace.len();
            sym = succs.into_iter().next().unwrap();
            let sym_obs = &sym.trace[prev_len..];
            prop_assert_eq!(
                sym_obs, &conc_obs[..],
                "observation mismatch at step {} on {}", step, d
            );
            // Architectural state must match when concretized.
            prop_assert_eq!(sym.pc, conc.cfg.pc, "pc diverged at step {}", step);
            prop_assert_eq!(&sym.regs.eval(&zero), &conc.cfg.regs);
            prop_assert_eq!(&sym.mem.eval(&zero), &conc.cfg.mem);
            prop_assert_eq!(sym.rob.len(), conc.cfg.rob.len());
            prop_assert_eq!(sym.rob.min(), conc.cfg.rob.min());
        }
    }

    /// Inapplicable directives must be rejected by both machines alike.
    #[test]
    fn error_agreement(seed in any::<u64>()) {
        use sct_core::Directive;
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ProgGenOptions::default();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);
        let mut conc = Machine::new(&program, config.clone());
        let sym_machine = SymMachine::new(&program);
        let mut sym = SymState::from_config(&config);

        // Advance a few steps, then probe a battery of directives.
        for step in 0..40 {
            let probes = [
                Directive::Retire,
                Directive::Execute(1),
                Directive::Execute(3),
                Directive::ExecuteValue(2),
                Directive::ExecuteAddr(2),
                Directive::Fetch,
                Directive::FetchBranch(true),
            ];
            for &p in &probes {
                let conc_ok = conc.clone().step(p).is_ok();
                let sym_ok = sym_machine.step(&sym, p).is_ok();
                prop_assert_eq!(
                    conc_ok, sym_ok,
                    "applicability mismatch for {} at step {}", p, step
                );
            }
            let candidates = applicable_directives(&conc);
            if candidates.is_empty() {
                break;
            }
            let d = candidates[(seed as usize + step) % candidates.len()];
            conc.step(d).unwrap();
            sym = sym_machine.step(&sym, d).unwrap().into_iter().next().unwrap();
        }
    }
}
