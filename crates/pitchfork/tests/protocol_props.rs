//! Property tests for the wire protocol: encode → parse round-trips
//! for every request/response shape, and the parser survives arbitrary
//! garbage — truncations, byte flips, random bytes — without panicking
//! (returning an error the server maps to `Response::Error`).

use pitchfork::observe::OwnedEvent;
use pitchfork::protocol::{Request, Response, WireViolation};
use pitchfork::service::{JobMode, JobSpec, JobStatus, ServiceStats};
use pitchfork::{ExploreStats, StrategyKind, Verdict};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_string(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0..24);
    (0..len)
        .map(|_| {
            // Bias toward the characters that stress the codec: quotes,
            // backslashes, newlines, non-ASCII, control characters.
            match rng.gen_range(0..8) {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\t',
                4 => 'é',
                5 => '∀',
                6 => char::from_u32(rng.gen_range(1..0x20)).unwrap(),
                _ => char::from_u32(rng.gen_range(0x20..0x7f)).unwrap(),
            }
        })
        .collect()
}

fn random_spec(rng: &mut SmallRng) -> JobSpec {
    let modes = [JobMode::V1, JobMode::V4, JobMode::Alias, JobMode::V2];
    let regs = [
        sct_core::reg::names::RA,
        sct_core::reg::names::RB,
        sct_core::reg::names::RC,
    ];
    JobSpec {
        mode: modes[rng.gen_range(0..modes.len())],
        bound: rng.gen_bool(0.5).then(|| rng.gen_range(0..4096)),
        strategy: rng
            .gen_bool(0.5)
            .then(|| StrategyKind::ALL[rng.gen_range(0..StrategyKind::ALL.len())]),
        threads: if rng.gen_bool(0.5) { 0 } else { rng.gen_range(1..16) },
        symbolic: (0..rng.gen_range(0..3)).map(|i| regs[i]).collect(),
        max_states: rng.gen_bool(0.5).then(|| rng.gen_range(1..10_000_000)),
        deadline_ms: rng.gen_bool(0.5).then(|| rng.gen_range(1..3_600_000)),
    }
}

fn random_request(rng: &mut SmallRng) -> Request {
    match rng.gen_range(0..11) {
        0 => Request::Submit {
            name: random_string(rng),
            source: random_string(rng),
            spec: random_spec(rng),
        },
        1 => Request::Status { id: rng.gen() },
        2 => Request::Events {
            id: rng.gen(),
            since: rng.gen(),
        },
        3 => Request::Stats,
        4 => Request::Retire,
        5 => Request::Metrics,
        6 => Request::Hello {
            token: random_string(rng),
        },
        7 => Request::Cancel { id: rng.gen() },
        9 => Request::Ping,
        8 => Request::Seed {
            chunk: pitchfork::protocol::hex_encode(
                &(0..rng.gen_range(0..64))
                    .map(|_| rng.gen_range(0..256) as u8)
                    .collect::<Vec<u8>>(),
            ),
            last: rng.gen_bool(0.5),
        },
        _ => Request::Shutdown,
    }
}

fn random_verdict(rng: &mut SmallRng) -> Verdict {
    match rng.gen_range(0..3) {
        0 => Verdict::Secure,
        1 => Verdict::Insecure {
            witnesses: rng.gen_range(0..1000),
        },
        _ => Verdict::Unknown {
            explored: rng.gen_range(0..1_000_000),
        },
    }
}

fn random_explore_stats(rng: &mut SmallRng) -> ExploreStats {
    ExploreStats {
        strategy: StrategyKind::ALL[rng.gen_range(0..StrategyKind::ALL.len())].name(),
        first_witness_states: rng.gen_bool(0.5).then(|| rng.gen_range(0..100_000)),
        first_witness_depth: rng.gen_bool(0.5).then(|| rng.gen_range(0..1_000)),
        states: rng.gen_range(0..1_000_000),
        deduped: rng.gen_range(0..1_000_000),
        frontier_peak: rng.gen_range(0..10_000),
        schedules: rng.gen_range(0..1_000_000),
        steps: rng.gen_range(0..10_000_000),
        solver_queries: rng.gen_range(0..100_000),
        solver_memo_hits: rng.gen_range(0..100_000),
        solver_memo_misses: rng.gen_range(0..100_000),
        solver_memo_evicted: rng.gen_range(0..100_000),
        threads: rng.gen_range(1..16),
        arena_lock_waits: rng.gen_range(0..100_000),
        memo_lock_waits: rng.gen_range(0..100_000),
        steals: rng.gen_range(0..100_000),
        steal_fails: rng.gen_range(0..100_000),
        local_cache_hits: rng.gen_range(0..10_000_000),
        truncated: rng.gen_bool(0.5),
        deadline_exceeded: rng.gen_bool(0.5),
    }
}

fn random_event(rng: &mut SmallRng) -> OwnedEvent {
    match rng.gen_range(0..4) {
        0 => OwnedEvent::StateExpanded {
            states: rng.gen_range(0..1_000_000),
            frontier: rng.gen_range(0..10_000),
            rob_depth: rng.gen_range(0..250),
        },
        1 => OwnedEvent::ViolationFound {
            states: rng.gen_range(0..1_000_000),
            pc: rng.gen_range(0..10_000),
            observation: random_string(rng),
        },
        2 => OwnedEvent::ItemFinished {
            name: random_string(rng),
            flagged: rng.gen_bool(0.5),
            states: rng.gen_range(0..1_000_000),
        },
        _ => OwnedEvent::EpochRetired {
            epoch: rng.gen_range(0..255),
            rehydrated: rng.gen_range(0..1_000_000),
        },
    }
}

fn random_violation(rng: &mut SmallRng) -> WireViolation {
    WireViolation {
        pc: rng.gen_range(0..10_000),
        observation: random_string(rng),
        schedule: random_string(rng),
        trace: (0..rng.gen_range(0..4)).map(|_| random_string(rng)).collect(),
        constraints: (0..rng.gen_range(0..4)).map(|_| random_string(rng)).collect(),
    }
}

fn random_service_stats(rng: &mut SmallRng) -> ServiceStats {
    ServiceStats {
        jobs_submitted: rng.gen(),
        jobs_done: rng.gen(),
        jobs_failed: rng.gen(),
        queued: rng.gen(),
        epochs_retired: rng.gen(),
        jobs_since_retire: rng.gen(),
        arena_nodes: rng.gen(),
        arena_epoch: rng.gen(),
        memo_entries: rng.gen(),
        memo_capacity: rng.gen(),
        memo_hits: rng.gen(),
        memo_misses: rng.gen(),
        memo_evicted: rng.gen(),
        memo_stale_dropped: rng.gen(),
        last_reload_nodes: rng.gen(),
        last_reload_verdicts: rng.gen(),
        in_flight: rng.gen(),
        arena_lock_waits: rng.gen(),
        memo_lock_waits: rng.gen(),
        steals: rng.gen(),
        steal_fails: rng.gen(),
        local_cache_hits: rng.gen(),
        queue_wait_ms_total: rng.gen(),
        run_ms_total: rng.gen(),
        jobs_timed: rng.gen(),
        events_dropped: rng.gen(),
        jobs_cancelled: rng.gen(),
        budget_clamped_jobs: rng.gen(),
        seed_nodes_added: rng.gen(),
        seed_verdicts_imported: rng.gen(),
        jobs_timed_out: rng.gen(),
        jobs_replayed: rng.gen(),
    }
}

fn random_metric(rng: &mut SmallRng) -> sct_telemetry::MetricSnapshot {
    use sct_telemetry::{MetricKind, MetricSnapshot};
    let names = [
        sct_telemetry::names::SOLVER_CHECK_HIT,
        sct_telemetry::names::SOLVER_CHECK_MISS,
        sct_telemetry::names::STATE_EXPAND,
        sct_telemetry::names::JOB_RUN,
        "worker_busy_ns{worker=\"3\"}",
    ];
    let name = names[rng.gen_range(0..names.len())].to_string();
    match rng.gen_range(0..3) {
        0 => MetricSnapshot {
            name,
            kind: MetricKind::Counter,
            value: rng.gen(),
            sum_ns: 0,
            max_ns: 0,
            max_job: 0,
            buckets: Vec::new(),
        },
        1 => MetricSnapshot {
            name,
            kind: MetricKind::Gauge,
            value: rng.gen(),
            sum_ns: 0,
            max_ns: 0,
            max_job: 0,
            buckets: Vec::new(),
        },
        _ => {
            let buckets: Vec<u64> =
                (0..sct_telemetry::BUCKETS).map(|_| rng.gen_range(0..1_000_000)).collect();
            MetricSnapshot {
                name,
                kind: MetricKind::Histogram,
                value: buckets.iter().sum(),
                sum_ns: rng.gen(),
                max_ns: rng.gen(),
                max_job: rng.gen(),
                buckets,
            }
        }
    }
}

fn random_response(rng: &mut SmallRng) -> Response {
    match rng.gen_range(0..8) {
        0 => Response::Accepted { id: rng.gen() },
        1 => {
            let statuses = [
                JobStatus::Queued,
                JobStatus::Running,
                JobStatus::Done,
                JobStatus::Failed,
                JobStatus::Cancelled,
                JobStatus::TimedOut,
            ];
            Response::Verdicts {
                id: rng.gen(),
                status: statuses[rng.gen_range(0..statuses.len())],
                verdict: rng.gen_bool(0.7).then(|| random_verdict(rng)),
                stats: rng.gen_bool(0.7).then(|| random_explore_stats(rng)),
                violations: (0..rng.gen_range(0..3))
                    .map(|_| random_violation(rng))
                    .collect(),
                error: rng.gen_bool(0.3).then(|| random_string(rng)),
                elapsed_ms: rng.gen_bool(0.5).then(|| rng.gen()),
                clamped_states: rng.gen_bool(0.3).then(|| rng.gen()),
            }
        }
        2 => Response::EventBatch {
            id: rng.gen(),
            events: (0..rng.gen_range(0..5)).map(|_| random_event(rng)).collect(),
            next: rng.gen(),
            done: rng.gen_bool(0.5),
            dropped: rng.gen(),
        },
        3 => Response::Stats {
            stats: random_service_stats(rng),
        },
        4 => Response::Metrics {
            stats: random_service_stats(rng),
            metrics: (0..rng.gen_range(0..6)).map(|_| random_metric(rng)).collect(),
        },
        5 => Response::Seeded {
            nodes: rng.gen(),
            verdicts: rng.gen(),
        },
        6 => Response::Pong {
            in_flight: rng.gen(),
            queued: rng.gen(),
        },
        _ => Response::Error {
            message: random_string(rng),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every request round-trips through its wire line, and the line
    /// never contains a raw newline (the framing delimiter).
    #[test]
    fn requests_round_trip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let request = random_request(&mut rng);
        let line = request.to_line();
        prop_assert!(!line.contains('\n'), "framing broken: {line:?}");
        prop_assert_eq!(Request::parse(&line).unwrap(), request);
    }

    /// Every response round-trips through its wire line.
    #[test]
    fn responses_round_trip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let response = random_response(&mut rng);
        let line = response.to_line();
        prop_assert!(!line.contains('\n'), "framing broken: {line:?}");
        prop_assert_eq!(Response::parse(&line).unwrap(), response);
    }

    /// Truncating a valid request line anywhere yields a parse error —
    /// never a panic, never a silently different request.
    #[test]
    fn truncated_requests_error(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let line = random_request(&mut rng).to_line();
        let cut = rng.gen_range(0..line.len());
        if line.is_char_boundary(cut) {
            prop_assert!(Request::parse(&line[..cut]).is_err());
        }
    }

    /// Random byte flips in a valid response line never panic the
    /// parser (they may still parse, to a possibly different value —
    /// JSON has redundancy — but most flips must surface as errors).
    #[test]
    fn mutated_responses_never_panic(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let line = random_response(&mut rng).to_line();
        let mut bytes = line.into_bytes();
        for _ in 0..rng.gen_range(1..4) {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0..256) as u8;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = Response::parse(&text); // must return, not panic
        }
    }

    /// Pure garbage — random bytes, random printable soup — never
    /// panics either side of the codec.
    #[test]
    fn garbage_never_panics(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0..256);
        let soup: String = (0..len)
            .filter_map(|_| char::from_u32(rng.gen_range(0..0x2000)))
            .collect();
        let _ = Request::parse(&soup);
        let _ = Response::parse(&soup);
    }
}
