//! Property test: the work-stealing engine never changes results.
//!
//! Random `proggen` programs, random worker counts, random strategies,
//! and — the point of the exercise — random `steal_seed` values that
//! rotate each worker's victim order, hammering the steal/terminate
//! races from different interleavings than the fixed-seed suites ever
//! reach. Whatever the timing, the parallel engine must reproduce the
//! serial engine's verdict, witness multiset, and exact distinct-state
//! and step counts (the dedup argument: with deduplication on and no
//! truncation, every expansion order expands the same state set).
//!
//! The witness multiset here is keyed by `(pc, observation)` — the
//! fingerprint-determined parts of a violation. The *schedule prefix*
//! naming a witness is deliberately excluded: when two distinct
//! schedule prefixes reconverge on one fingerprint whose future leaks,
//! which prefix the report names depends on which duplicate won the
//! visited-set insert — deterministic serially, a race in parallel.
//! `proggen` programs hit such reconvergent witnesses routinely; the
//! litmus corpus and Table 2 never do, which is why the corpus suites
//! can (and do) pin full `(pc, schedule, observation)` equality.
//!
//! Small random programs are the adversarial case for *termination*,
//! not throughput: workers go hungry almost immediately, so the run
//! is dominated by steal sweeps, donation races, and the final
//! in-flight-counter countdown.

use pitchfork::{AnalysisSession, DetectorOptions, Report, StrategyKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sct_core::proggen::{random_config, random_program, ProgGenOptions};
use sct_core::reg::Reg;
use sct_core::{Config, Program};

const BOUND: usize = 10;

fn generate(seed: u64) -> (Program, Config, Vec<Reg>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let opts = ProgGenOptions::default();
    let program = random_program(&mut rng, &opts);
    let config = random_config(&mut rng, &opts);
    let symbolic: Vec<Reg> = (0..opts.regs).map(Reg::gpr).collect();
    (program, config, symbolic)
}

fn analyze(
    program: &Program,
    config: &Config,
    symbolic: &[Reg],
    strategy: StrategyKind,
    threads: usize,
    steal_seed: u64,
) -> Report {
    let mut options = DetectorOptions::v1_mode(BOUND).strategy(strategy);
    options.explorer.threads = threads;
    options.explorer.steal_seed = steal_seed;
    // Equality is only promised for un-truncated runs (a truncated
    // prefix is timing-dependent by contract), so lift the violation
    // cap — leaky proggen programs routinely exceed the default 64.
    options.explorer.max_violations = usize::MAX;
    AnalysisSession::with_options(options).analyze_symbolic(program, config, symbolic)
}

/// The order-insensitive witness multiset two equivalent runs must
/// share: every `(pc, observation)` pair with its multiplicity,
/// sorted. (See the module docs for why schedules are excluded.)
fn witness_multiset(r: &Report) -> Vec<(u64, String)> {
    let mut keys: Vec<(u64, String)> = r
        .violations
        .iter()
        .map(|v| (v.pc, v.observation.to_string()))
        .collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stealing_reproduces_serial_under_random_victim_order(
        (program_seed, threads, steal_seed, strategy_idx) in
            (any::<u64>(), 2usize..9, any::<u64>(), 0usize..StrategyKind::ALL.len()),
    ) {
        let strategy = StrategyKind::ALL[strategy_idx];
        let (program, config, symbolic) = generate(program_seed);
        let serial = analyze(&program, &config, &symbolic, strategy, 1, 0);
        prop_assert!(
            !serial.stats.truncated,
            "proggen program outgrew the budget; shrink ProgGenOptions"
        );
        let par = analyze(&program, &config, &symbolic, strategy, threads, steal_seed);
        prop_assert_eq!(par.verdict(), serial.verdict());
        prop_assert_eq!(par.stats.states, serial.stats.states, "distinct-state set");
        prop_assert_eq!(par.stats.steps, serial.stats.steps);
        prop_assert_eq!(witness_multiset(&par), witness_multiset(&serial));

        // Adaptive mode decides serial-vs-spill on its own; whatever it
        // picked must agree too.
        let adaptive = analyze(&program, &config, &symbolic, strategy, 0, steal_seed);
        prop_assert_eq!(adaptive.verdict(), serial.verdict());
        prop_assert_eq!(adaptive.stats.states, serial.stats.states);
        prop_assert_eq!(witness_multiset(&adaptive), witness_multiset(&serial));
    }

    /// Two runs with *different* steal seeds agree with each other on
    /// everything timing-invariant — the seed rotates victim order and
    /// nothing else.
    #[test]
    fn steal_seed_never_reaches_the_report(
        (program_seed, threads, seed_a, seed_b) in
            (any::<u64>(), 2usize..5, any::<u64>(), any::<u64>()),
    ) {
        let (program, config, symbolic) = generate(program_seed);
        let strategy = StrategyKind::Lifo;
        let a = analyze(&program, &config, &symbolic, strategy, threads, seed_a);
        let b = analyze(&program, &config, &symbolic, strategy, threads, seed_b);
        prop_assert!(!a.stats.truncated, "program outgrew the budget");
        prop_assert_eq!(a.verdict(), b.verdict());
        prop_assert_eq!(a.stats.states, b.stats.states);
        prop_assert_eq!(a.stats.steps, b.stats.steps);
        prop_assert_eq!(a.flagged_pcs(), b.flagged_pcs());
        prop_assert_eq!(witness_multiset(&a), witness_multiset(&b));
    }
}
