//! The shared-arena property of batch analysis, in its own process so
//! no concurrently running test interns nodes during the measurement:
//! a repeated batch is served entirely by the warm arena.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use pitchfork::{BatchAnalyzer, BatchItem, DetectorOptions};
use sct_core::examples::fig1;

#[test]
fn repeated_batch_interns_nothing_new() {
    let (p, cfg) = fig1();
    let run = |mode: DetectorOptions| {
        BatchAnalyzer::new(mode).analyze_all(vec![BatchItem::new("fig1", p.clone(), cfg.clone())])
    };
    let first = run(DetectorOptions::v1_mode(12));
    assert!(first.fresh_nodes() > 0, "cold run must populate the arena");
    let again = run(DetectorOptions::v1_mode(12));
    assert_eq!(
        again.fresh_nodes(),
        0,
        "a repeated batch must be fully served by the shared arena"
    );
    assert_eq!(
        first.totals.states, again.totals.states,
        "warm-arena exploration must be identical"
    );
    // A different mode reuses most structure: the condition and address
    // expressions are the same interned nodes.
    let v4 = run(DetectorOptions::v4_mode(12));
    assert!(
        v4.fresh_nodes() < first.fresh_nodes(),
        "v4 exploration of the same program must reuse v1's expressions \
         ({} new vs {} cold)",
        v4.fresh_nodes(),
        first.fresh_nodes()
    );
}
