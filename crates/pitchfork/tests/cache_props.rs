//! Property tests for cache round-trips over **machine-derived**
//! constraints: the exact expressions Pitchfork builds in production
//! (proggen programs driven down random feasible paths) survive
//! snapshot → epoch reset → hydrate with structural interning and
//! solver verdicts intact.
//!
//! Tests in this binary retire the process-wide arena, so they
//! serialize on a file-local lock.

use pitchfork::machine::SymMachine;
use pitchfork::state::SymState;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_cache::Snapshot;
use sct_core::proggen::{random_config, random_program, ProgGenOptions};
use sct_core::reg::Reg;
use sct_core::{Directive, OpCode};
use sct_symx::{arena_stats, retire_arena, solver_memo_stats, Expr, ExprKind, Solver, VarId};
use std::sync::Mutex;

static ARENA_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARENA_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Drive the symbolic machine down one random feasible path of a random
/// program with symbolic registers, returning the accumulated path
/// condition (the same exercise as `proggen_props`).
fn random_path_constraints(seed: u64) -> Vec<Expr> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let opts = ProgGenOptions::default();
    let program = random_program(&mut rng, &opts);
    let config = random_config(&mut rng, &opts);
    let machine = SymMachine::new(&program);
    let symbolic: Vec<Reg> = (0..opts.regs).map(Reg::gpr).collect();
    let mut state = SymState::from_config_symbolizing(&config, &symbolic);

    for _ in 0..120 {
        let next = state.rob.next_index();
        let mut candidates = vec![Directive::Fetch, Directive::FetchBranch(rng.gen_bool(0.5))];
        if let Some(min) = state.rob.min() {
            for i in min..next {
                candidates.push(Directive::Execute(i));
                candidates.push(Directive::ExecuteValue(i));
                candidates.push(Directive::ExecuteAddr(i));
            }
            candidates.push(Directive::Retire);
        }
        let mut stepped = false;
        while !candidates.is_empty() {
            let d = candidates.swap_remove(rng.gen_range(0..candidates.len()));
            if let Ok(succs) = machine.step(&state, d) {
                if !succs.is_empty() {
                    let k = rng.gen_range(0..succs.len());
                    state = succs.into_iter().nth(k).expect("index in range");
                    stepped = true;
                    break;
                }
            }
        }
        if !stepped {
            break;
        }
    }
    state.constraints
}

/// An owned expression shape that survives arena retirement.
#[derive(Clone, Debug)]
enum Tree {
    Const(u64),
    Var(u32),
    App(OpCode, Vec<Tree>),
}

fn to_tree(e: Expr) -> Tree {
    match e.kind() {
        ExprKind::Const(v) => Tree::Const(v),
        ExprKind::Var(v) => Tree::Var(v.0),
        ExprKind::App(op, args) => Tree::App(op, args.into_iter().map(to_tree).collect()),
    }
}

fn rebuild(tree: &Tree) -> Expr {
    match tree {
        Tree::Const(v) => Expr::constant(*v),
        Tree::Var(v) => Expr::var(VarId(*v)),
        Tree::App(op, args) => Expr::app(*op, args.iter().map(rebuild).collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Machine-derived path conditions round-trip through a snapshot
    /// and an epoch reset: rebuilding them interns zero fresh nodes and
    /// re-solving is answered by the imported memo with the cold
    /// verdict.
    #[test]
    fn proggen_constraints_survive_snapshot_roundtrip(seed in any::<u64>()) {
        let _guard = lock();
        let constraints = random_path_constraints(seed);
        if constraints.is_empty() {
            return Ok(());
        }
        let trees: Vec<Tree> = constraints.iter().map(|&e| to_tree(e)).collect();
        let solver = Solver::new();
        let cold = solver.check(&constraints);

        let bytes = Snapshot::capture().encode();
        retire_arena();
        Snapshot::decode(&bytes)
            .expect("own snapshot decodes")
            .hydrate()
            .expect("own snapshot hydrates");

        let nodes_after_hydrate = arena_stats().nodes;
        let rebuilt: Vec<Expr> = trees.iter().map(rebuild).collect();
        prop_assert_eq!(
            arena_stats().nodes, nodes_after_hydrate,
            "rebuilding machine constraints must be fully served by the snapshot"
        );
        let hits_before = solver_memo_stats().hits;
        let warm = solver.check(&rebuilt);
        prop_assert_eq!(&warm, &cold, "verdict changed across snapshot round-trip");
        prop_assert!(
            solver_memo_stats().hits > hits_before,
            "warm re-solve must hit the imported memo"
        );
    }
}
