//! Chaos suite: seeded fault schedules driven through real daemons,
//! asserting the robustness contract — **a fault can cost time, never
//! a verdict**. Every test that completes must produce output
//! byte-identical to a fault-free run; every fault that prevents
//! completion must surface as a clean degraded state (timed-out,
//! quarantined, replayed), never a wrong answer or a hang.
//!
//! The fault plan is process-global ([`sct_faults::install`] /
//! [`sct_faults::disarm`]), so every test here serializes on
//! `CHAOS_LOCK` and disarms before releasing it. Subprocess tests (the
//! corrupt-cache CLI runs) configure faults via `SCT_FAULTS` in the
//! child environment instead.

use pitchfork::client::Client;
use pitchfork::fleet::{self, FleetOptions, ManifestEntry};
use pitchfork::journal::Journal;
use pitchfork::protocol::Request;
use pitchfork::server::{Server, ServerOptions};
use pitchfork::service::{JobSpec, JobStatus, SessionService};
use pitchfork::transport::Endpoint;
use pitchfork::SessionBuilder;
use sct_core::examples::fig1;
use sct_core::reg::names::RA;
use sct_faults::{FaultPoint, Plan, Trigger};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

const WAIT: Duration = Duration::from_secs(60);

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_path(label: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sct_chaos_{label}_{}.{suffix}", std::process::id()))
}

fn fig1_source() -> String {
    let (program, config) = fig1();
    sct_asm::disassemble_with(&program, Some(&config))
}

fn spec_symbolic() -> JobSpec {
    JobSpec {
        symbolic: vec![RA],
        ..JobSpec::default()
    }
}

/// The fault-free reference verdict line for fig1 under `spec_symbolic`.
fn clean_fig1_line(name: &str) -> String {
    let mut session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let (p, cfg) = fig1();
    let report = session.analyze_symbolic(&p, &cfg, &[RA]);
    fleet::report_line(
        name,
        report.verdict(),
        report.stats.states,
        report.stats.schedules,
        report.stats.strategy,
        report.stats.truncated,
    )
}

// ----- stalls and drops over the wire -------------------------------------

#[test]
fn stalled_streams_delay_but_never_change_verdicts() {
    let _g = lock();
    let baseline = clean_fig1_line("fig1");
    sct_faults::install(
        Plan::new(11)
            .point(FaultPoint::ReadStall, Trigger::Every(3))
            .point(FaultPoint::WriteStall, Trigger::Every(4))
            .stall_ms(5),
    );
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let sock = temp_path("stall", "sock");
    let server = Server::bind(&sock, SessionService::new(session)).expect("bind");
    let mut client = Client::connect(&sock).expect("connect");
    let id = client
        .submit_source("fig1", fig1_source(), spec_symbolic())
        .expect("submit through stalled streams");
    let view = client.wait(id, WAIT).expect("job finishes despite stalls");
    assert_eq!(view.status, JobStatus::Done);
    let stats = view.stats.expect("stats");
    let line = fleet::report_line(
        "fig1",
        view.verdict.expect("verdict"),
        stats.states,
        stats.schedules,
        stats.strategy,
        stats.truncated,
    );
    assert!(
        sct_faults::fired(FaultPoint::ReadStall) + sct_faults::fired(FaultPoint::WriteStall) > 0,
        "the schedule actually injected stalls"
    );
    sct_faults::disarm();
    assert_eq!(line, baseline, "stalls must not perturb the verdict");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn fleet_requeues_around_injected_connection_drops() {
    let _g = lock();
    let manifest: Vec<ManifestEntry> = (0..4)
        .map(|i| ManifestEntry {
            name: format!("fig1-{i}.sasm"),
            source: fig1_source(),
        })
        .collect();
    let baseline: Vec<String> = manifest.iter().map(|e| clean_fig1_line(&e.name)).collect();

    let bind = |_: usize| {
        let session = SessionBuilder::new().v1_mode(16).build().unwrap();
        Server::bind_endpoint(
            &Endpoint::Tcp("127.0.0.1:0".to_string()),
            SessionService::new(session),
            1,
            ServerOptions::default(),
        )
        .expect("bind tcp")
    };
    let s1 = bind(0);
    let s2 = bind(1);
    // One injected drop somewhere in the run: whichever stream takes
    // it — a submit, a status poll, a server-side read — the entry is
    // requeued under the retry budget and completes elsewhere.
    sct_faults::install(Plan::new(23).point(FaultPoint::ConnDrop, Trigger::At(7)));
    let options = FleetOptions {
        workers: vec![s1.local_addr().to_string(), s2.local_addr().to_string()],
        spec: spec_symbolic(),
        retry_backoff: Duration::from_millis(5),
        ..FleetOptions::default()
    };
    let report = fleet::run_fleet(&manifest, &options, |_| {}).expect("fleet run");
    let dropped = sct_faults::fired(FaultPoint::ConnDrop);
    sct_faults::disarm();
    assert_eq!(dropped, 1, "the at:7 schedule fired exactly once");
    assert_eq!(report.failed(), 0, "outcomes: {:?}", report.outcomes);
    let merged: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| o.line.clone().expect("completed entry"))
        .collect();
    assert_eq!(
        merged, baseline,
        "verdicts after an injected drop are byte-identical to a clean run"
    );

    for server in [&s1, &s2] {
        let mut c = Client::connect_addr(server.local_addr()).unwrap();
        c.shutdown().unwrap();
    }
    s1.wait();
    s2.wait();
}

// ----- deadlines ----------------------------------------------------------

#[test]
fn expired_deadline_times_out_with_unknown_never_secure() {
    let _g = lock();
    sct_faults::disarm();
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let mut svc = SessionService::new(session);
    // deadline_ms: 0 expires before the first state expansion — the
    // deterministic worst case.
    let doomed = svc.submit_source(
        "doomed",
        &fig1_source(),
        JobSpec {
            deadline_ms: Some(0),
            ..spec_symbolic()
        },
    );
    // A deadline-less job in the same queue is untouched.
    let fine = svc.submit_source("fine", &fig1_source(), spec_symbolic());
    svc.run_pending();

    assert_eq!(svc.status(doomed), Some(JobStatus::TimedOut));
    let rec = svc.record(doomed).expect("record");
    let report = rec.report.expect("timed-out jobs keep their partial report");
    assert!(report.stats.deadline_exceeded);
    assert!(report.stats.truncated, "deadline expiry implies truncation");
    assert!(
        !matches!(report.verdict(), pitchfork::Verdict::Secure),
        "a timed-out clean run must report unknown, never secure: {:?}",
        report.verdict()
    );

    assert_eq!(svc.status(fine), Some(JobStatus::Done));
    let stats = svc.stats();
    assert_eq!(stats.jobs_timed_out, 1);
    assert_eq!(stats.jobs_done, 1, "timed-out jobs do not count as done");
}

#[test]
fn deadline_rides_the_wire_and_pong_reports_liveness() {
    let _g = lock();
    sct_faults::disarm();
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let sock = temp_path("deadline", "sock");
    let server = Server::bind(&sock, SessionService::new(session)).expect("bind");
    let mut client = Client::connect(&sock).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("socket timeout");
    // The health verb answers on the connection thread.
    let (in_flight, _queued) = client.ping().expect("pong");
    assert_eq!(in_flight, 0);
    let id = client
        .submit_source(
            "doomed",
            fig1_source(),
            JobSpec {
                deadline_ms: Some(0),
                ..spec_symbolic()
            },
        )
        .expect("submit");
    let view = client.wait(id, WAIT).expect("terminal");
    assert_eq!(view.status, JobStatus::TimedOut);
    let stats = view.stats.expect("partial stats survive the wire");
    assert!(stats.deadline_exceeded, "deadline flag round-trips");
    let service_stats = client.shutdown().expect("shutdown");
    assert_eq!(service_stats.jobs_timed_out, 1);
    server.wait();
}

// ----- journal replay -----------------------------------------------------

#[test]
fn journal_replays_interrupted_jobs_with_identical_verdicts() {
    let _g = lock();
    sct_faults::disarm();
    let baseline = clean_fig1_line("fig1-crashed");
    let dir = temp_path("journal", "d");
    let _ = std::fs::remove_dir_all(&dir);
    let journal_path = dir.join("daemon.journal");

    // Forge the journal a crashed daemon would leave behind: one job
    // that had started (died mid-run) and one still queued, plus a
    // torn half-record from the fatal append.
    {
        let mut j = Journal::create(&journal_path).expect("create journal");
        let line = |name: &str| {
            Request::Submit {
                name: name.into(),
                source: fig1_source(),
                spec: spec_symbolic(),
            }
            .to_line()
        };
        j.submitted(1, &line("fig1-crashed")).unwrap();
        j.submitted(2, &line("fig1-queued")).unwrap();
        j.started(1).unwrap();
        drop(j);
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .unwrap();
        f.write_all(b"{\"ev\":\"subm").unwrap();
    }

    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let sock = temp_path("journal", "sock");
    let server = Server::bind_endpoint(
        &Endpoint::Unix(sock.clone()),
        SessionService::new(session),
        1,
        ServerOptions {
            journal: Some(journal_path.clone()),
            ..ServerOptions::default()
        },
    )
    .expect("bind with journal replay");

    let mut client = Client::connect(&sock).expect("connect");
    // Replayed jobs got fresh ids 1 and 2, in old-id order.
    let v1 = client.wait(pitchfork::JobId::from_u64(1), WAIT).expect("replayed job 1");
    let v2 = client.wait(pitchfork::JobId::from_u64(2), WAIT).expect("replayed job 2");
    for view in [&v1, &v2] {
        assert_eq!(view.status, JobStatus::Done);
    }
    let stats1 = v1.stats.as_ref().expect("stats");
    let line1 = fleet::report_line(
        "fig1-crashed",
        v1.verdict.as_ref().expect("verdict"),
        stats1.states,
        stats1.schedules,
        stats1.strategy,
        stats1.truncated,
    );
    assert_eq!(
        line1, baseline,
        "a replayed interrupted job re-runs to the byte-identical verdict"
    );
    let service_stats = client.shutdown().expect("shutdown");
    assert_eq!(service_stats.jobs_replayed, 2);
    assert_eq!(service_stats.jobs_done, 2);
    server.wait();

    // The journal was compacted on restart and now retires both jobs:
    // a second replay finds nothing live.
    assert!(
        Journal::replay(&journal_path).expect("re-replay").is_empty(),
        "finished replayed jobs must not replay again"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn completed_jobs_never_replay_across_clean_restarts() {
    let _g = lock();
    sct_faults::disarm();
    let dir = temp_path("journal2", "d");
    let _ = std::fs::remove_dir_all(&dir);
    let journal_path = dir.join("daemon.journal");
    let sock = temp_path("journal2", "sock");

    // Life 1: run a job to completion under the journal.
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let server = Server::bind_endpoint(
        &Endpoint::Unix(sock.clone()),
        SessionService::new(session),
        1,
        ServerOptions {
            journal: Some(journal_path.clone()),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(&sock).expect("connect");
    let id = client
        .submit_source("fig1", fig1_source(), spec_symbolic())
        .expect("submit");
    assert_eq!(client.wait(id, WAIT).expect("done").status, JobStatus::Done);
    client.shutdown().expect("shutdown");
    server.wait();

    // Life 2: a clean restart replays nothing.
    let session = SessionBuilder::new().v1_mode(16).build().unwrap();
    let server = Server::bind_endpoint(
        &Endpoint::Unix(sock.clone()),
        SessionService::new(session),
        1,
        ServerOptions {
            journal: Some(journal_path.clone()),
            ..ServerOptions::default()
        },
    )
    .expect("rebind");
    let mut client = Client::connect(&sock).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_replayed, 0);
    assert_eq!(stats.jobs_submitted, 0);
    client.shutdown().expect("shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- cache corruption (in-process) --------------------------------------

#[test]
fn corrupt_snapshot_is_quarantined_not_fatal() {
    let _g = lock();
    sct_faults::disarm();
    let cache = temp_path("quarantine", "cache");
    let bad = PathBuf::from(format!("{}.bad", cache.display()));
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&bad);
    std::fs::write(&cache, b"these are not snapshot bytes").unwrap();
    match sct_cache::load_or_quarantine(&cache) {
        sct_cache::DegradedLoad::Quarantined { moved_to, .. } => {
            assert_eq!(moved_to.as_deref(), Some(bad.as_path()));
        }
        other => panic!("corrupt snapshot must quarantine, got {other:?}"),
    }
    assert!(!cache.exists(), "the corrupt file was moved aside");
    assert!(bad.exists(), "the evidence is preserved at PATH.bad");
    // A missing path is an ordinary cold start, not a quarantine.
    assert!(matches!(
        sct_cache::load_or_quarantine(&cache),
        sct_cache::DegradedLoad::Missing
    ));
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn injected_snapshot_bit_flip_degrades_to_cold_start() {
    let _g = lock();
    // Build a genuine snapshot, then arm the bit-flip fault: the load
    // sees corrupted bytes, fails to decode (or decodes to a rejected
    // image), and the caller degrades instead of trusting it.
    let cache = temp_path("bitflip", "cache");
    let bad = PathBuf::from(format!("{}.bad", cache.display()));
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&bad);
    let mut donor = SessionBuilder::new().v1_mode(16).cache(&cache).build().unwrap();
    let (p, cfg) = fig1();
    let _ = donor.analyze_symbolic(&p, &cfg, &[RA]);
    donor.save().expect("save").expect("snapshot written");

    sct_faults::install(Plan::new(3).point(FaultPoint::SnapshotBitFlip, Trigger::At(1)));
    let outcome = sct_cache::load_or_quarantine(&cache);
    let flipped = sct_faults::fired(FaultPoint::SnapshotBitFlip);
    sct_faults::disarm();
    assert_eq!(flipped, 1, "the load passed through the bit-flip point");
    // A single flipped bit may land in checksummed payload (decode
    // error → quarantine) — either way the process survived and the
    // arena was not poisoned; what is forbidden is pretending the load
    // was clean when decode failed.
    match outcome {
        sct_cache::DegradedLoad::Quarantined { .. } => {
            assert!(bad.exists(), "quarantine preserved the corrupt image");
        }
        sct_cache::DegradedLoad::Loaded(_) => {
            // The flip landed somewhere the codec tolerates; fine.
        }
        sct_cache::DegradedLoad::Missing => panic!("the snapshot existed"),
    }
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&bad);
}

// ----- cache corruption (end-to-end, subprocess) --------------------------

fn run_cli(args: &[&str], env: &[(&str, &str)]) -> (String, String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pitchfork"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("pitchfork binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.code(),
    )
}

/// Verdict payload of a one-shot run: stdout minus the cache
/// bookkeeping lines (which legitimately differ warm vs cold).
fn verdict_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| !l.starts_with("cache:"))
        .map(str::to_string)
        .collect()
}

#[test]
fn truncated_and_bitflipped_cache_files_fall_back_cold_with_identical_verdicts() {
    let _g = lock();
    sct_faults::disarm();
    let sasm = temp_path("e2e_corrupt", "sasm");
    std::fs::write(&sasm, fig1_source()).unwrap();
    let cache = temp_path("e2e_corrupt", "cache");
    let bad = PathBuf::from(format!("{}.bad", cache.display()));
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&bad);
    let sasm_s = sasm.to_str().unwrap();
    let cache_s = cache.to_str().unwrap();

    // Reference run: cold, saves a valid snapshot.
    let (ref_out, _, ref_code) =
        run_cli(&["--bound", "16", "--symbolic", "ra", "--cache", cache_s, sasm_s], &[]);
    let reference = verdict_lines(&ref_out);
    assert!(cache.exists(), "first run saved a snapshot");
    let pristine = std::fs::read(&cache).unwrap();

    // Truncated snapshot: keep the first half.
    std::fs::write(&cache, &pristine[..pristine.len() / 2]).unwrap();
    let (out, err, code) =
        run_cli(&["--bound", "16", "--symbolic", "ra", "--cache", cache_s, sasm_s], &[]);
    assert_eq!(code, ref_code, "stderr: {err}");
    assert_eq!(
        verdict_lines(&out),
        reference,
        "a truncated cache must cold-start to identical verdicts"
    );
    assert!(err.contains("cold start"), "stderr: {err}");
    assert!(err.contains("quarantined"), "stderr: {err}");
    assert!(bad.exists(), "truncated snapshot quarantined to .bad");
    let _ = std::fs::remove_file(&bad);

    // Bit-flipped snapshot: injected by the subprocess's own fault
    // plan via SCT_FAULTS, exactly as the chaos-smoke CI leg does.
    std::fs::write(&cache, &pristine).unwrap();
    let (out, err, code) = run_cli(
        &["--bound", "16", "--symbolic", "ra", "--cache", cache_s, sasm_s],
        &[("SCT_FAULTS", "seed=9,snapshot-bit-flip=at:1")],
    );
    assert_eq!(code, ref_code, "stderr: {err}");
    assert_eq!(
        verdict_lines(&out),
        reference,
        "a bit-flipped cache must not change any verdict"
    );

    let _ = std::fs::remove_file(&sasm);
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn corrupt_baseline_directory_degrades_ci_gate_to_cold_full_run() {
    let _g = lock();
    sct_faults::disarm();
    let sasm = temp_path("e2e_gate", "sasm");
    std::fs::write(&sasm, fig1_source()).unwrap();
    let dir = temp_path("e2e_gate", "baseline");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A manifest that is not a manifest.
    std::fs::write(dir.join("baseline.manifest"), "v999 utter nonsense\n").unwrap();
    let (out, err, code) = run_cli(
        &["ci-gate", "--baseline", dir.to_str().unwrap(), "--bound", "16", sasm.to_str().unwrap()],
        &[],
    );
    // fig1 is insecure but that is not a regression from an empty
    // baseline — the degraded gate passes and promotes a fresh one.
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(
        err.contains("running full cold analysis"),
        "the gate says why it went cold: {err}"
    );
    assert!(
        out.lines().any(|l| l.contains("INSECURE") || l.contains("VIOLATION")),
        "the cold run still analyzed the corpus: {out}"
    );
    assert!(
        dir.join("baseline.manifest").exists(),
        "a fresh baseline was promoted over the corrupt one"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&sasm);
}
