//! Property tests on `proggen`-generated programs: the interner and the
//! worklist engine against real machine-derived expressions.
//!
//! Random forward-only programs with symbolized registers exercise the
//! exact expressions Pitchfork builds in production (branch conditions,
//! concretized addresses, forwarded values), rather than synthetic
//! trees.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use pitchfork::machine::SymMachine;
use pitchfork::state::SymState;
use pitchfork::{Detector, DetectorOptions};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_core::proggen::{random_config, random_program, ProgGenOptions};
use sct_core::reg::Reg;
use sct_core::Directive;
use sct_symx::{Expr, ExprKind, Solver, Verdict};

/// Drive the symbolic machine down one random feasible path of a random
/// program with symbolic registers, returning the accumulated path
/// condition.
fn random_path_constraints(seed: u64) -> Vec<Expr> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let opts = ProgGenOptions::default();
    let program = random_program(&mut rng, &opts);
    let config = random_config(&mut rng, &opts);
    let machine = SymMachine::new(&program);
    let symbolic: Vec<Reg> = (0..opts.regs).map(Reg::gpr).collect();
    let mut state = SymState::from_config_symbolizing(&config, &symbolic);

    for _ in 0..200 {
        let next = state.rob.next_index();
        let mut candidates = vec![Directive::Fetch, Directive::FetchBranch(rng.gen_bool(0.5))];
        if let Some(min) = state.rob.min() {
            for i in min..next {
                candidates.push(Directive::Execute(i));
                candidates.push(Directive::ExecuteValue(i));
                candidates.push(Directive::ExecuteAddr(i));
            }
            candidates.push(Directive::Retire);
        }
        // Random applicable directive; stop when nothing applies.
        let mut stepped = false;
        while !candidates.is_empty() {
            let d = candidates.swap_remove(rng.gen_range(0..candidates.len()));
            if let Ok(succs) = machine.step(&state, d) {
                if !succs.is_empty() {
                    let k = rng.gen_range(0..succs.len());
                    state = succs.into_iter().nth(k).expect("index in range");
                    stepped = true;
                    break;
                }
            }
        }
        if !stepped {
            break;
        }
    }
    state.constraints
}

/// Rebuild an expression verbatim through [`Expr::raw_app`].
fn rebuild_raw(e: Expr) -> Expr {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => e,
        ExprKind::App(op, args) => {
            let args = args.into_iter().map(rebuild_raw).collect();
            Expr::raw_app(op, args)
        }
    }
}

/// Rebuild an expression through the simplifying constructor.
fn resimplify(e: Expr) -> Expr {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => e,
        ExprKind::App(op, args) => {
            let args = args.into_iter().map(resimplify).collect();
            Expr::app(op, args)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Machine-derived path conditions are fixed points of the
    /// simplifier, and re-deriving them interns to the same ids.
    #[test]
    fn machine_constraints_are_interned_fixed_points(seed in any::<u64>()) {
        let constraints = random_path_constraints(seed);
        let again = random_path_constraints(seed);
        prop_assert_eq!(
            &constraints, &again,
            "the same path must intern to the same constraint ids"
        );
        for &c in &constraints {
            prop_assert_eq!(resimplify(c), c, "machine constraint {} not a fixed point", c);
        }
    }

    /// Solver verdicts on machine-derived path conditions survive
    /// de-simplification: no `Sat`/`Unsat` contradiction, and models
    /// satisfy both forms. (The machine only extends feasible paths, so
    /// most sets are satisfiable — the raw form must agree.)
    #[test]
    fn solver_verdicts_survive_desimplification(seed in any::<u64>()) {
        let constraints = random_path_constraints(seed);
        if constraints.is_empty() {
            return Ok(());
        }
        let raw: Vec<Expr> = constraints.iter().map(|&e| rebuild_raw(e)).collect();
        let solver = Solver::new();
        let vs = solver.check(&constraints);
        let vr = solver.check(&raw);
        prop_assert!(
            !(matches!(vs, Verdict::Sat(_)) && vr == Verdict::Unsat),
            "simplified Sat but raw Unsat"
        );
        prop_assert!(
            !(vs == Verdict::Unsat && matches!(vr, Verdict::Sat(_))),
            "simplified Unsat but raw Sat"
        );
        if let Verdict::Sat(model) = &vs {
            for (&s, &r) in constraints.iter().zip(&raw) {
                prop_assert_ne!(s.eval(model), 0, "model misses {}", s);
                prop_assert_ne!(r.eval(model), 0, "model misses raw {}", r);
            }
        }
    }

    /// On random programs, the deduplicating worklist engine reaches the
    /// same verdict as duplicate-blind exploration, never with more
    /// states.
    #[test]
    fn dedup_preserves_verdicts_on_random_programs(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = ProgGenOptions::default();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);
        for v4 in [false, true] {
            let mk = |dedup: bool| {
                let mut o = if v4 {
                    DetectorOptions::v4_mode(12)
                } else {
                    DetectorOptions::v1_mode(12)
                }
                .dedup(dedup);
                o.explorer.max_states = 20_000;
                o
            };
            let on = Detector::new(mk(true)).analyze(&program, &config);
            let off = Detector::new(mk(false)).analyze(&program, &config);
            // A truncated run's verdict is budget-dependent; only
            // compare complete explorations.
            if !on.stats.truncated && !off.stats.truncated {
                prop_assert_eq!(
                    on.has_violations(),
                    off.has_violations(),
                    "dedup changed the verdict (v4={})", v4
                );
                prop_assert!(on.stats.states <= off.stats.states);
            }
        }
    }
}
