//! Violation reports.

use sct_core::{Observation, Pc, Schedule};
use std::collections::BTreeSet;
use std::fmt;

/// One speculative constant-time violation found by the explorer.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The secret-labeled observation that witnessed the leak.
    pub observation: Observation,
    /// The schedule prefix (worst-case attacker directives) leading to it.
    pub schedule: Schedule,
    /// The full observation trace up to and including the witness.
    pub trace: Vec<Observation>,
    /// The program point of the most recently fetched instruction when
    /// the leak occurred (best-effort source attribution).
    pub pc: Pc,
    /// Path constraints active when the leak occurred (rendered).
    pub constraints: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.observation)?;
        writeln!(f, "  near program point {}", self.pc)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        write!(f, "  trace:")?;
        for o in &self.trace {
            write!(f, " {o};")?;
        }
        writeln!(f)?;
        if !self.constraints.is_empty() {
            writeln!(f, "  path constraints:")?;
            for c in &self.constraints {
                writeln!(f, "    {c}")?;
            }
        }
        Ok(())
    }
}

/// The typed analysis verdict: what the exploration established, with
/// the caveat that makes it meaningful. Replaces the old stringly
/// verdict; [`fmt::Display`] renders the historical strings, so text
/// output is unchanged for the secure/insecure cases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every worst-case schedule within the speculation bound was
    /// explored and none produced a secret-labeled observation.
    Secure,
    /// At least one witness schedule leaks; the witnesses (path,
    /// schedule, trace) are in [`Report::violations`].
    Insecure {
        /// Number of witnesses found.
        witnesses: usize,
    },
    /// Exploration hit the state budget before finding a witness or
    /// exhausting the schedule space: no conclusion either way.
    Unknown {
        /// States expanded before the budget truncated the search.
        explored: usize,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Insecure`].
    pub fn is_insecure(&self) -> bool {
        matches!(self, Verdict::Insecure { .. })
    }

    /// `true` for [`Verdict::Secure`] (exhaustive within the bound).
    pub fn is_secure(&self) -> bool {
        matches!(self, Verdict::Secure)
    }

    /// Two verdicts agree when both flag, or both do not flag, a
    /// violation ([`Verdict::Unknown`] agrees with nothing — an
    /// inconclusive search is not evidence of security).
    pub fn agrees_with(&self, other: &Verdict) -> bool {
        match (self, other) {
            (Verdict::Unknown { .. }, _) | (_, Verdict::Unknown { .. }) => false,
            _ => self.is_insecure() == other.is_insecure(),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Secure => f.pad("secure (within bound)"),
            Verdict::Insecure { .. } => f.pad("VIOLATION"),
            Verdict::Unknown { .. } => f.pad("unknown (budget exhausted)"),
        }
    }
}

/// Exploration statistics (used by the tractability benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreStats {
    /// The frontier order the exploration ran under (see
    /// [`crate::StrategyKind::name`]).
    pub strategy: &'static str,
    /// States expanded when the first violation was witnessed (`None`
    /// when no violation was found) — the strategy-comparison metric.
    pub first_witness_states: Option<usize>,
    /// Schedule length (directive count) of the first witness found.
    pub first_witness_depth: Option<usize>,
    /// Symbolic states expanded (after deduplication).
    pub states: usize,
    /// Frontier states pruned because an identical state (same
    /// fingerprint: ROB, registers, memory, path condition) was already
    /// expanded along another schedule.
    pub deduped: usize,
    /// Largest worklist size observed.
    pub frontier_peak: usize,
    /// Complete schedules (paths run to completion or violation).
    pub schedules: usize,
    /// Machine steps taken.
    pub steps: usize,
    /// Solver feasibility queries issued while exploring (delta of the
    /// process-wide counter; approximate when explorations run
    /// concurrently in one process).
    pub solver_queries: usize,
    /// Queries answered from the process-wide verdict memo (same
    /// delta-of-global caveat as [`ExploreStats::solver_queries`]).
    pub solver_memo_hits: usize,
    /// Queries that ran the full solver pipeline.
    pub solver_memo_misses: usize,
    /// Memoized verdicts evicted by the capacity guard while this
    /// exploration ran (LRU by last hit; same delta-of-global caveat as
    /// [`ExploreStats::solver_queries`]).
    pub solver_memo_evicted: usize,
    /// Worker threads the exploration ran on (1 = the serial engine).
    pub threads: usize,
    /// Contended expression-interner lock acquisitions while this
    /// exploration ran (delta of the process-wide counter; the
    /// shard-contention signal the parallel engine is judged by).
    pub arena_lock_waits: usize,
    /// Contended solver-memo lock acquisitions while this exploration
    /// ran (same delta-of-global caveat).
    pub memo_lock_waits: usize,
    /// Cross-worker batch steals the work-stealing engine performed
    /// (0 under the serial engine).
    pub steals: usize,
    /// Steal sweeps that found every donation buffer empty (the worker
    /// parked afterwards).
    pub steal_fails: usize,
    /// Intern constructions and solver queries answered by a worker's
    /// thread-local L1 cache, touching no shared lock (summed exactly
    /// over this exploration's workers — no delta-of-global caveat).
    pub local_cache_hits: usize,
    /// `true` when exploration hit the state budget and stopped early.
    pub truncated: bool,
    /// `true` when exploration stopped because the wall-clock deadline
    /// ([`crate::ExplorerOptions::deadline_ms`]) expired. Implies
    /// [`ExploreStats::truncated`]: an expired deadline truncates the
    /// search, so a clean (violation-free) run still reports
    /// [`Verdict::Unknown`], never a false `Secure`.
    pub deadline_exceeded: bool,
}

impl Default for ExploreStats {
    fn default() -> Self {
        ExploreStats {
            strategy: "lifo",
            first_witness_states: None,
            first_witness_depth: None,
            states: 0,
            deduped: 0,
            frontier_peak: 0,
            schedules: 0,
            steps: 0,
            solver_queries: 0,
            solver_memo_hits: 0,
            solver_memo_misses: 0,
            solver_memo_evicted: 0,
            threads: 1,
            arena_lock_waits: 0,
            memo_lock_waits: 0,
            steals: 0,
            steal_fails: 0,
            local_cache_hits: 0,
            truncated: false,
            deadline_exceeded: false,
        }
    }
}

/// The analysis report for one program.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations found (possibly several per instruction).
    pub violations: Vec<Violation>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl Report {
    /// `true` when at least one violation was found.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The distinct program points flagged.
    pub fn flagged_pcs(&self) -> BTreeSet<Pc> {
        self.violations.iter().map(|v| v.pc).collect()
    }

    /// The typed verdict: [`Verdict::Insecure`] when witnesses exist,
    /// [`Verdict::Unknown`] when the search truncated without one,
    /// [`Verdict::Secure`] when the bounded space was exhausted clean.
    pub fn verdict(&self) -> Verdict {
        if self.has_violations() {
            Verdict::Insecure {
                witnesses: self.violations.len(),
            }
        } else if self.stats.truncated {
            Verdict::Unknown {
                explored: self.stats.states,
            }
        } else {
            Verdict::Secure
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} violation(s); {} states ({} deduped), {} schedules, {} steps{}",
            self.verdict(),
            self.violations.len(),
            self.stats.states,
            self.stats.deduped,
            self.stats.schedules,
            self.stats.steps,
            if self.stats.truncated {
                " (truncated)"
            } else {
                ""
            }
        )?;
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::Label;

    #[test]
    fn report_verdicts() {
        let mut r = Report::default();
        assert!(!r.has_violations());
        assert_eq!(r.verdict(), Verdict::Secure);
        assert_eq!(r.verdict().to_string(), "secure (within bound)");
        r.stats.truncated = true;
        r.stats.states = 7;
        assert_eq!(r.verdict(), Verdict::Unknown { explored: 7 });
        assert!(!r.verdict().agrees_with(&Verdict::Secure));
        r.stats.truncated = false;
        r.violations.push(Violation {
            observation: Observation::Read {
                addr: 0x66,
                label: Label::Secret,
            },
            schedule: Schedule::new(),
            trace: vec![],
            pc: 3,
            constraints: vec![],
        });
        assert!(r.has_violations());
        assert_eq!(r.verdict(), Verdict::Insecure { witnesses: 1 });
        assert!(r.verdict().is_insecure());
        assert!(r.verdict().agrees_with(&Verdict::Insecure { witnesses: 9 }));
        assert!(!r.verdict().agrees_with(&Verdict::Secure));
        assert!(r.flagged_pcs().contains(&3));
        let text = r.to_string();
        assert!(text.contains("VIOLATION"));
        assert!(text.contains("read 0x66sec"));
    }
}
