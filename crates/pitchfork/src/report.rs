//! Violation reports.

use sct_core::{Observation, Pc, Schedule};
use std::collections::BTreeSet;
use std::fmt;

/// One speculative constant-time violation found by the explorer.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The secret-labeled observation that witnessed the leak.
    pub observation: Observation,
    /// The schedule prefix (worst-case attacker directives) leading to it.
    pub schedule: Schedule,
    /// The full observation trace up to and including the witness.
    pub trace: Vec<Observation>,
    /// The program point of the most recently fetched instruction when
    /// the leak occurred (best-effort source attribution).
    pub pc: Pc,
    /// Path constraints active when the leak occurred (rendered).
    pub constraints: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.observation)?;
        writeln!(f, "  near program point {}", self.pc)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        write!(f, "  trace:")?;
        for o in &self.trace {
            write!(f, " {o};")?;
        }
        writeln!(f)?;
        if !self.constraints.is_empty() {
            writeln!(f, "  path constraints:")?;
            for c in &self.constraints {
                writeln!(f, "    {c}")?;
            }
        }
        Ok(())
    }
}

/// Exploration statistics (used by the tractability benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Symbolic states expanded (after deduplication).
    pub states: usize,
    /// Frontier states pruned because an identical state (same
    /// fingerprint: ROB, registers, memory, path condition) was already
    /// expanded along another schedule.
    pub deduped: usize,
    /// Largest worklist size observed.
    pub frontier_peak: usize,
    /// Complete schedules (paths run to completion or violation).
    pub schedules: usize,
    /// Machine steps taken.
    pub steps: usize,
    /// Solver feasibility queries issued while exploring (delta of the
    /// process-wide counter; approximate when explorations run
    /// concurrently in one process).
    pub solver_queries: usize,
    /// Queries answered from the process-wide verdict memo (same
    /// delta-of-global caveat as [`ExploreStats::solver_queries`]).
    pub solver_memo_hits: usize,
    /// Queries that ran the full solver pipeline.
    pub solver_memo_misses: usize,
    /// `true` when exploration hit the state budget and stopped early.
    pub truncated: bool,
}

/// The analysis report for one program.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations found (possibly several per instruction).
    pub violations: Vec<Violation>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl Report {
    /// `true` when at least one violation was found.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The distinct program points flagged.
    pub fn flagged_pcs(&self) -> BTreeSet<Pc> {
        self.violations.iter().map(|v| v.pc).collect()
    }

    /// A one-line verdict.
    pub fn verdict(&self) -> &'static str {
        if self.has_violations() {
            "VIOLATION"
        } else {
            "secure (within bound)"
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} violation(s); {} states ({} deduped), {} schedules, {} steps{}",
            self.verdict(),
            self.violations.len(),
            self.stats.states,
            self.stats.deduped,
            self.stats.schedules,
            self.stats.steps,
            if self.stats.truncated {
                " (truncated)"
            } else {
                ""
            }
        )?;
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::Label;

    #[test]
    fn report_verdicts() {
        let mut r = Report::default();
        assert!(!r.has_violations());
        assert_eq!(r.verdict(), "secure (within bound)");
        r.violations.push(Violation {
            observation: Observation::Read {
                addr: 0x66,
                label: Label::Secret,
            },
            schedule: Schedule::new(),
            trace: vec![],
            pc: 3,
            constraints: vec![],
        });
        assert!(r.has_violations());
        assert_eq!(r.verdict(), "VIOLATION");
        assert!(r.flagged_pcs().contains(&3));
        let text = r.to_string();
        assert!(text.contains("VIOLATION"));
        assert!(text.contains("read 0x66sec"));
    }
}
