//! Pluggable frontier orders for the worklist explorer.
//!
//! The explorer of [`crate::explorer`] is agnostic to the order in
//! which frontier states are expanded: any order visits the same set of
//! distinct states (the visited set is order-insensitive), so every
//! strategy reaches the same *verdict* — but the number of states
//! expanded before the **first witness** differs wildly. Under a tight
//! state budget the right order is the difference between finding a
//! violation and truncating without one; the strategy-equivalence test
//! suite pins the former invariant, the `strategy_sweep` bench measures
//! the latter.
//!
//! Four orders ship:
//!
//! * [`Lifo`] — depth-first (the historical default): follows one
//!   schedule to completion before backtracking, cheap and
//!   cache-friendly;
//! * [`Fifo`] — breadth-first: finds *shortest* witness schedules,
//!   at the cost of a wide frontier;
//! * [`DeepestRob`] — priority on reorder-buffer occupancy: states
//!   speculating most deeply expand first, on the theory that Spectre
//!   witnesses live at maximal transient depth;
//! * [`ViolationLikely`] — priority on a leak-proximity score:
//!   unresolved branches in flight (mis-speculation in progress) and
//!   pending loads (the instructions that produce observations) weigh
//!   a state up.
//!
//! Strategies are selected by [`StrategyKind`] (builder- and
//! CLI-facing) or injected as custom [`SearchStrategy`] trait objects
//! via [`crate::SessionBuilder`].

use crate::state::{SymState, SymTransient};
use std::collections::{BinaryHeap, VecDeque};

/// A frontier order: the mutable worklist the explorer pushes successor
/// states into and pops the next state to expand from.
///
/// One strategy instance lives for exactly one exploration; the
/// explorer constructs a fresh frontier per [`crate::Explorer::explore`]
/// call through [`StrategyKind::frontier`] (or the session's custom
/// factory). Implementations must be deterministic: two explorations of
/// the same program with the same options must pop states in the same
/// order, or reports stop being reproducible. (Parallel exploration
/// gives each worker its own private frontier of this type and
/// rebalances by donating batches between workers, so *global* pop
/// order additionally depends on steal timing there — each worker
/// still pops its own states in strategy order, and the strategy acts
/// as a priority *hint* across workers; see the crate-level "Parallel
/// exploration" notes.)
pub trait SearchStrategy: Send {
    /// The strategy's stable display name (appears in
    /// [`crate::ExploreStats::strategy`], JSON reports, and `--strategy`).
    fn name(&self) -> &'static str;

    /// Enqueue a successor state.
    fn push(&mut self, state: SymState);

    /// Dequeue the next state to expand; `None` ends the exploration.
    fn pop(&mut self) -> Option<SymState>;

    /// States currently enqueued (drives `frontier_peak`).
    fn len(&self) -> usize;

    /// `true` when no state is enqueued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The built-in strategies, as a `Copy` selector for options structs,
/// builders, and CLI flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StrategyKind {
    /// Depth-first stack order (the default).
    #[default]
    Lifo,
    /// Breadth-first queue order.
    Fifo,
    /// Deepest reorder-buffer occupancy first.
    DeepestRob,
    /// Highest leak-proximity score first.
    ViolationLikely,
}

impl StrategyKind {
    /// Every built-in strategy, in canonical order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Lifo,
        StrategyKind::Fifo,
        StrategyKind::DeepestRob,
        StrategyKind::ViolationLikely,
    ];

    /// The stable name (`lifo`, `fifo`, `deepest-rob`,
    /// `violation-likely`).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Lifo => "lifo",
            StrategyKind::Fifo => "fifo",
            StrategyKind::DeepestRob => "deepest-rob",
            StrategyKind::ViolationLikely => "violation-likely",
        }
    }

    /// Parse a CLI/JSON strategy name (the inverse of
    /// [`StrategyKind::name`]).
    pub fn parse(name: &str) -> Option<StrategyKind> {
        StrategyKind::ALL
            .into_iter()
            .find(|k| k.name() == name.trim())
    }

    /// A fresh frontier implementing this order.
    pub fn frontier(self) -> Box<dyn SearchStrategy + Send> {
        match self {
            StrategyKind::Lifo => Box::new(Lifo::default()),
            StrategyKind::Fifo => Box::new(Fifo::default()),
            StrategyKind::DeepestRob => Box::new(DeepestRob::default()),
            StrategyKind::ViolationLikely => Box::new(ViolationLikely::default()),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// Depth-first: successors are expanded before their siblings.
#[derive(Default)]
pub struct Lifo {
    stack: Vec<SymState>,
}

impl SearchStrategy for Lifo {
    fn name(&self) -> &'static str {
        "lifo"
    }

    fn push(&mut self, state: SymState) {
        self.stack.push(state);
    }

    fn pop(&mut self) -> Option<SymState> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Breadth-first: states are expanded in discovery order, so the first
/// witness found has a minimal-length schedule among all witnesses.
#[derive(Default)]
pub struct Fifo {
    queue: VecDeque<SymState>,
}

impl SearchStrategy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn push(&mut self, state: SymState) {
        self.queue.push_back(state);
    }

    fn pop(&mut self) -> Option<SymState> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// A heap entry: priority score, then LIFO on insertion sequence so
/// ties behave depth-first (and the order is fully deterministic).
struct Scored {
    score: u64,
    seq: u64,
    state: SymState,
}

impl PartialEq for Scored {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A max-heap frontier over a scoring function.
struct Priority {
    heap: BinaryHeap<Scored>,
    seq: u64,
    score: fn(&SymState) -> u64,
}

impl Priority {
    fn new(score: fn(&SymState) -> u64) -> Self {
        Priority {
            heap: BinaryHeap::new(),
            seq: 0,
            score,
        }
    }

    fn push(&mut self, state: SymState) {
        self.seq += 1;
        self.heap.push(Scored {
            score: (self.score)(&state),
            seq: self.seq,
            state,
        });
    }

    fn pop(&mut self) -> Option<SymState> {
        self.heap.pop().map(|s| s.state)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Deepest reorder buffer first: expand the state speculating furthest
/// ahead. Spectre witnesses need transient instructions in flight, so
/// states with a fuller buffer are closer to a leak than states that
/// just retired everything.
pub struct DeepestRob {
    inner: Priority,
}

impl Default for DeepestRob {
    fn default() -> Self {
        DeepestRob {
            inner: Priority::new(|state| state.rob.len() as u64),
        }
    }
}

impl SearchStrategy for DeepestRob {
    fn name(&self) -> &'static str {
        "deepest-rob"
    }

    fn push(&mut self, state: SymState) {
        self.inner.push(state);
    }

    fn pop(&mut self) -> Option<SymState> {
        self.inner.pop()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// Leak-proximity score for [`ViolationLikely`]: a violation is a
/// secret-labeled observation, i.e. a load or store executing at a
/// secret-tainted address while mis-speculation is in flight. States
/// are weighted by the ingredients of that recipe —
///
/// * unresolved branches or indirect jumps in the buffer (weight 4):
///   speculation past an undecided guard is what makes an access
///   transient in the first place;
/// * unresolved loads (weight 2): the instructions that will produce
///   the next memory observations;
/// * path-condition size (weight 1): constraints accumulate exactly
///   when symbolic guards were crossed, a proxy for attacker influence.
fn leak_proximity(state: &SymState) -> u64 {
    let mut score = state.constraints.len() as u64;
    for (_, t) in state.rob.iter() {
        match t {
            SymTransient::Br { .. } | SymTransient::Jmpi { .. } => score += 4,
            SymTransient::Load { .. } | SymTransient::LoadGuessed { .. } => score += 2,
            _ => {}
        }
    }
    score
}

/// Highest [`leak_proximity`] score first: chase states that look one
/// step from a secret observation.
pub struct ViolationLikely {
    inner: Priority,
}

impl Default for ViolationLikely {
    fn default() -> Self {
        ViolationLikely {
            inner: Priority::new(leak_proximity),
        }
    }
}

impl SearchStrategy for ViolationLikely {
    fn name(&self) -> &'static str {
        "violation-likely"
    }

    fn push(&mut self, state: SymState) {
        self.inner.push(state);
    }

    fn pop(&mut self) -> Option<SymState> {
        self.inner.pop()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::examples::fig1;

    fn states(n: usize) -> Vec<SymState> {
        let (_, cfg) = fig1();
        (0..n)
            .map(|i| {
                let mut st = SymState::from_config(&cfg);
                st.pc = i as u64;
                st
            })
            .collect()
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.frontier().name(), kind.name());
        }
        assert_eq!(StrategyKind::parse("nope"), None);
        assert_eq!(StrategyKind::parse(" fifo "), Some(StrategyKind::Fifo));
    }

    #[test]
    fn lifo_pops_last_fifo_pops_first() {
        for (kind, want) in [(StrategyKind::Lifo, 2u64), (StrategyKind::Fifo, 0u64)] {
            let mut f = kind.frontier();
            for st in states(3) {
                f.push(st);
            }
            assert_eq!(f.len(), 3);
            assert_eq!(f.pop().unwrap().pc, want, "{}", kind.name());
        }
    }

    #[test]
    fn priority_ties_break_lifo() {
        // Equal scores everywhere (empty ROB, no constraints): both
        // priority strategies degrade to deterministic LIFO.
        for kind in [StrategyKind::DeepestRob, StrategyKind::ViolationLikely] {
            let mut f = kind.frontier();
            for st in states(3) {
                f.push(st);
            }
            assert_eq!(f.pop().unwrap().pc, 2, "{}", kind.name());
            assert_eq!(f.pop().unwrap().pc, 1, "{}", kind.name());
        }
    }

    #[test]
    fn frontier_drains_empty() {
        for kind in StrategyKind::ALL {
            let mut f = kind.frontier();
            assert!(f.is_empty());
            for st in states(2) {
                f.push(st);
            }
            assert!(f.pop().is_some());
            assert!(f.pop().is_some());
            assert!(f.pop().is_none(), "{}", kind.name());
        }
    }
}
