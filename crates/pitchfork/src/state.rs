//! Symbolic machine state: the symbolic analogue of a configuration.

use sct_core::instr::Operand;
use sct_core::rob::Rob;
use sct_core::rsb::Rsb;
use sct_core::{Config, Directive, Label, Observation, OpCode, Pc, Reg, Schedule};
use sct_symx::{Expr, SymMemory, SymRegFile, SymVal, VarPool};
use std::fmt;

/// Provenance of a resolved symbolic load (`{j, a}` with a concretized
/// address).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SymProvenance {
    /// Forwarding source: `Some(j)` for a store at buffer index `j`,
    /// `None` for memory (`⊥`).
    pub dep: Option<usize>,
    /// The (concretized) address the load is bound to.
    pub addr: u64,
}

impl SymProvenance {
    /// `⊥ < i` convention of the store hazard check.
    pub fn dep_lt(&self, i: usize) -> bool {
        self.dep.is_none_or(|j| j < i)
    }
}

/// Resolution state of a symbolic store's data operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymStoreData {
    /// Unresolved operand.
    Pending(Operand),
    /// Resolved symbolic value.
    Resolved(SymVal),
}

impl SymStoreData {
    /// The resolved value, if any.
    pub fn resolved(&self) -> Option<&SymVal> {
        match self {
            SymStoreData::Resolved(v) => Some(v),
            SymStoreData::Pending(_) => None,
        }
    }
}

/// Resolution state of a symbolic store's address.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymStoreAddr {
    /// Unresolved operands.
    Pending(Vec<Operand>),
    /// Concretized address with the label of its computation.
    Resolved(u64, Label),
}

impl SymStoreAddr {
    /// The resolved address and label, if any.
    pub fn resolved(&self) -> Option<(u64, Label)> {
        match self {
            SymStoreAddr::Resolved(a, l) => Some((*a, *l)),
            SymStoreAddr::Pending(_) => None,
        }
    }
}

/// A symbolic transient instruction (Table 1, symbolic values).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymTransient {
    /// Unresolved arithmetic operation.
    Op {
        /// Destination register.
        dst: Reg,
        /// Opcode.
        op: OpCode,
        /// Operands.
        args: Vec<Operand>,
    },
    /// Resolved value.
    Value {
        /// Destination register.
        dst: Reg,
        /// Value.
        val: SymVal,
    },
    /// Unresolved conditional branch with recorded guess.
    Br {
        /// Boolean opcode.
        op: OpCode,
        /// Condition operands.
        args: Vec<Operand>,
        /// Speculatively taken target.
        guess: Pc,
        /// True target.
        tru: Pc,
        /// False target.
        fls: Pc,
    },
    /// Resolved jump.
    Jump {
        /// Target.
        target: Pc,
    },
    /// Unresolved load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operands.
        addr: Vec<Operand>,
        /// Originating program point.
        pp: Pc,
    },
    /// Resolved load with provenance.
    LoadedValue {
        /// Destination register.
        dst: Reg,
        /// Value.
        val: SymVal,
        /// Provenance.
        prov: SymProvenance,
        /// Originating program point.
        pp: Pc,
    },
    /// Alias-predicted partially-resolved load (§3.5).
    LoadGuessed {
        /// Destination register.
        dst: Reg,
        /// Address operands.
        addr: Vec<Operand>,
        /// Forwarded value.
        fwd: SymVal,
        /// Originating store index.
        from: usize,
        /// Originating program point.
        pp: Pc,
    },
    /// Store with independently resolving data and address.
    Store {
        /// Data state.
        data: SymStoreData,
        /// Address state.
        addr: SymStoreAddr,
    },
    /// Unresolved indirect jump with predicted target.
    Jmpi {
        /// Target operands.
        args: Vec<Operand>,
        /// Predicted target.
        guess: Pc,
    },
    /// `call` marker.
    Call,
    /// `ret` marker.
    Ret,
    /// Speculation barrier.
    Fence,
}

impl SymTransient {
    /// Assignment view for the register-resolve function (mirrors
    /// [`sct_core::transient::Transient::assignment`]).
    pub fn assignment(&self) -> Option<(Reg, Option<&SymVal>)> {
        match self {
            SymTransient::Op { dst, .. } | SymTransient::Load { dst, .. } => Some((*dst, None)),
            SymTransient::Value { dst, val } => Some((*dst, Some(val))),
            SymTransient::LoadedValue { dst, val, .. } => Some((*dst, Some(val))),
            SymTransient::LoadGuessed { dst, fwd, .. } => Some((*dst, Some(fwd))),
            _ => None,
        }
    }

    /// `true` for the fence marker.
    pub fn is_fence(&self) -> bool {
        matches!(self, SymTransient::Fence)
    }

    /// `true` when fully resolved (ready to retire on its own).
    pub fn is_resolved(&self) -> bool {
        match self {
            SymTransient::Value { .. }
            | SymTransient::Jump { .. }
            | SymTransient::LoadedValue { .. }
            | SymTransient::Fence
            | SymTransient::Call
            | SymTransient::Ret => true,
            SymTransient::Store { data, addr } => {
                data.resolved().is_some() && addr.resolved().is_some()
            }
            _ => false,
        }
    }

    /// Resolved store address, if this is such a store.
    pub fn store_resolved_addr(&self) -> Option<(u64, Label)> {
        match self {
            SymTransient::Store { addr, .. } => addr.resolved(),
            _ => None,
        }
    }

    /// Resolved store data, if this is such a store.
    pub fn store_resolved_data(&self) -> Option<&SymVal> {
        match self {
            SymTransient::Store { data, .. } => data.resolved(),
            _ => None,
        }
    }

    /// Diagnostic kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SymTransient::Op { .. } => "op",
            SymTransient::Value { .. } => "value",
            SymTransient::Br { .. } => "br",
            SymTransient::Jump { .. } => "jump",
            SymTransient::Load { .. } => "load",
            SymTransient::LoadedValue { .. } => "loaded-value",
            SymTransient::LoadGuessed { .. } => "load-guessed",
            SymTransient::Store { .. } => "store",
            SymTransient::Jmpi { .. } => "jmpi",
            SymTransient::Call => "call",
            SymTransient::Ret => "ret",
            SymTransient::Fence => "fence",
        }
    }
}

impl fmt::Display for SymTransient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymTransient::Value { dst, val } => write!(f, "({dst} = {val})"),
            SymTransient::Jump { target } => write!(f, "jump {target}"),
            SymTransient::LoadedValue { dst, val, prov, .. } => match prov.dep {
                Some(j) => write!(f, "({dst} = {val}{{{j}, {:#x}}})", prov.addr),
                None => write!(f, "({dst} = {val}{{⊥, {:#x}}})", prov.addr),
            },
            other => write!(f, "{}", other.kind()),
        }
    }
}

/// A symbolic execution state: configuration + path condition +
/// accumulated schedule/trace.
#[derive(Clone, Debug)]
pub struct SymState {
    /// Symbolic register file.
    pub regs: SymRegFile,
    /// Symbolic memory (concrete addresses).
    pub mem: SymMemory,
    /// Current (concrete) program point.
    pub pc: Pc,
    /// Reorder buffer of symbolic transients.
    pub rob: Rob<SymTransient>,
    /// Return stack buffer.
    pub rsb: Rsb,
    /// Path condition: all constraints must be non-zero.
    pub constraints: Vec<Expr>,
    /// Variable pool (symbolic inputs minted so far).
    pub pool: VarPool,
    /// The schedule of directives taken along this path.
    pub schedule: Schedule,
    /// The observation trace along this path.
    pub trace: Vec<Observation>,
}

impl SymState {
    /// Lift a concrete initial configuration.
    pub fn from_config(config: &Config) -> Self {
        SymState {
            regs: SymRegFile::from_concrete(&config.regs),
            mem: SymMemory::from_concrete(&config.mem),
            pc: config.pc,
            rob: Rob::new(),
            rsb: config.rsb.clone(),
            constraints: Vec::new(),
            pool: VarPool::new(),
            schedule: Schedule::new(),
            trace: Vec::new(),
        }
    }

    /// Lift a concrete configuration, replacing the values of the given
    /// registers with fresh symbolic variables (labels preserved from the
    /// concrete values). This is how public inputs become symbolic.
    pub fn from_config_symbolizing(config: &Config, symbolic_regs: &[Reg]) -> Self {
        let mut st = SymState::from_config(config);
        for &r in symbolic_regs {
            let label = config.regs.read(r).label;
            let (v, _) = SymVal::fresh(&mut st.pool, r.name(), label);
            st.regs.write(r, v);
        }
        st
    }

    /// Record one executed directive and its observations.
    pub fn record(&mut self, d: Directive, obs: &[Observation]) {
        self.schedule.push(d);
        self.trace.extend_from_slice(obs);
    }

    /// Add a path constraint. The constraint vector is kept sorted by
    /// interned id and deduplicated — a canonical set representation,
    /// so [`SymState::fingerprint`] can hash it directly and logically
    /// equal path conditions fingerprint identically.
    pub fn assume(&mut self, e: Expr) {
        if e.as_const() != Some(1) {
            if let Err(pos) = self.constraints.binary_search(&e) {
                self.constraints.insert(pos, e);
            }
        }
    }

    /// A 128-bit fingerprint of everything that determines this state's
    /// *future* behaviour: program point, reorder buffer (with its base
    /// index — provenance `{j, a}` is absolute), RSB, interned register
    /// and memory expressions, and the path condition as a canonical
    /// (sorted, deduplicated) set of interned constraint ids.
    ///
    /// The schedule and trace taken to reach the state are deliberately
    /// excluded: two states that agree on the fingerprint explore
    /// identical futures, so the worklist engine keeps only one. The
    /// two halves are SipHash over the same data with different
    /// prefixes — two passes buy 128 genuinely independent bits
    /// (deriving one half from the other would collapse the entropy to
    /// 64), making accidental collisions (~2⁻¹²⁸) irrelevant in
    /// practice.
    pub fn fingerprint(&self) -> u128 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let hash_with = |prefix: u64| {
            let mut h = DefaultHasher::new();
            prefix.hash(&mut h);
            self.pc.hash(&mut h);
            self.rob.hash(&mut h);
            self.rsb.hash(&mut h);
            self.regs.hash(&mut h);
            self.mem.hash(&mut h);
            // Canonical (sorted, deduplicated) by `assume`'s invariant.
            self.constraints.hash(&mut h);
            h.finish()
        };
        (u128::from(hash_with(0x5c7)) << 64) | u128::from(hash_with(0xa5a5_0f0f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::reg::names::*;
    use sct_core::Val;

    #[test]
    fn lifting_preserves_architectural_state() {
        let (_, cfg) = sct_core::examples::fig1();
        let st = SymState::from_config(&cfg);
        assert_eq!(st.pc, cfg.pc);
        assert_eq!(
            st.regs.read(RA).as_const(),
            Some(cfg.regs.read(RA))
        );
        assert_eq!(
            st.mem.read(0x49).as_const(),
            Some(cfg.mem.read(0x49))
        );
        assert!(st.constraints.is_empty());
    }

    #[test]
    fn symbolizing_replaces_values_keeps_labels() {
        let (_, mut cfg) = sct_core::examples::fig1();
        cfg.regs.write(RB, Val::secret(3));
        let st = SymState::from_config_symbolizing(&cfg, &[RA, RB]);
        assert!(st.regs.read(RA).as_const().is_none());
        assert!(st.regs.read(RA).label.is_public());
        assert!(st.regs.read(RB).label.is_secret());
        assert_eq!(st.pool.len(), 2);
    }

    #[test]
    fn assume_skips_trivially_true() {
        let (_, cfg) = sct_core::examples::fig1();
        let mut st = SymState::from_config(&cfg);
        st.assume(Expr::constant(1));
        assert!(st.constraints.is_empty());
        st.assume(Expr::constant(0));
        assert_eq!(st.constraints.len(), 1);
    }
}
