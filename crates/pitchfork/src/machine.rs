//! The symbolic speculative machine: the rules of `sct-core`, lifted to
//! symbolic values with path constraints and forking.
//!
//! Differences from the reference machine, mirroring how the paper's
//! tool uses angr (§4.2):
//!
//! * **branch conditions fork** — a symbolic condition yields one
//!   successor per feasible outcome, each extended with the
//!   corresponding path constraint;
//! * **addresses concretize** — a symbolic address is pinned to one
//!   satisfying value which is added to the path condition;
//! * everything else follows the reference rules verbatim, so a run on
//!   fully-concrete inputs produces exactly one successor per step with
//!   the same observations (checked by differential tests).

use crate::state::{SymProvenance, SymState, SymStoreAddr, SymStoreData, SymTransient};
use sct_core::instr::{Instr, Operand};
use sct_core::rsb::RsbOp;
use sct_core::{
    Directive, Label, Observation, OpCode, Params, Pc, Program, Reg, RsbPolicy,
    StepError,
};
use sct_symx::{Expr, Solver, SymVal};

/// A successor state produced by one symbolic step (already recorded
/// into the state's schedule/trace).
pub type Successors = Vec<SymState>;

/// The symbolic machine: program + parameters + solver.
pub struct SymMachine<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Machine parameters.
    pub params: Params,
    /// The feasibility/concretization solver.
    pub solver: Solver,
}

impl<'p> SymMachine<'p> {
    /// A machine with paper parameters and a default solver.
    pub fn new(program: &'p Program) -> Self {
        SymMachine {
            program,
            params: Params::paper(),
            solver: Solver::new(),
        }
    }

    /// A machine with explicit parameters.
    pub fn with_params(program: &'p Program, params: Params) -> Self {
        SymMachine {
            program,
            params,
            solver: Solver::new(),
        }
    }

    /// One symbolic step. Returns every feasible successor (with the
    /// directive and observations recorded in each).
    ///
    /// # Errors
    ///
    /// Mirrors the reference machine's [`StepError`]s: no rule applies.
    pub fn step(&self, state: &SymState, d: Directive) -> Result<Successors, StepError> {
        match d {
            Directive::Fetch | Directive::FetchBranch(_) | Directive::FetchJump(_) => {
                self.fetch(state, d)
            }
            Directive::Execute(i) => self.execute(state, i),
            Directive::ExecuteValue(i) => self.execute_store_value(state, i),
            Directive::ExecuteAddr(i) => self.execute_store_addr(state, i),
            Directive::ExecuteFwd(i, j) => self.execute_forward_guess(state, i, j),
            Directive::Retire => self.retire(state),
        }
    }

    // ----- resolution helpers ------------------------------------------------

    /// `(buf +i ρ)` lifted to symbolic values.
    fn resolve_reg(&self, state: &SymState, i: usize, r: Reg) -> Result<SymVal, StepError> {
        let mut latest: Option<Option<SymVal>> = None;
        for (_, t) in state.rob.iter_below(i) {
            if let Some((dst, v)) = t.assignment() {
                if dst == r {
                    latest = Some(v.cloned());
                }
            }
        }
        match latest {
            Some(Some(v)) => Ok(v),
            Some(None) => Err(StepError::OperandsPending { index: i }),
            None => Ok(state.regs.read(r)),
        }
    }

    fn resolve_operand(
        &self,
        state: &SymState,
        i: usize,
        op: &Operand,
    ) -> Result<SymVal, StepError> {
        match op {
            Operand::Imm(v) => Ok(SymVal::from_val(*v)),
            Operand::Reg(r) => self.resolve_reg(state, i, *r),
        }
    }

    fn resolve_list(
        &self,
        state: &SymState,
        i: usize,
        ops: &[Operand],
    ) -> Result<Vec<SymVal>, StepError> {
        ops.iter().map(|o| self.resolve_operand(state, i, o)).collect()
    }

    fn check_no_fence_below(&self, state: &SymState, i: usize) -> Result<(), StepError> {
        if state.rob.iter_below(i).all(|(_, t)| !t.is_fence()) {
            Ok(())
        } else {
            Err(StepError::FenceBlocked { index: i })
        }
    }

    /// Symbolic opcode evaluation, mirroring the reference machine's
    /// parameter routing for `succ`/`pred`/`addr`.
    fn sym_eval_op(&self, opcode: OpCode, args: &[SymVal]) -> Result<SymVal, StepError> {
        let label = Label::join_all(args.iter().map(|v| v.label));
        let expr = match opcode {
            OpCode::Succ | OpCode::Pred => {
                if args.len() != 1 {
                    return Err(StepError::Eval(sct_core::op::EvalError::Arity {
                        op: opcode,
                        got: args.len(),
                    }));
                }
                let word = match self.params.stack {
                    sct_core::StackDiscipline::GrowsDown { word }
                    | sct_core::StackDiscipline::GrowsUp { word } => word,
                };
                let grows_down =
                    matches!(self.params.stack, sct_core::StackDiscipline::GrowsDown { .. });
                let subtract = (opcode == OpCode::Succ) == grows_down;
                let op = if subtract { OpCode::Sub } else { OpCode::Add };
                Expr::app(op, vec![args[0].expr, Expr::constant(word)])
            }
            OpCode::Addr => self.sym_addr_expr(args),
            _ => {
                if let Some(n) = opcode.arity() {
                    if args.len() != n {
                        return Err(StepError::Eval(sct_core::op::EvalError::Arity {
                            op: opcode,
                            got: args.len(),
                        }));
                    }
                } else if args.is_empty() {
                    return Err(StepError::Eval(sct_core::op::EvalError::Arity {
                        op: opcode,
                        got: 0,
                    }));
                }
                Expr::app(opcode, args.iter().map(|a| a.expr).collect())
            }
        };
        Ok(SymVal::new(expr, label))
    }

    /// `Jaddr(v⃗)K` as an expression.
    fn sym_addr_expr(&self, args: &[SymVal]) -> Expr {
        let exprs: Vec<Expr> = args.iter().map(|a| a.expr).collect();
        match self.params.addr_mode {
            sct_core::AddrMode::Sum => Expr::app(OpCode::Add, exprs),
            sct_core::AddrMode::X86 => match exprs.len() {
                0 => Expr::constant(0),
                1 => exprs.into_iter().next().expect("len checked"),
                2 => Expr::app(OpCode::Add, exprs),
                _ => {
                    let mut it = exprs.into_iter();
                    let base = it.next().expect("len checked");
                    let index = it.next().expect("len checked");
                    let scale = it.next().expect("len checked");
                    Expr::app(
                        OpCode::Add,
                        vec![base, Expr::app(OpCode::Mul, vec![index, scale])],
                    )
                }
            },
        }
    }

    /// Compute and concretize an address: returns the concrete address,
    /// its label, and (when the expression was symbolic) pins the state
    /// with an equality constraint — the angr-style concretization.
    fn concretize_addr(&self, state: &mut SymState, args: &[SymVal]) -> (u64, Label) {
        let label = Label::join_all(args.iter().map(|v| v.label));
        let expr = self.sym_addr_expr(args);
        match expr.as_const() {
            Some(a) => (a, label),
            None => {
                let a = self
                    .solver
                    .concretize(&expr, &state.constraints)
                    .unwrap_or(0);
                state.assume(Expr::app(
                    OpCode::Eq,
                    vec![expr, Expr::constant(a)],
                ));
                (a, label)
            }
        }
    }

    /// Adversarial address concretization for loads: the attacker
    /// controls public inputs, so among the satisfying addresses prefer
    /// one that lands on a secret-labeled memory cell — the choice that
    /// maximizes leakage. (The paper's tool gets the same effect from
    /// querying the solver about secret-region overlap before angr
    /// concretizes.) Falls back to default concretization.
    fn concretize_load_addr(&self, state: &mut SymState, args: &[SymVal]) -> (u64, Label) {
        let label = Label::join_all(args.iter().map(|v| v.label));
        let expr = self.sym_addr_expr(args);
        if let Some(a) = expr.as_const() {
            return (a, label);
        }
        const PROBE_LIMIT: usize = 64;
        let secret_cells: Vec<u64> = state
            .mem
            .iter()
            .filter(|(_, v)| v.label.is_secret())
            .map(|(a, _)| a)
            .take(PROBE_LIMIT)
            .collect();
        for s in secret_cells {
            let pin = Expr::app(OpCode::Eq, vec![expr, Expr::constant(s)]);
            let mut cs = state.constraints.clone();
            cs.push(pin);
            if self.solver.check(&cs).is_sat() {
                state.assume(pin);
                return (s, label);
            }
        }
        let a = self
            .solver
            .concretize(&expr, &state.constraints)
            .unwrap_or(0);
        state.assume(Expr::app(OpCode::Eq, vec![expr, Expr::constant(a)]));
        (a, label)
    }

    /// Feasibility of the current path condition extended by `extra`.
    fn feasible(&self, state: &SymState, extra: Option<&Expr>) -> bool {
        match extra {
            None => self.solver.check(&state.constraints).maybe_sat(),
            Some(e) => {
                let mut cs = state.constraints.clone();
                cs.push(*e);
                self.solver.check(&cs).maybe_sat()
            }
        }
    }

    // ----- fetch -------------------------------------------------------------

    fn check_capacity(&self, state: &SymState, needed: usize) -> Result<(), StepError> {
        match self.params.rob_capacity {
            Some(cap) if state.rob.len() + needed > cap => Err(StepError::RobFull),
            _ => Ok(()),
        }
    }

    fn fetch(&self, state: &SymState, d: Directive) -> Result<Successors, StepError> {
        let pc = state.pc;
        let instr = self
            .program
            .fetch(pc)
            .ok_or(StepError::NoInstruction(pc))?
            .clone();
        let mut st = state.clone();
        match (&instr, d) {
            (Instr::Op { dst, op, args, next }, Directive::Fetch) => {
                self.check_capacity(state, 1)?;
                st.rob.push(SymTransient::Op {
                    dst: *dst,
                    op: *op,
                    args: args.clone(),
                });
                st.pc = *next;
            }
            (Instr::Load { dst, addr, next }, Directive::Fetch) => {
                self.check_capacity(state, 1)?;
                st.rob.push(SymTransient::Load {
                    dst: *dst,
                    addr: addr.clone(),
                    pp: pc,
                });
                st.pc = *next;
            }
            (Instr::Store { src, addr, next }, Directive::Fetch) => {
                self.check_capacity(state, 1)?;
                st.rob.push(SymTransient::Store {
                    data: SymStoreData::Pending(*src),
                    addr: SymStoreAddr::Pending(addr.clone()),
                });
                st.pc = *next;
            }
            (Instr::Fence { next }, Directive::Fetch) => {
                self.check_capacity(state, 1)?;
                st.rob.push(SymTransient::Fence);
                st.pc = *next;
            }
            (Instr::Br { op, args, tru, fls }, Directive::FetchBranch(b)) => {
                self.check_capacity(state, 1)?;
                let guess = if b { *tru } else { *fls };
                st.rob.push(SymTransient::Br {
                    op: *op,
                    args: args.clone(),
                    guess,
                    tru: *tru,
                    fls: *fls,
                });
                st.pc = guess;
            }
            (Instr::Jmpi { args }, Directive::FetchJump(n)) => {
                self.check_capacity(state, 1)?;
                st.rob.push(SymTransient::Jmpi {
                    args: args.clone(),
                    guess: n,
                });
                st.pc = n;
            }
            (Instr::Call { callee, ret }, Directive::Fetch) => {
                self.check_capacity(state, 3)?;
                let marker = st.rob.push(SymTransient::Call);
                st.rob.push(SymTransient::Op {
                    dst: Reg::RSP,
                    op: OpCode::Succ,
                    args: vec![Operand::Reg(Reg::RSP)],
                });
                st.rob.push(SymTransient::Store {
                    data: SymStoreData::Pending(Operand::Imm(sct_core::Val::public(*ret))),
                    addr: SymStoreAddr::Pending(vec![Operand::Reg(Reg::RSP)]),
                });
                st.rsb.record(marker, RsbOp::Push(*ret));
                st.pc = *callee;
            }
            (Instr::Ret, d) => {
                self.check_capacity(state, 4)?;
                let top = st.rsb.top();
                let guess: Pc = match (top, d, self.params.rsb_policy) {
                    (Some(n), Directive::Fetch, _) => n,
                    (None, Directive::FetchJump(n), RsbPolicy::AttackerChoice) => n,
                    (None, _, RsbPolicy::Refuse) => return Err(StepError::RsbRefused),
                    (None, Directive::Fetch, RsbPolicy::Circular { stale }) => stale,
                    _ => {
                        return Err(StepError::FetchMismatch {
                            pc,
                            found: "ret",
                        })
                    }
                };
                let marker = st.rob.push(SymTransient::Ret);
                st.rob.push(SymTransient::Load {
                    dst: Reg::RTMP,
                    addr: vec![Operand::Reg(Reg::RSP)],
                    pp: pc,
                });
                st.rob.push(SymTransient::Op {
                    dst: Reg::RSP,
                    op: OpCode::Pred,
                    args: vec![Operand::Reg(Reg::RSP)],
                });
                st.rob.push(SymTransient::Jmpi {
                    args: vec![Operand::Reg(Reg::RTMP)],
                    guess,
                });
                st.rsb.record(marker, RsbOp::Pop);
                st.pc = guess;
            }
            (found, _) => {
                return Err(StepError::FetchMismatch {
                    pc,
                    found: found.kind(),
                })
            }
        }
        st.record(d, &[]);
        Ok(vec![st])
    }

    // ----- execute -----------------------------------------------------------

    fn execute(&self, state: &SymState, i: usize) -> Result<Successors, StepError> {
        let entry = state
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        match entry {
            SymTransient::Op { dst, op, args } => self.execute_op(state, i, dst, op, &args),
            SymTransient::Br {
                op,
                args,
                guess,
                tru,
                fls,
            } => self.execute_branch(state, i, op, &args, guess, tru, fls),
            SymTransient::Load { dst, addr, pp } => self.execute_load(state, i, dst, &addr, pp),
            SymTransient::Jmpi { args, guess } => self.execute_jmpi(state, i, &args, guess),
            SymTransient::LoadGuessed {
                dst,
                addr,
                fwd,
                from,
                pp,
            } => self.execute_guessed_load(state, i, dst, &addr, fwd, from, pp),
            other => Err(StepError::ExecuteMismatch {
                index: i,
                found: other.kind(),
            }),
        }
    }

    fn execute_op(
        &self,
        state: &SymState,
        i: usize,
        dst: Reg,
        op: OpCode,
        args: &[Operand],
    ) -> Result<Successors, StepError> {
        self.check_no_fence_below(state, i)?;
        let vals = self.resolve_list(state, i, args)?;
        let val = self.sym_eval_op(op, &vals)?;
        let mut st = state.clone();
        st.rob.set(i, SymTransient::Value { dst, val });
        st.record(Directive::Execute(i), &[]);
        Ok(vec![st])
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_branch(
        &self,
        state: &SymState,
        i: usize,
        op: OpCode,
        args: &[Operand],
        guess: Pc,
        tru: Pc,
        fls: Pc,
    ) -> Result<Successors, StepError> {
        self.check_no_fence_below(state, i)?;
        let vals = self.resolve_list(state, i, args)?;
        let cond = self.sym_eval_op(op, &vals)?;
        let label = cond.label;
        let mut out = Vec::new();
        for outcome in [true, false] {
            let constraint = if outcome {
                Expr::app(OpCode::Ne, vec![cond.expr, Expr::constant(0)])
            } else {
                Expr::app(OpCode::Eq, vec![cond.expr, Expr::constant(0)])
            };
            match constraint.as_const() {
                Some(0) => continue,
                Some(_) => {}
                None => {
                    if !self.feasible(state, Some(&constraint)) {
                        continue;
                    }
                }
            }
            let target = if outcome { tru } else { fls };
            let mut st = state.clone();
            st.assume(constraint);
            if target == guess {
                st.rob.set(i, SymTransient::Jump { target });
                st.record(
                    Directive::Execute(i),
                    &[Observation::Jump { target, label }],
                );
            } else {
                st.rob.truncate_from(i);
                st.rsb.truncate_from(i);
                st.rob.push(SymTransient::Jump { target });
                st.pc = target;
                st.record(
                    Directive::Execute(i),
                    &[Observation::Rollback, Observation::Jump { target, label }],
                );
            }
            out.push(st);
        }
        Ok(out)
    }

    fn execute_jmpi(
        &self,
        state: &SymState,
        i: usize,
        args: &[Operand],
        guess: Pc,
    ) -> Result<Successors, StepError> {
        self.check_no_fence_below(state, i)?;
        let vals = self.resolve_list(state, i, args)?;
        let mut st = state.clone();
        let (target, label) = self.concretize_addr(&mut st, &vals);
        if target == guess {
            st.rob.set(i, SymTransient::Jump { target });
            st.record(
                Directive::Execute(i),
                &[Observation::Jump { target, label }],
            );
        } else {
            st.rob.truncate_from(i);
            st.rsb.truncate_from(i);
            st.rob.push(SymTransient::Jump { target });
            st.pc = target;
            st.record(
                Directive::Execute(i),
                &[Observation::Rollback, Observation::Jump { target, label }],
            );
        }
        Ok(vec![st])
    }

    fn execute_load(
        &self,
        state: &SymState,
        i: usize,
        dst: Reg,
        addr_ops: &[Operand],
        pp: Pc,
    ) -> Result<Successors, StepError> {
        self.check_no_fence_below(state, i)?;
        let vals = self.resolve_list(state, i, addr_ops)?;
        let mut st = state.clone();
        let (a, la) = self.concretize_load_addr(&mut st, &vals);
        // max(j) < i with buf(j) = store(_, a)
        let mut matching: Option<(usize, Option<SymVal>)> = None;
        for (j, t) in st.rob.iter_below(i) {
            if t.store_resolved_addr().is_some_and(|(av, _)| av == a) {
                matching = Some((j, t.store_resolved_data().cloned()));
            }
        }
        match matching {
            None => {
                let val = st.mem.read(a);
                st.rob.set(
                    i,
                    SymTransient::LoadedValue {
                        dst,
                        val,
                        prov: SymProvenance { dep: None, addr: a },
                        pp,
                    },
                );
                st.record(
                    Directive::Execute(i),
                    &[Observation::Read { addr: a, label: la }],
                );
                Ok(vec![st])
            }
            Some((j, Some(val))) => {
                st.rob.set(
                    i,
                    SymTransient::LoadedValue {
                        dst,
                        val,
                        prov: SymProvenance {
                            dep: Some(j),
                            addr: a,
                        },
                        pp,
                    },
                );
                st.record(
                    Directive::Execute(i),
                    &[Observation::Fwd { addr: a, label: la }],
                );
                Ok(vec![st])
            }
            Some((j, None)) => Err(StepError::StoreDataPending { index: i, store: j }),
        }
    }

    fn execute_store_value(&self, state: &SymState, i: usize) -> Result<Successors, StepError> {
        let entry = state
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        let SymTransient::Store {
            data: SymStoreData::Pending(rv),
            addr,
        } = entry
        else {
            return Err(StepError::ExecuteMismatch {
                index: i,
                found: entry.kind(),
            });
        };
        self.check_no_fence_below(state, i)?;
        let val = self.resolve_operand(state, i, &rv)?;
        let mut st = state.clone();
        st.rob.set(
            i,
            SymTransient::Store {
                data: SymStoreData::Resolved(val),
                addr,
            },
        );
        st.record(Directive::ExecuteValue(i), &[]);
        Ok(vec![st])
    }

    fn execute_store_addr(&self, state: &SymState, i: usize) -> Result<Successors, StepError> {
        let entry = state
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        let SymTransient::Store {
            data,
            addr: SymStoreAddr::Pending(ops),
        } = entry
        else {
            return Err(StepError::ExecuteMismatch {
                index: i,
                found: entry.kind(),
            });
        };
        self.check_no_fence_below(state, i)?;
        let vals = self.resolve_list(state, i, &ops)?;
        let mut st = state.clone();
        let (a, la) = self.concretize_addr(&mut st, &vals);
        let hazard = st.rob.iter_above(i).find_map(|(k, t)| match t {
            SymTransient::LoadedValue { prov, pp, .. } => {
                let same_addr_older_source = prov.addr == a && prov.dep_lt(i);
                let from_store_wrong_addr = prov.dep == Some(i) && prov.addr != a;
                (same_addr_older_source || from_store_wrong_addr).then_some((k, *pp))
            }
            _ => None,
        });
        match hazard {
            None => {
                st.rob.set(
                    i,
                    SymTransient::Store {
                        data,
                        addr: SymStoreAddr::Resolved(a, la),
                    },
                );
                st.record(
                    Directive::ExecuteAddr(i),
                    &[Observation::Fwd { addr: a, label: la }],
                );
            }
            Some((k, load_pp)) => {
                st.rob.truncate_from(k);
                st.rsb.truncate_from(k);
                st.rob.set(
                    i,
                    SymTransient::Store {
                        data,
                        addr: SymStoreAddr::Resolved(a, la),
                    },
                );
                st.pc = load_pp;
                st.record(
                    Directive::ExecuteAddr(i),
                    &[Observation::Rollback, Observation::Fwd { addr: a, label: la }],
                );
            }
        }
        Ok(vec![st])
    }

    fn execute_forward_guess(
        &self,
        state: &SymState,
        i: usize,
        j: usize,
    ) -> Result<Successors, StepError> {
        let entry = state
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        let SymTransient::Load { dst, addr, pp } = entry else {
            return Err(StepError::ExecuteMismatch {
                index: i,
                found: entry.kind(),
            });
        };
        self.check_no_fence_below(state, i)?;
        if j >= i {
            return Err(StepError::BadForwardSource { index: i, from: j });
        }
        let fwd = state
            .rob
            .get(j)
            .and_then(SymTransient::store_resolved_data)
            .cloned()
            .ok_or(StepError::BadForwardSource { index: i, from: j })?;
        let mut st = state.clone();
        st.rob.set(
            i,
            SymTransient::LoadGuessed {
                dst,
                addr,
                fwd,
                from: j,
                pp,
            },
        );
        st.record(Directive::ExecuteFwd(i, j), &[]);
        Ok(vec![st])
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_guessed_load(
        &self,
        state: &SymState,
        i: usize,
        dst: Reg,
        addr_ops: &[Operand],
        fwd: SymVal,
        from: usize,
        pp: Pc,
    ) -> Result<Successors, StepError> {
        self.check_no_fence_below(state, i)?;
        let vals = self.resolve_list(state, i, addr_ops)?;
        let mut st = state.clone();
        let (a, la) = self.concretize_addr(&mut st, &vals);
        if st.rob.get(from).is_some() {
            let store_addr = st
                .rob
                .get(from)
                .and_then(SymTransient::store_resolved_addr);
            let addr_consistent = match store_addr {
                None => true,
                Some((av, _)) => av == a,
            };
            let intervening = st
                .rob
                .iter_above(from)
                .take_while(|&(k, _)| k < i)
                .any(|(_, t)| t.store_resolved_addr().is_some_and(|(av, _)| av == a));
            if addr_consistent && !intervening {
                st.rob.set(
                    i,
                    SymTransient::LoadedValue {
                        dst,
                        val: fwd,
                        prov: SymProvenance {
                            dep: Some(from),
                            addr: a,
                        },
                        pp,
                    },
                );
                st.record(
                    Directive::Execute(i),
                    &[Observation::Fwd { addr: a, label: la }],
                );
            } else {
                st.rob.truncate_from(i);
                st.rsb.truncate_from(i);
                st.pc = pp;
                st.record(
                    Directive::Execute(i),
                    &[Observation::Rollback, Observation::Fwd { addr: a, label: la }],
                );
            }
            return Ok(vec![st]);
        }
        // Originating store retired: validate against memory.
        let prior_matching = st
            .rob
            .iter_below(i)
            .any(|(_, t)| t.store_resolved_addr().is_some_and(|(av, _)| av == a));
        if prior_matching {
            return Err(StepError::GuessedLoadBlocked { index: i });
        }
        let vmem = st.mem.read(a);
        // Value comparison may be symbolic: fork on equal/unequal where
        // feasible (labels must agree for the values to be equal).
        let mut out = Vec::new();
        let labels_agree = vmem.label == fwd.label;
        let eq_expr = Expr::app(OpCode::Eq, vec![vmem.expr, fwd.expr]);
        let match_feasible = labels_agree
            && match eq_expr.as_const() {
                Some(0) => false,
                Some(_) => true,
                None => self.feasible(&st, Some(&eq_expr)),
            };
        let mismatch_expr = Expr::app(OpCode::Eq, vec![eq_expr, Expr::constant(0)]);
        let mismatch_feasible = !labels_agree
            || match mismatch_expr.as_const() {
                Some(0) => false,
                Some(_) => true,
                None => self.feasible(&st, Some(&mismatch_expr)),
            };
        if match_feasible {
            let mut m = st.clone();
            if eq_expr.as_const().is_none() {
                m.assume(eq_expr);
            }
            m.rob.set(
                i,
                SymTransient::LoadedValue {
                    dst,
                    val: vmem,
                    prov: SymProvenance { dep: None, addr: a },
                    pp,
                },
            );
            m.record(
                Directive::Execute(i),
                &[Observation::Read { addr: a, label: la }],
            );
            out.push(m);
        }
        if mismatch_feasible {
            let mut h = st.clone();
            if labels_agree && mismatch_expr.as_const().is_none() {
                h.assume(mismatch_expr);
            }
            h.rob.truncate_from(i);
            h.rsb.truncate_from(i);
            h.pc = pp;
            h.record(
                Directive::Execute(i),
                &[Observation::Rollback, Observation::Read { addr: a, label: la }],
            );
            out.push(h);
        }
        Ok(out)
    }

    // ----- retire ------------------------------------------------------------

    fn retire(&self, state: &SymState) -> Result<Successors, StepError> {
        let i = state.rob.min().ok_or(StepError::EmptyBuffer)?;
        let entry = state.rob.get(i).expect("min present").clone();
        let mut st = state.clone();
        match entry {
            SymTransient::Value { dst, val } => {
                st.regs.write(dst, val);
                st.rob.pop_min();
                st.record(Directive::Retire, &[]);
            }
            SymTransient::LoadedValue { dst, val, .. } => {
                st.regs.write(dst, val);
                st.rob.pop_min();
                st.record(Directive::Retire, &[]);
            }
            SymTransient::Jump { .. } | SymTransient::Fence => {
                st.rob.pop_min();
                st.record(Directive::Retire, &[]);
            }
            SymTransient::Store {
                data: SymStoreData::Resolved(v),
                addr: SymStoreAddr::Resolved(a, la),
            } => {
                st.mem.write(a, v);
                st.rob.pop_min();
                st.record(Directive::Retire, &[Observation::Write { addr: a, label: la }]);
            }
            SymTransient::Call => {
                let rsp_val = match st.rob.get(i + 1) {
                    Some(SymTransient::Value { dst, val }) if *dst == Reg::RSP => *val,
                    _ => {
                        return Err(StepError::NotRetirable {
                            index: i,
                            found: "call",
                        })
                    }
                };
                let (sval, sa, sl) = match st.rob.get(i + 2) {
                    Some(SymTransient::Store {
                        data: SymStoreData::Resolved(v),
                        addr: SymStoreAddr::Resolved(a, l),
                    }) => (*v, *a, *l),
                    _ => {
                        return Err(StepError::NotRetirable {
                            index: i,
                            found: "call",
                        })
                    }
                };
                st.regs.write(Reg::RSP, rsp_val);
                st.mem.write(sa, sval);
                st.rob.pop_min_n(3);
                st.record(
                    Directive::Retire,
                    &[Observation::Write { addr: sa, label: sl }],
                );
            }
            SymTransient::Ret => {
                let loaded_ok = matches!(
                    st.rob.get(i + 1),
                    Some(SymTransient::LoadedValue { dst, .. } | SymTransient::Value { dst, .. })
                        if *dst == Reg::RTMP
                );
                let rsp_val = match st.rob.get(i + 2) {
                    Some(SymTransient::Value { dst, val }) if *dst == Reg::RSP => {
                        Some(*val)
                    }
                    _ => None,
                };
                let jump_ok = matches!(st.rob.get(i + 3), Some(SymTransient::Jump { .. }));
                match (loaded_ok, rsp_val, jump_ok) {
                    (true, Some(v), true) => {
                        st.regs.write(Reg::RSP, v);
                        st.rob.pop_min_n(4);
                        st.record(Directive::Retire, &[]);
                    }
                    _ => {
                        return Err(StepError::NotRetirable {
                            index: i,
                            found: "ret",
                        })
                    }
                }
            }
            other => {
                return Err(StepError::NotRetirable {
                    index: i,
                    found: other.kind(),
                })
            }
        }
        Ok(vec![st])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SymState;
    use sct_core::examples::fig1;
    use sct_core::reg::names::*;

    #[test]
    fn concrete_inputs_single_successor_per_step() {
        let (p, cfg) = fig1();
        let m = SymMachine::new(&p);
        let st = SymState::from_config(&cfg);
        let schedule = [
            Directive::FetchBranch(true),
            Directive::Fetch,
            Directive::Fetch,
            Directive::Execute(2),
            Directive::Execute(3),
        ];
        let mut cur = st;
        for d in schedule {
            let succs = m.step(&cur, d).unwrap();
            assert_eq!(succs.len(), 1, "concrete run must not fork at {d}");
            cur = succs.into_iter().next().unwrap();
        }
        assert!(cur.trace.iter().any(|o| o.is_secret()));
    }

    #[test]
    fn symbolic_branch_forks_on_both_outcomes() {
        let (p, cfg) = fig1();
        let m = SymMachine::new(&p);
        let st = SymState::from_config_symbolizing(&cfg, &[RA]);
        let st = m
            .step(&st, Directive::FetchBranch(true))
            .unwrap()
            .pop()
            .unwrap();
        let succs = m.step(&st, Directive::Execute(1)).unwrap();
        assert_eq!(succs.len(), 2, "symbolic condition must fork");
        // One successor resolved correctly (guess true), one rolled back.
        let rollbacks = succs
            .iter()
            .filter(|s| s.trace.contains(&Observation::Rollback))
            .count();
        assert_eq!(rollbacks, 1);
        // Each successor carries a path constraint on ra.
        for s in &succs {
            assert!(!s.constraints.is_empty());
        }
    }

    #[test]
    fn symbolic_address_concretizes_and_constrains() {
        let (p, cfg) = fig1();
        let m = SymMachine::new(&p);
        let st = SymState::from_config_symbolizing(&cfg, &[RA]);
        let st = m
            .step(&st, Directive::FetchBranch(true))
            .unwrap()
            .pop()
            .unwrap();
        let st = m.step(&st, Directive::Fetch).unwrap().pop().unwrap();
        let st = m.step(&st, Directive::Execute(2)).unwrap().pop().unwrap();
        // The load's address 0x40 + ra was symbolic: a constraint pins it.
        assert!(!st.constraints.is_empty());
        assert!(matches!(
            st.trace.last(),
            Some(Observation::Read { .. })
        ));
    }
}
