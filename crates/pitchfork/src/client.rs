//! A std-only client for the `pitchfork --serve` daemon: connect to
//! the Unix socket or a fleet worker's TCP address, speak the line
//! protocol, get typed answers back.
//!
//! ```no_run
//! use pitchfork::client::Client;
//! use pitchfork::service::JobSpec;
//! use std::time::Duration;
//!
//! let mut client = Client::connect("/tmp/pitchfork.sock").unwrap();
//! let id = client
//!     .submit_source("fig1", "start:\n    rb = load [0x40, ra]\n", JobSpec::default())
//!     .unwrap();
//! let view = client.wait(id, Duration::from_secs(10)).unwrap();
//! println!("{}: {:?}", view.id, view.verdict);
//! ```

use crate::observe::OwnedEvent;
use crate::protocol::{ProtocolError, Request, Response, WireViolation};
use crate::report::{ExploreStats, Verdict};
use crate::service::{JobId, JobSpec, JobStatus, ServiceStats};
use crate::transport::Stream;
use std::io::{BufReader, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure (daemon gone, connect refused, ...).
    Io(std::io::Error),
    /// The daemon sent a line the protocol cannot decode.
    Protocol(ProtocolError),
    /// The daemon answered [`Response::Error`].
    Server(String),
    /// The daemon answered with an unexpected response variant.
    Unexpected(&'static str),
    /// [`Client::wait`] ran out of time.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon io error: {e}"),
            ClientError::Protocol(e) => write!(f, "daemon sent garbage: {e}"),
            ClientError::Server(m) => write!(f, "daemon error: {m}"),
            ClientError::Unexpected(wanted) => {
                write!(f, "daemon sent an unexpected response (wanted {wanted})")
            }
            ClientError::Timeout => write!(f, "timed out waiting for the job"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A job as the daemon reports it: status, and verdicts once done.
#[derive(Clone, Debug)]
pub struct JobView {
    /// The job id.
    pub id: JobId,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The typed verdict (`None` until done).
    pub verdict: Option<Verdict>,
    /// Exploration statistics (`None` until done).
    pub stats: Option<ExploreStats>,
    /// Rendered witnesses.
    pub violations: Vec<WireViolation>,
    /// Failure message for failed jobs.
    pub error: Option<String>,
    /// Wall-clock milliseconds running (live while `running`, final
    /// once terminal; `None` from pre-telemetry daemons).
    pub elapsed_ms: Option<u64>,
    /// The state budget actually applied when the submitted
    /// `max_states` exceeded the daemon's cap and was clamped down
    /// (`None` when no clamp happened, and from pre-fleet daemons).
    pub clamped_states: Option<u64>,
}

/// A connection to a running daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    /// Set when the stream desynced (an oversized line was truncated
    /// mid-read); every later call fails fast instead of parsing from
    /// the middle of a line.
    broken: bool,
}

impl Client {
    /// Connect to the daemon's Unix socket.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Client> {
        Client::from_stream(Stream::connect_unix(path)?)
    }

    /// Connect to a daemon address — `HOST:PORT` for a TCP fleet
    /// worker, anything else as a Unix socket path (the rule of
    /// [`crate::transport::Endpoint::parse`]).
    pub fn connect_addr(addr: &str) -> std::io::Result<Client> {
        Client::from_stream(Stream::connect(addr)?)
    }

    fn from_stream(stream: Stream) -> std::io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            broken: false,
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        if self.broken {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection desynced by an oversized response line",
            )));
        }
        match crate::protocol::read_line_capped(&mut self.reader)? {
            crate::protocol::CappedLine::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))),
            crate::protocol::CappedLine::Overflow => {
                // The rest of this line is still in the stream; parsing
                // from its middle would answer every later request with
                // garbage. Poison the connection instead.
                self.broken = true;
                Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "daemon response exceeds the protocol size limit",
                )))
            }
            crate::protocol::CappedLine::Line(line) => {
                let text = String::from_utf8(line).map_err(|_| {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "daemon sent invalid UTF-8",
                    ))
                })?;
                Ok(Response::parse(&text)?)
            }
        }
    }

    /// Send one request and read one response. `Error` responses become
    /// [`ClientError::Server`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        match self.recv()? {
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Submit `.sasm` source; returns the assigned job id. (A source
    /// that fails to assemble is still accepted — its status is
    /// immediately `failed` with the diagnostic.)
    pub fn submit_source(
        &mut self,
        name: impl Into<String>,
        source: impl Into<String>,
        spec: JobSpec,
    ) -> Result<JobId, ClientError> {
        match self.request(&Request::Submit {
            name: name.into(),
            source: source.into(),
            spec,
        })? {
            Response::Accepted { id } => Ok(JobId::from_u64(id)),
            _ => Err(ClientError::Unexpected("accepted")),
        }
    }

    /// Submit `.sasm` source with a baseline record from a previous
    /// run (the incremental CI-gate path): a daemon whose recomputed
    /// fingerprint matches replays the baseline verdict without
    /// exploring; any mismatch — or a pre-v6 daemon, which ignores the
    /// extra field — runs the job in full.
    pub fn submit_source_diff(
        &mut self,
        name: impl Into<String>,
        source: impl Into<String>,
        spec: JobSpec,
        baseline: crate::service::JobBaseline,
    ) -> Result<JobId, ClientError> {
        match self.request(&Request::SubmitDiff {
            name: name.into(),
            source: source.into(),
            spec,
            baseline,
        })? {
            Response::Accepted { id } => Ok(JobId::from_u64(id)),
            _ => Err(ClientError::Unexpected("accepted")),
        }
    }

    /// One status/verdict snapshot for a job.
    pub fn status(&mut self, id: JobId) -> Result<JobView, ClientError> {
        match self.request(&Request::Status { id: id.as_u64() })? {
            Response::Verdicts {
                id,
                status,
                verdict,
                stats,
                violations,
                error,
                elapsed_ms,
                clamped_states,
            } => Ok(JobView {
                id: JobId::from_u64(id),
                status,
                verdict,
                stats,
                violations,
                error,
                elapsed_ms,
                clamped_states,
            }),
            _ => Err(ClientError::Unexpected("verdicts")),
        }
    }

    /// Authenticate with the daemon's shared token. Must be the first
    /// request on a connection to a `--token` daemon; a daemon without
    /// a token accepts the handshake as a no-op, so fleet clients can
    /// always send it. A wrong token errors and the daemon closes the
    /// connection.
    pub fn hello(&mut self, token: impl Into<String>) -> Result<(), ClientError> {
        match self.request(&Request::Hello {
            token: token.into(),
        })? {
            Response::Accepted { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("accepted")),
        }
    }

    /// Request cancellation of a job: a queued job is reaped without
    /// running; a running job stops cooperatively at its next state
    /// expansion. Either way its status becomes `cancelled`.
    pub fn cancel(&mut self, id: JobId) -> Result<(), ClientError> {
        match self.request(&Request::Cancel { id: id.as_u64() })? {
            Response::Accepted { .. } => Ok(()),
            _ => Err(ClientError::Unexpected("accepted")),
        }
    }

    /// Ship an `sct-cache` snapshot to the daemon as a warm start: the
    /// encoded bytes travel as hex chunks small enough for the line
    /// cap, and the daemon hydrates the snapshot into its arena and
    /// verdict memo on the final chunk. Returns `(nodes, verdicts)`
    /// imported.
    pub fn seed(&mut self, snapshot_bytes: &[u8]) -> Result<(u64, u64), ClientError> {
        // 256 KiB of raw bytes per chunk = 512 KiB of hex, comfortably
        // under the 1 MiB protocol line cap with JSON framing around it.
        const CHUNK_RAW: usize = 256 * 1024;
        let mut chunks = snapshot_bytes.chunks(CHUNK_RAW).peekable();
        loop {
            // An empty snapshot still sends one final empty chunk so
            // the daemon answers with its (zero) import counts.
            let chunk = chunks.next().unwrap_or_default();
            let last = chunks.peek().is_none();
            match self.request(&Request::Seed {
                chunk: crate::protocol::hex_encode(chunk),
                last,
            })? {
                Response::Seeded { nodes, verdicts } if last => return Ok((nodes, verdicts)),
                Response::Seeded { .. } => {}
                _ => return Err(ClientError::Unexpected("seeded")),
            }
        }
    }

    /// Poll until the job is terminal (10 ms cadence) or `timeout`
    /// elapses.
    pub fn wait(&mut self, id: JobId, timeout: Duration) -> Result<JobView, ClientError> {
        let start = Instant::now();
        loop {
            let view = self.status(id)?;
            if view.status.is_terminal() {
                return Ok(view);
            }
            if start.elapsed() > timeout {
                return Err(ClientError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Subscribe to a job's event stream from cursor `since`, calling
    /// `on_event` for each event as batches arrive (while the job
    /// runs). Returns the final cursor once the job is done and the
    /// stream drained.
    pub fn stream_events(
        &mut self,
        id: JobId,
        since: u64,
        mut on_event: impl FnMut(&OwnedEvent),
    ) -> Result<u64, ClientError> {
        self.send(&Request::Events {
            id: id.as_u64(),
            since,
        })?;
        loop {
            match self.recv()? {
                Response::EventBatch {
                    events, next, done, ..
                } => {
                    for e in &events {
                        on_event(e);
                    }
                    if done {
                        return Ok(next);
                    }
                }
                Response::Error { message } => return Err(ClientError::Server(message)),
                _ => return Err(ClientError::Unexpected("events")),
            }
        }
    }

    /// Health-check the daemon: returns `(in_flight, queued)` job
    /// counts. Answered on the connection thread with only a brief
    /// service-lock hold, so a daemon whose job workers are wedged
    /// still pongs — combine with [`Client::set_read_timeout`] to tell
    /// a hung daemon (read times out) from a busy one (pong with a
    /// nonzero queue).
    pub fn ping(&mut self) -> Result<(u64, u64), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { in_flight, queued } => Ok((in_flight, queued)),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// Bound every read on this connection: a daemon that accepts but
    /// never answers surfaces as a `WouldBlock`/`TimedOut` I/O error
    /// instead of blocking forever. The timeout is set on the
    /// underlying socket, so it covers the buffered reader too; `None`
    /// restores blocking reads.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Service statistics.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// The daemon's full telemetry snapshot: service statistics plus
    /// every registered counter, gauge, and latency histogram.
    pub fn metrics(
        &mut self,
    ) -> Result<(ServiceStats, Vec<sct_telemetry::MetricSnapshot>), ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { stats, metrics } => Ok((stats, metrics)),
            _ => Err(ClientError::Unexpected("metrics")),
        }
    }

    /// Retire the daemon's arena epoch now (snapshot save →
    /// warm-start). Returns the post-retirement statistics.
    pub fn retire(&mut self) -> Result<ServiceStats, ClientError> {
        match self.request(&Request::Retire)? {
            Response::Stats { stats } => Ok(stats),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Ask the daemon to exit once its queue drains. Returns its final
    /// statistics.
    pub fn shutdown(&mut self) -> Result<ServiceStats, ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Stats { stats } => Ok(stats),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }
}
