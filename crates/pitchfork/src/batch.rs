//! Batch analysis: many programs through one detector configuration and
//! one shared expression arena.
//!
//! The hash-consed arena (see [`sct_symx::arena_stats`]) is
//! process-wide, so analyzing a whole corpus in one batch lets later
//! programs hit the expression and simplification caches warmed by
//! earlier ones; [`BatchReport`] surfaces exactly how much structure
//! was shared, along with aggregate exploration statistics. This is the
//! API the litmus corpus, the Table 2 matrix, and the throughput bench
//! drive.

use crate::detector::{Detector, DetectorOptions};
use crate::report::Report;
use sct_core::{Config, Program};
use sct_symx::{arena_stats, ArenaStats};
use std::fmt;
use std::time::{Duration, Instant};

/// One program to analyze.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// Display name (e.g. the litmus case or case-study name).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
    /// Per-item speculation-bound override (`None` uses the batch
    /// options' bound).
    pub bound: Option<usize>,
}

impl BatchItem {
    /// An item analyzed at the batch-wide bound.
    pub fn new(name: impl Into<String>, program: Program, config: Config) -> Self {
        BatchItem {
            name: name.into(),
            program,
            config,
            bound: None,
        }
    }

    /// An item with its own speculation bound.
    pub fn with_bound(name: impl Into<String>, program: Program, config: Config, bound: usize) -> Self {
        BatchItem {
            name: name.into(),
            program,
            config,
            bound: Some(bound),
        }
    }
}

/// The analysis result for one batch item.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The item's name.
    pub name: String,
    /// Its full report.
    pub report: Report,
}

/// Aggregate statistics over a whole batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchTotals {
    /// Programs analyzed.
    pub programs: usize,
    /// Programs with at least one violation.
    pub flagged: usize,
    /// States expanded across all programs.
    pub states: usize,
    /// Duplicate states pruned across all programs.
    pub deduped: usize,
    /// Machine steps across all programs.
    pub steps: usize,
    /// Violations found across all programs.
    pub violations: usize,
    /// Programs whose exploration hit a budget.
    pub truncated: usize,
}

/// The result of [`BatchAnalyzer::analyze_all`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-item outcomes, in input order.
    pub outcomes: Vec<BatchOutcome>,
    /// Aggregate exploration statistics.
    pub totals: BatchTotals,
    /// Arena counters when the batch started.
    pub arena_before: ArenaStats,
    /// Arena counters when the batch finished.
    pub arena_after: ArenaStats,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Expression nodes interned during this batch (new structure that
    /// no earlier program — in or before the batch — had built).
    pub fn fresh_nodes(&self) -> usize {
        self.arena_after.nodes - self.arena_before.nodes
    }

    /// States per second over the whole batch.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.totals.states as f64 / secs
        }
    }

    /// The outcome for a named item, if present.
    pub fn outcome(&self, name: &str) -> Option<&BatchOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch: {} programs, {} flagged; {} states ({} deduped), {} steps in {:.1?} ({:.0} states/s)",
            self.totals.programs,
            self.totals.flagged,
            self.totals.states,
            self.totals.deduped,
            self.totals.steps,
            self.wall,
            self.states_per_sec(),
        )?;
        writeln!(
            f,
            "arena: {} nodes (+{} this batch), app cache {} hits / {} misses",
            self.arena_after.nodes,
            self.fresh_nodes(),
            self.arena_after.app_cache_hits,
            self.arena_after.app_cache_misses,
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:<32} {:<24} {:>6} states {:>6} deduped{}",
                o.name,
                o.report.verdict(),
                o.report.stats.states,
                o.report.stats.deduped,
                if o.report.stats.truncated {
                    " (truncated)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// Runs many programs through one detector configuration, sharing the
/// process-wide expression arena, and reports aggregate statistics.
///
/// # Examples
///
/// ```
/// use pitchfork::{BatchAnalyzer, BatchItem, DetectorOptions};
/// use sct_core::examples::fig1;
///
/// let (program, config) = fig1();
/// let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(16))
///     .analyze_all(vec![BatchItem::new("fig1", program, config)]);
/// assert_eq!(batch.totals.programs, 1);
/// assert_eq!(batch.totals.flagged, 1);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchAnalyzer {
    options: DetectorOptions,
}

impl BatchAnalyzer {
    /// A batch analyzer running every item with `options` (modulo
    /// per-item bound overrides).
    pub fn new(options: DetectorOptions) -> Self {
        BatchAnalyzer { options }
    }

    /// Analyze every item, in order, accumulating totals and arena
    /// deltas.
    pub fn analyze_all(&self, items: impl IntoIterator<Item = BatchItem>) -> BatchReport {
        let arena_before = arena_stats();
        let start = Instant::now();
        let mut outcomes = Vec::new();
        let mut totals = BatchTotals::default();
        for item in items {
            let mut options = self.options;
            if let Some(bound) = item.bound {
                options.explorer.spec_bound = bound;
            }
            let report = Detector::new(options).analyze(&item.program, &item.config);
            totals.programs += 1;
            totals.flagged += usize::from(report.has_violations());
            totals.states += report.stats.states;
            totals.deduped += report.stats.deduped;
            totals.steps += report.stats.steps;
            totals.violations += report.violations.len();
            totals.truncated += usize::from(report.stats.truncated);
            outcomes.push(BatchOutcome {
                name: item.name,
                report,
            });
        }
        BatchReport {
            outcomes,
            totals,
            arena_before,
            arena_after: arena_stats(),
            wall: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::examples::fig1;

    #[test]
    fn batch_aggregates_and_matches_single_runs() {
        let (p, cfg) = fig1();
        let items = vec![
            BatchItem::new("fig1-a", p.clone(), cfg.clone()),
            BatchItem::with_bound("fig1-b", p.clone(), cfg.clone(), 4),
        ];
        let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(16)).analyze_all(items);
        assert_eq!(batch.totals.programs, 2);
        assert_eq!(batch.totals.flagged, 2);
        let single = Detector::new(DetectorOptions::v1_mode(16)).analyze(&p, &cfg);
        let in_batch = &batch.outcome("fig1-a").unwrap().report;
        assert_eq!(in_batch.has_violations(), single.has_violations());
        assert_eq!(in_batch.stats.states, single.stats.states);
    }

    #[test]
    fn display_summarizes() {
        let (p, cfg) = fig1();
        let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(8))
            .analyze_all(vec![BatchItem::new("fig1", p, cfg)]);
        let text = batch.to_string();
        assert!(text.contains("batch: 1 programs"));
        assert!(text.contains("arena:"));
        assert!(text.contains("fig1"));
    }
}
