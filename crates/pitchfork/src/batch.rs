//! Batch analysis: many programs through one detector configuration and
//! one shared expression arena.
//!
//! **Compatibility wrapper** — [`BatchAnalyzer`] survives for existing
//! callers, but it is a thin shell over [`crate::AnalysisSession`],
//! which owns the batch engine ([`AnalysisSession::run_batch`]), the
//! cache binding, and the epoch lifecycle. New code should build a
//! session. The report types here ([`BatchItem`], [`BatchReport`],
//! [`BatchTotals`]) are the session's batch vocabulary and are not
//! deprecated.
//!
//! The hash-consed arena (see [`sct_symx::arena_stats`]) is
//! process-wide, so analyzing a whole corpus in one batch lets later
//! programs hit the expression and simplification caches warmed by
//! earlier ones; [`BatchReport`] surfaces exactly how much structure
//! was shared, along with aggregate exploration statistics.

use crate::detector::DetectorOptions;
use crate::report::Report;
use crate::session::AnalysisSession;
use sct_core::{Config, Program, Reg};
use sct_symx::ArenaStats;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// One program to analyze.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// Display name (e.g. the litmus case or case-study name).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
    /// Per-item speculation-bound override (`None` uses the batch
    /// options' bound).
    pub bound: Option<usize>,
    /// Registers replaced by fresh symbolic inputs (covering every
    /// value of those registers instead of the one in `config`); empty
    /// means fully concrete analysis.
    pub symbolic: Vec<Reg>,
}

impl BatchItem {
    /// An item analyzed at the batch-wide bound.
    pub fn new(name: impl Into<String>, program: Program, config: Config) -> Self {
        BatchItem {
            name: name.into(),
            program,
            config,
            bound: None,
            symbolic: Vec::new(),
        }
    }

    /// An item with its own speculation bound.
    pub fn with_bound(name: impl Into<String>, program: Program, config: Config, bound: usize) -> Self {
        BatchItem {
            name: name.into(),
            program,
            config,
            bound: Some(bound),
            symbolic: Vec::new(),
        }
    }

    /// The same item with `regs` symbolized (the batch equivalent of
    /// [`Detector::analyze_symbolic`]); symbolic analyses exercise the
    /// constraint solver, so these items populate — and profit from —
    /// the verdict memo.
    pub fn symbolize(mut self, regs: impl IntoIterator<Item = Reg>) -> Self {
        self.symbolic = regs.into_iter().collect();
        self
    }
}

/// The analysis result for one batch item.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The item's name.
    pub name: String,
    /// Its full report.
    pub report: Report,
}

/// Aggregate statistics over a whole batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchTotals {
    /// Programs analyzed.
    pub programs: usize,
    /// Programs with at least one violation.
    pub flagged: usize,
    /// States expanded across all programs.
    pub states: usize,
    /// Duplicate states pruned across all programs.
    pub deduped: usize,
    /// Machine steps across all programs.
    pub steps: usize,
    /// Violations found across all programs.
    pub violations: usize,
    /// Programs whose exploration hit a budget.
    pub truncated: usize,
    /// Solver feasibility queries across all programs.
    pub solver_queries: usize,
    /// Queries answered from the verdict memo across all programs.
    pub solver_memo_hits: usize,
    /// Queries that ran the full solver pipeline.
    pub solver_memo_misses: usize,
    /// Memoized verdicts evicted by the capacity guard during the
    /// batch (see [`sct_symx::set_solver_memo_capacity`]).
    pub solver_memo_evicted: usize,
}

impl BatchTotals {
    /// Fraction of solver queries answered from the verdict memo.
    pub fn solver_memo_hit_rate(&self) -> f64 {
        if self.solver_queries == 0 {
            0.0
        } else {
            self.solver_memo_hits as f64 / self.solver_queries as f64
        }
    }
}

/// The result of [`BatchAnalyzer::analyze_all`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-item outcomes, in input order.
    pub outcomes: Vec<BatchOutcome>,
    /// Aggregate exploration statistics.
    pub totals: BatchTotals,
    /// The frontier order the batch ran under (see
    /// [`crate::StrategyKind::name`]).
    pub strategy: &'static str,
    /// Arena counters when the batch started.
    pub arena_before: ArenaStats,
    /// Arena counters when the batch finished.
    pub arena_after: ArenaStats,
    /// What the warm-start cache load transferred, when the analyzer
    /// was built with [`BatchAnalyzer::with_cache`] and the file
    /// existed.
    pub cache_load: Option<sct_cache::LoadStats>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Expression nodes interned during this batch (new structure that
    /// no earlier program — in or before the batch — had built).
    pub fn fresh_nodes(&self) -> usize {
        self.arena_after.nodes - self.arena_before.nodes
    }

    /// States per second over the whole batch.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.totals.states as f64 / secs
        }
    }

    /// The outcome for a named item, if present.
    pub fn outcome(&self, name: &str) -> Option<&BatchOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Per-item first-witness metrics: `(name, states expanded when the
    /// first witness appeared, schedule depth of that witness)` for
    /// every flagged item — the numbers strategy A/B comparisons are
    /// made of.
    pub fn first_witnesses(&self) -> Vec<(&str, usize, usize)> {
        self.outcomes
            .iter()
            .filter_map(|o| {
                let states = o.report.stats.first_witness_states?;
                let depth = o.report.stats.first_witness_depth?;
                Some((o.name.as_str(), states, depth))
            })
            .collect()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch[{}]: {} programs, {} flagged; {} states ({} deduped), {} steps in {:.1?} ({:.0} states/s)",
            self.strategy,
            self.totals.programs,
            self.totals.flagged,
            self.totals.states,
            self.totals.deduped,
            self.totals.steps,
            self.wall,
            self.states_per_sec(),
        )?;
        writeln!(
            f,
            "arena: {} nodes (+{} this batch), app cache {} hits / {} misses",
            self.arena_after.nodes,
            self.fresh_nodes(),
            self.arena_after.app_cache_hits,
            self.arena_after.app_cache_misses,
        )?;
        writeln!(
            f,
            "solver: {} queries, {} memo hits / {} misses ({:.1}% hit rate), {} evicted",
            self.totals.solver_queries,
            self.totals.solver_memo_hits,
            self.totals.solver_memo_misses,
            100.0 * self.totals.solver_memo_hit_rate(),
            self.totals.solver_memo_evicted,
        )?;
        if let Some(load) = &self.cache_load {
            writeln!(f, "cache: warm start — {load}")?;
        }
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:<32} {:<24} {:>6} states {:>6} deduped{}",
                o.name,
                o.report.verdict(),
                o.report.stats.states,
                o.report.stats.deduped,
                if o.report.stats.truncated {
                    " (truncated)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// Runs many programs through one detector configuration, sharing the
/// process-wide expression arena, and reports aggregate statistics.
///
/// **Compatibility wrapper**: every call delegates to an
/// [`AnalysisSession`] ([`AnalysisSession::run_batch`] is the engine);
/// new code should build the session directly — it additionally offers
/// strategy selection, observers, and the epoch lifecycle.
///
/// With [`BatchAnalyzer::with_cache`] the analyzer also spans
/// *processes*: it hydrates the arena and the solver-verdict memo from
/// a snapshot file before analyzing, and [`BatchAnalyzer::save_cache`]
/// persists the (now warmer) state for the next invocation.
///
/// # Examples
///
/// ```
/// use pitchfork::{BatchAnalyzer, BatchItem, DetectorOptions};
/// use sct_core::examples::fig1;
///
/// let (program, config) = fig1();
/// let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(16))
///     .analyze_all(vec![BatchItem::new("fig1", program, config)]);
/// assert_eq!(batch.totals.programs, 1);
/// assert_eq!(batch.totals.flagged, 1);
/// ```
#[derive(Clone, Debug, Default)]
#[deprecated(note = "use AnalysisSession / SessionService")]
pub struct BatchAnalyzer {
    options: DetectorOptions,
    cache_path: Option<PathBuf>,
    cache_load: Option<sct_cache::LoadStats>,
}

#[allow(deprecated)]
impl BatchAnalyzer {
    /// A batch analyzer running every item with `options` (modulo
    /// per-item bound overrides).
    pub fn new(options: DetectorOptions) -> Self {
        BatchAnalyzer {
            options,
            cache_path: None,
            cache_load: None,
        }
    }

    /// Attach a warm-start cache file: if `path` exists, the expression
    /// arena and solver-verdict memo are hydrated from it immediately
    /// (a missing file is a cold start, not an error), and
    /// [`BatchAnalyzer::save_cache`] will persist to the same path.
    pub fn with_cache(
        mut self,
        path: impl Into<PathBuf>,
    ) -> Result<Self, sct_cache::CacheError> {
        let path = path.into();
        self.cache_load = sct_cache::load_if_exists(&path)?;
        self.cache_path = Some(path);
        Ok(self)
    }

    /// What the warm-start load transferred (`None` before
    /// [`BatchAnalyzer::with_cache`], or when the file did not exist).
    pub fn cache_load(&self) -> Option<&sct_cache::LoadStats> {
        self.cache_load.as_ref()
    }

    /// Persist the process-wide arena and verdict memo to the path
    /// given to [`BatchAnalyzer::with_cache`]. Returns `Ok(None)` when
    /// no cache path is attached.
    pub fn save_cache(&self) -> Result<Option<sct_cache::SaveStats>, sct_cache::CacheError> {
        match &self.cache_path {
            Some(path) => sct_cache::save(path).map(Some),
            None => Ok(None),
        }
    }

    /// Analyze every item, in order, accumulating totals and arena
    /// deltas. Delegates to a transient [`AnalysisSession`] adopting
    /// this analyzer's cache binding.
    pub fn analyze_all(&self, items: impl IntoIterator<Item = BatchItem>) -> BatchReport {
        AnalysisSession::from_loaded(self.options, self.cache_path.clone(), self.cache_load)
            .run_batch(items)
    }
}

// The wrapper's own coverage keeps speaking the deprecated API — that
// is the point of the tests.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use sct_core::examples::fig1;

    #[test]
    fn batch_aggregates_and_matches_single_runs() {
        let (p, cfg) = fig1();
        let items = vec![
            BatchItem::new("fig1-a", p.clone(), cfg.clone()),
            BatchItem::with_bound("fig1-b", p.clone(), cfg.clone(), 4),
        ];
        let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(16)).analyze_all(items);
        assert_eq!(batch.totals.programs, 2);
        assert_eq!(batch.totals.flagged, 2);
        let single = Detector::new(DetectorOptions::v1_mode(16)).analyze(&p, &cfg);
        let in_batch = &batch.outcome("fig1-a").unwrap().report;
        assert_eq!(in_batch.has_violations(), single.has_violations());
        assert_eq!(in_batch.stats.states, single.stats.states);
    }

    #[test]
    fn display_summarizes() {
        let (p, cfg) = fig1();
        let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(8))
            .analyze_all(vec![BatchItem::new("fig1", p, cfg)]);
        let text = batch.to_string();
        assert!(text.contains("batch[lifo]: 1 programs"));
        assert!(text.contains("arena:"));
        assert!(text.contains("fig1"));
    }
}
