//! The unified analysis session: one entry point owning options,
//! search strategy, warm-start cache, observers, and the arena epoch
//! lifecycle.
//!
//! Everything the crate can do — single-program analysis, symbolic
//! inputs, corpus batches, warm-start persistence, epoch retirement —
//! goes through [`AnalysisSession`], configured once via
//! [`SessionBuilder`]. The older [`crate::Detector`] and
//! [`crate::BatchAnalyzer`] entry points survive as thin compatibility
//! wrappers over a session.
//!
//! ```
//! use pitchfork::{AnalysisSession, StrategyKind};
//! use sct_core::examples::fig1;
//!
//! let (program, config) = fig1();
//! let mut session = AnalysisSession::builder()
//!     .v1_mode(20)
//!     .strategy(StrategyKind::DeepestRob)
//!     .build()
//!     .unwrap();
//! let report = session.analyze(&program, &config);
//! assert!(report.verdict().is_insecure());
//! ```

use crate::batch::{BatchItem, BatchOutcome, BatchReport, BatchTotals};
use crate::detector::DetectorOptions;
use crate::explorer::Explorer;
use crate::incremental::{
    block_hashes, config_tag, entry_fingerprint, plan_entry, BaselineEntry, BaselineManifest,
    EntryPlan, IncrementalOutcome, IncrementalReport,
};
use crate::observe::{emit, BoxObserver, Event};
use crate::report::Report;
use crate::state::SymState;
use crate::strategy::StrategyKind;
use sct_core::{Config, Program, Reg};
use sct_symx::arena_stats;
use std::path::PathBuf;
use std::time::Instant;

/// Builder for [`AnalysisSession`]: detector mode, bounds, dedup,
/// search strategy, cache path, default symbolized registers, and
/// observers.
#[derive(Default)]
pub struct SessionBuilder {
    options: DetectorOptions,
    cache: Option<PathBuf>,
    symbolic: Vec<Reg>,
    observers: Vec<BoxObserver>,
}

impl SessionBuilder {
    /// A builder with default options (v1-style exploration, LIFO
    /// frontier, no cache).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Replace the full detector options.
    pub fn options(mut self, options: DetectorOptions) -> Self {
        self.options = options;
        self
    }

    /// The paper's Spectre v1/v1.1 mode at `bound` (keeps the already
    /// configured strategy and dedup setting).
    pub fn v1_mode(self, bound: usize) -> Self {
        self.mode(DetectorOptions::v1_mode(bound))
    }

    /// The paper's Spectre v4 mode at `bound`.
    pub fn v4_mode(self, bound: usize) -> Self {
        self.mode(DetectorOptions::v4_mode(bound))
    }

    /// Aliasing-predictor extension mode at `bound`.
    pub fn alias_mode(self, bound: usize) -> Self {
        self.mode(DetectorOptions::alias_mode(bound))
    }

    /// Spectre v2 (mistrained indirect jumps) extension mode at `bound`.
    pub fn v2_mode(self, bound: usize) -> Self {
        self.mode(DetectorOptions::v2_mode(bound))
    }

    fn mode(mut self, mode: DetectorOptions) -> Self {
        let strategy = self.options.explorer.strategy;
        let dedup = self.options.explorer.dedup_states;
        let threads = self.options.explorer.threads;
        self.options = mode;
        self.options.explorer.strategy = strategy;
        self.options.explorer.dedup_states = dedup;
        self.options.explorer.threads = threads;
        self
    }

    /// Override the speculation bound.
    pub fn bound(mut self, bound: usize) -> Self {
        self.options.explorer.spec_bound = bound;
        self
    }

    /// Toggle fingerprint deduplication.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.options.explorer.dedup_states = dedup;
        self
    }

    /// Override the state-expansion budget.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.options.explorer.max_states = max_states;
        self
    }

    /// Select the frontier order.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.options.explorer.strategy = strategy;
        self
    }

    /// Worker threads per exploration: `1` (the default) is the serial
    /// engine, byte-identical to previous releases; `n > 1` explores
    /// each program's frontier on `n` threads; `0` means one worker
    /// per available core. Verdicts and witness sets are unchanged —
    /// see the crate-level "Parallel exploration" section for the
    /// determinism contract.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.options.explorer.threads = threads;
        self
    }

    /// Attach a warm-start cache file. [`SessionBuilder::build`] will
    /// hydrate the expression arena and solver-verdict memo from it (a
    /// missing file is a cold start, not an error), and
    /// [`AnalysisSession::save`] / [`AnalysisSession::retire`] persist
    /// back to the same path.
    pub fn cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache = Some(path.into());
        self
    }

    /// Registers to symbolize by default in [`AnalysisSession::analyze`]
    /// (covering all attacker-chosen values instead of the concrete
    /// configuration's).
    pub fn symbolize(mut self, regs: impl IntoIterator<Item = Reg>) -> Self {
        self.symbolic = regs.into_iter().collect();
        self
    }

    /// Register an event observer (may be called repeatedly; events fan
    /// out to all observers in registration order).
    pub fn observer(mut self, observer: BoxObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Build the session, hydrating the cache if one is attached and
    /// present on disk. The only error source is a corrupt or unreadable
    /// cache file; callers that prefer degrading to a cold start can
    /// drop the cache path and rebuild.
    pub fn build(self) -> Result<AnalysisSession, sct_cache::CacheError> {
        let cache_load = match &self.cache {
            Some(path) => sct_cache::load_if_exists(path)?,
            None => None,
        };
        Ok(AnalysisSession {
            options: self.options,
            symbolic: self.symbolic,
            cache_path: self.cache,
            cache_load,
            observers: self.observers,
            epochs_retired: 0,
        })
    }
}

/// The unified entry point: owns detector options, the search
/// strategy, the warm-start cache binding, registered observers, and
/// the process-arena epoch lifecycle.
///
/// A session is the *only* place the crate wires solver state, cache
/// files, and epochs together; the CLI, the litmus harness, the Table 2
/// driver, and the examples all construct one (directly or through the
/// compatibility wrappers).
pub struct AnalysisSession {
    options: DetectorOptions,
    symbolic: Vec<Reg>,
    cache_path: Option<PathBuf>,
    cache_load: Option<sct_cache::LoadStats>,
    observers: Vec<BoxObserver>,
    epochs_retired: usize,
}

impl AnalysisSession {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// An uncached session over `options` (infallible; the wrapper path
    /// for [`crate::Detector`]).
    pub fn with_options(options: DetectorOptions) -> Self {
        AnalysisSession {
            options,
            symbolic: Vec::new(),
            cache_path: None,
            cache_load: None,
            observers: Vec::new(),
            epochs_retired: 0,
        }
    }

    /// A session adopting an already-performed cache load (the
    /// compatibility path for [`crate::BatchAnalyzer::with_cache`],
    /// which hydrates at construction time).
    pub(crate) fn from_loaded(
        options: DetectorOptions,
        cache_path: Option<PathBuf>,
        cache_load: Option<sct_cache::LoadStats>,
    ) -> Self {
        AnalysisSession {
            options,
            symbolic: Vec::new(),
            cache_path,
            cache_load,
            observers: Vec::new(),
            epochs_retired: 0,
        }
    }

    /// The current detector options.
    pub fn options(&self) -> &DetectorOptions {
        &self.options
    }

    /// Swap detector options mid-session: mode changes between batches
    /// reuse the session's cache/epoch state. The session's sticky
    /// knobs — search strategy, deduplication, and parallelism —
    /// survive the swap, mirroring the builder's mode setters; change
    /// them with [`AnalysisSession::set_strategy`] /
    /// [`AnalysisSession::set_dedup`] /
    /// [`AnalysisSession::set_parallelism`].
    pub fn set_options(&mut self, options: DetectorOptions) {
        let strategy = self.options.explorer.strategy;
        let dedup = self.options.explorer.dedup_states;
        let threads = self.options.explorer.threads;
        self.options = options;
        self.options.explorer.strategy = strategy;
        self.options.explorer.dedup_states = dedup;
        self.options.explorer.threads = threads;
    }

    /// Toggle fingerprint deduplication for subsequent analyses.
    pub fn set_dedup(&mut self, dedup: bool) {
        self.options.explorer.dedup_states = dedup;
    }

    /// The active frontier order.
    pub fn strategy(&self) -> StrategyKind {
        self.options.explorer.strategy
    }

    /// Change the frontier order for subsequent analyses.
    pub fn set_strategy(&mut self, strategy: StrategyKind) {
        self.options.explorer.strategy = strategy;
    }

    /// The configured worker-thread count (see
    /// [`SessionBuilder::parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.options.explorer.threads
    }

    /// Change the worker-thread count for subsequent analyses.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.options.explorer.threads = threads;
    }

    /// What the warm-start load transferred (`None` without a cache, or
    /// when the file did not exist).
    pub fn cache_load(&self) -> Option<&sct_cache::LoadStats> {
        self.cache_load.as_ref()
    }

    /// Bind a cache path **without** loading from it: subsequent
    /// [`AnalysisSession::save`] / [`AnalysisSession::retire`] calls
    /// persist there. This is the cold-start recovery path after a
    /// failed [`SessionBuilder::build`] — the unreadable snapshot is
    /// left untouched until a successful save rewrites it.
    pub fn attach_cache(&mut self, path: impl Into<PathBuf>) {
        self.cache_path = Some(path.into());
    }

    /// Epochs retired by this session so far.
    pub fn epochs_retired(&self) -> usize {
        self.epochs_retired
    }

    /// Register an observer on a built session.
    pub fn observe(&mut self, observer: BoxObserver) {
        self.observers.push(observer);
    }

    /// Analyze one program, symbolizing the session's default register
    /// set (none unless [`SessionBuilder::symbolize`] was given).
    pub fn analyze(&mut self, program: &Program, config: &Config) -> Report {
        let regs = std::mem::take(&mut self.symbolic);
        let report = self.analyze_symbolic(program, config, &regs);
        self.symbolic = regs;
        report
    }

    /// Analyze one program with an explicit symbolized-register set
    /// (empty = fully concrete).
    pub fn analyze_symbolic(
        &mut self,
        program: &Program,
        config: &Config,
        symbolic: &[Reg],
    ) -> Report {
        let explorer = Explorer::with_params(program, self.options.params, self.options.explorer);
        let initial = if symbolic.is_empty() {
            SymState::from_config(config)
        } else {
            SymState::from_config_symbolizing(config, symbolic)
        };
        explorer.explore_observed(initial, &mut self.observers)
    }

    /// Analyze every item in order — the batch engine behind
    /// [`crate::BatchAnalyzer::analyze_all`] — accumulating totals and
    /// arena deltas, streaming an [`Event::ItemFinished`] per item.
    ///
    /// Per-item `bound` and `symbolic` settings override the session's;
    /// the expression arena is shared across items (and, with a cache,
    /// across processes).
    pub fn run_batch(&mut self, items: impl IntoIterator<Item = BatchItem>) -> BatchReport {
        let arena_before = arena_stats();
        let start = Instant::now();
        let strategy = self.strategy().name();
        let mut outcomes = Vec::new();
        let mut totals = BatchTotals::default();
        let saved_bound = self.options.explorer.spec_bound;
        for item in items {
            if let Some(bound) = item.bound {
                self.options.explorer.spec_bound = bound;
            }
            let report = self.analyze_symbolic(&item.program, &item.config, &item.symbolic);
            self.options.explorer.spec_bound = saved_bound;
            totals.programs += 1;
            totals.flagged += usize::from(report.has_violations());
            totals.states += report.stats.states;
            totals.deduped += report.stats.deduped;
            totals.steps += report.stats.steps;
            totals.violations += report.violations.len();
            totals.truncated += usize::from(report.stats.truncated);
            totals.solver_queries += report.stats.solver_queries;
            totals.solver_memo_hits += report.stats.solver_memo_hits;
            totals.solver_memo_misses += report.stats.solver_memo_misses;
            totals.solver_memo_evicted += report.stats.solver_memo_evicted;
            emit(
                &mut self.observers,
                Event::ItemFinished {
                    name: &item.name,
                    flagged: report.has_violations(),
                    states: report.stats.states,
                },
            );
            outcomes.push(BatchOutcome {
                name: item.name,
                report,
            });
        }
        BatchReport {
            outcomes,
            totals,
            strategy,
            arena_before,
            arena_after: arena_stats(),
            cache_load: self.cache_load,
            wall: start.elapsed(),
        }
    }

    /// Diff-aware re-analysis: run a batch against a
    /// [`BaselineManifest`], replaying the recorded verdict for every
    /// entry whose fingerprint is unchanged (zero exploration) and
    /// re-exploring only dirty or new entries — typically against the
    /// warm memo hydrated from the baseline's pruned snapshot.
    ///
    /// The returned report carries the refreshed manifest (see
    /// [`crate::incremental::save_baseline`]) and flags verdict flips;
    /// the `ci-gate` CLI verb exits nonzero on any flip to insecure.
    /// Replayed report lines are byte-identical to the baseline's, so
    /// untouched entries diff clean across runs.
    pub fn analyze_incremental(
        &mut self,
        items: impl IntoIterator<Item = BatchItem>,
        baseline: &BaselineManifest,
    ) -> IncrementalReport {
        fn verdict_kind(v: &crate::report::Verdict) -> u8 {
            match v {
                crate::report::Verdict::Secure => 0,
                crate::report::Verdict::Insecure { .. } => 1,
                crate::report::Verdict::Unknown { .. } => 2,
            }
        }
        let start = Instant::now();
        let mut manifest = BaselineManifest::empty();
        let mut outcomes = Vec::new();
        let (mut reused, mut reanalyzed) = (0, 0);
        let (mut states_explored, mut states_skipped) = (0, 0);
        let saved_bound = self.options.explorer.spec_bound;
        for item in items {
            let bound = item.bound.unwrap_or(saved_bound);
            let blocks = block_hashes(&item.program);
            let tag = config_tag(&self.options, bound, &item.symbolic);
            let fingerprint = entry_fingerprint(&blocks, tag);
            let plan = plan_entry(baseline, &item.name, fingerprint, &blocks);
            if plan == EntryPlan::Unchanged {
                let old = baseline
                    .get(&item.name)
                    .expect("unchanged implies a baseline entry")
                    .clone();
                if sct_telemetry::enabled() {
                    sct_telemetry::counter(sct_telemetry::names::INCR_REUSE_TOTAL).inc();
                }
                reused += 1;
                states_skipped += old.states;
                outcomes.push(IncrementalOutcome {
                    name: old.name.clone(),
                    plan,
                    verdict: old.verdict,
                    line: old.line.clone(),
                    states: 0,
                    flip: None,
                });
                manifest.upsert(old);
                continue;
            }
            self.options.explorer.spec_bound = bound;
            let report = self.analyze_symbolic(&item.program, &item.config, &item.symbolic);
            self.options.explorer.spec_bound = saved_bound;
            if sct_telemetry::enabled() {
                sct_telemetry::counter(sct_telemetry::names::INCR_REANALYZED_TOTAL).inc();
            }
            reanalyzed += 1;
            states_explored += report.stats.states;
            let verdict = report.verdict();
            let line = crate::fleet::report_line(
                &item.name,
                verdict,
                report.stats.states,
                report.stats.schedules,
                report.stats.strategy,
                report.stats.truncated,
            );
            let flip = baseline
                .get(&item.name)
                .map(|e| e.verdict)
                .filter(|old| verdict_kind(old) != verdict_kind(&verdict));
            emit(
                &mut self.observers,
                Event::ItemFinished {
                    name: &item.name,
                    flagged: report.has_violations(),
                    states: report.stats.states,
                },
            );
            manifest.upsert(BaselineEntry {
                name: item.name.clone(),
                fingerprint,
                blocks,
                verdict,
                line: line.clone(),
                states: report.stats.states,
                schedules: report.stats.schedules,
                strategy: report.stats.strategy.to_string(),
                truncated: report.stats.truncated,
            });
            outcomes.push(IncrementalOutcome {
                name: item.name,
                plan,
                verdict,
                line,
                states: report.stats.states,
                flip,
            });
        }
        IncrementalReport {
            outcomes,
            reused,
            reanalyzed,
            states_explored,
            states_skipped,
            manifest,
            wall: start.elapsed(),
        }
    }

    /// Persist the process-wide arena and verdict memo to the attached
    /// cache path. `Ok(None)` when the session has no cache.
    pub fn save(&self) -> Result<Option<sct_cache::SaveStats>, sct_cache::CacheError> {
        match &self.cache_path {
            Some(path) => sct_cache::save(path).map(Some),
            None => Ok(None),
        }
    }

    /// Retire the current arena epoch and warm-start the next one.
    ///
    /// With a cache attached: save the current arena + memo, retire the
    /// epoch (old `ExprRef`s become detectably stale), and hydrate the
    /// fresh epoch from the snapshot just written — the long-running
    /// server loop from the ROADMAP's daemon item. Without a cache the
    /// next epoch starts cold. Returns what the warm start transferred.
    pub fn retire(
        &mut self,
    ) -> Result<Option<sct_cache::LoadStats>, sct_cache::CacheError> {
        self.save()?;
        let epoch = sct_symx::retire_arena();
        // The epoch is gone whatever the reload says: keep the
        // bookkeeping (count, event, cache_load) consistent even when
        // hydration fails — the next epoch is then simply cold.
        self.epochs_retired += 1;
        let reload = match &self.cache_path {
            Some(path) => sct_cache::load_if_exists(path),
            None => Ok(None),
        };
        self.cache_load = reload.as_ref().ok().copied().flatten();
        let rehydrated = self.cache_load.as_ref().map_or(0, |l| l.added);
        emit(
            &mut self.observers,
            Event::EpochRetired { epoch, rehydrated },
        );
        reload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{EventLog, Observer};
    use crate::report::Verdict;
    use sct_core::examples::fig1;
    use std::sync::{Arc, Mutex};

    #[test]
    #[allow(deprecated)]
    fn session_matches_detector() {
        let (p, cfg) = fig1();
        let mut session = AnalysisSession::builder().v1_mode(16).build().unwrap();
        let from_session = session.analyze(&p, &cfg);
        let from_detector =
            crate::Detector::new(DetectorOptions::v1_mode(16)).analyze(&p, &cfg);
        assert_eq!(from_session.verdict(), from_detector.verdict());
        assert_eq!(from_session.stats.states, from_detector.stats.states);
    }

    #[test]
    fn builder_configures_strategy_and_symbolic() {
        let (p, cfg) = fig1();
        let mut session = AnalysisSession::builder()
            .v1_mode(16)
            .strategy(StrategyKind::Fifo)
            .symbolize([sct_core::reg::names::RA])
            .build()
            .unwrap();
        assert_eq!(session.strategy(), StrategyKind::Fifo);
        let report = session.analyze(&p, &cfg);
        assert_eq!(report.stats.strategy, "fifo");
        assert!(report.verdict().is_insecure());
    }

    #[test]
    fn observers_stream_events() {
        // Shared handle: the session owns the observer (observers are
        // `Send`, hence the mutex), the test reads the aggregate
        // through the Arc after analysis.
        let log = Arc::new(Mutex::new(EventLog::default()));
        let handle = Arc::clone(&log);
        let (p, cfg) = fig1();
        let mut session = AnalysisSession::builder()
            .v1_mode(16)
            .observer(Box::new(move |e: &Event<'_>| {
                handle.lock().unwrap().on_event(e)
            }))
            .build()
            .unwrap();
        let report = session.run_batch(vec![BatchItem::new("fig1", p, cfg)]);
        let log = log.lock().unwrap();
        assert_eq!(log.states_expanded, report.totals.states);
        assert!(log.violations_found >= 1);
        assert_eq!(log.items_finished, 1);
        assert_eq!(
            log.first_witness_states,
            report.outcomes[0].report.stats.first_witness_states
        );
    }

    #[test]
    fn retire_starts_a_new_epoch() {
        let (p, cfg) = fig1();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sct_session_retire_{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut session = AnalysisSession::builder()
            .v1_mode(16)
            .cache(&path)
            .build()
            .unwrap();
        assert!(session.cache_load().is_none(), "no snapshot yet");
        let before = session.analyze(&p, &cfg);
        let reloaded = session.retire().unwrap().expect("snapshot written");
        assert!(reloaded.added > 0, "warm start hydrates nodes");
        assert_eq!(session.epochs_retired(), 1);
        let after = session.analyze(&p, &cfg);
        assert_eq!(before.verdict(), after.verdict());
        assert_eq!(before.stats.states, after.stats.states);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn incremental_replays_unchanged_and_dirties_config_changes() {
        let (p, cfg) = fig1();
        let mut session = AnalysisSession::builder().v1_mode(16).build().unwrap();
        let items = || vec![BatchItem::new("fig1", p.clone(), cfg.clone())];
        let cold = session.analyze_incremental(items(), &BaselineManifest::empty());
        assert_eq!(cold.reanalyzed, 1);
        assert_eq!(cold.outcomes[0].plan, EntryPlan::New);
        assert!(cold.states_explored > 0);

        // Same corpus, same config: everything replays, nothing explores,
        // and the report line is byte-identical.
        let warm = session.analyze_incremental(items(), &cold.manifest);
        assert_eq!(warm.reused, 1);
        assert_eq!(warm.reanalyzed, 0);
        assert_eq!(warm.states_explored, 0);
        assert_eq!(warm.states_skipped, cold.states_explored);
        assert_eq!(warm.outcomes[0].line, cold.outcomes[0].line);
        assert!(warm.regressions().is_empty());

        // A per-item bound change moves the config tag: dirty, re-run.
        let rebound = vec![BatchItem::with_bound("fig1", p.clone(), cfg.clone(), 4)];
        let dirty = session.analyze_incremental(rebound, &warm.manifest);
        assert_eq!(dirty.reanalyzed, 1);
        assert!(matches!(dirty.outcomes[0].plan, EntryPlan::Dirty { .. }));
    }

    #[test]
    fn unknown_verdict_on_tiny_budget() {
        let (p, cfg) = fig1();
        let mut session = AnalysisSession::builder()
            .v1_mode(16)
            .max_states(1)
            .build()
            .unwrap();
        let report = session.analyze(&p, &cfg);
        assert!(matches!(report.verdict(), Verdict::Unknown { .. }));
    }
}
