//! The multi-threaded frontier engine behind
//! [`ExplorerOptions::threads`](crate::ExplorerOptions::threads).
//!
//! Exploration at the state level is embarrassingly parallel: each
//! frontier state expands independently, and only three things are
//! shared — pending work, the fingerprint visited set, and the
//! process-wide expression arena / solver memo (which `sct-symx`
//! lock-stripes and fronts with thread-local L1 caches; see its crate
//! docs). The engine runs a persistent worker pool over exactly the
//! serial engine's expansion logic ([`Explorer::continuations`] /
//! [`Explorer::apply`] are shared code, not reimplementations), with a
//! **work-stealing** frontier:
//!
//! * **Per-worker frontiers** — every worker owns a private
//!   strategy-ordered frontier ([`SearchStrategy`]) it pushes and pops
//!   with *no* synchronization at all. There is no global frontier
//!   lock; the strategy order is exact within a worker and a priority
//!   *hint* across workers (which states a worker owns depends on
//!   timing).
//! * **Batch donation and stealing** — a worker whose push leaves
//!   hungry peers (`hungry > 0`) pops half its frontier (its
//!   highest-priority states, capped at [`MAX_DONATION`]) into its
//!   donation buffer, a small mutex-guarded vector nobody touches on
//!   the hot path. A worker whose own frontier drains sweeps the
//!   donation buffers — its own first, then the others starting from a
//!   seed-rotated victim ([`crate::ExplorerOptions::steal_seed`]) —
//!   and takes a whole buffer per steal, so one steal funds many
//!   expansions. Batches keep steal traffic (and the `steals` counter)
//!   proportional to load imbalance, not to state count.
//! * **Visited set** — lock-striped (64 mutexes over `u128`
//!   fingerprints); a successor is claimed by whichever worker inserts
//!   its fingerprint first, so every distinct state is expanded
//!   exactly once, as in serial mode.
//! * **Termination** — a shared `in_flight` counter of states that are
//!   queued somewhere or being expanded: seeded with the initial
//!   frontier, incremented for fresh successors *before* the expansion
//!   that produced them is counted finished, decremented once per
//!   finished expansion. It hits zero exactly when no state exists
//!   anywhere — every worker's frontier and buffer is empty and no
//!   expansion is in flight — and the worker that zeroes it raises the
//!   stop flag and wakes the sleepers. A worker that finds nothing to
//!   steal parks on a condvar; donors bump the `published` count
//!   before taking the park lock to notify, and sleepers re-check
//!   `published` and `stop` under that lock before waiting, so
//!   wake-ups cannot be lost. A worker panic raises the same stop
//!   flag, so the survivors always exit rather than parking forever.
//!
//! # Determinism contract
//!
//! With the state budget and violation cap not hit, the set of
//! expanded states is the set of *distinct reachable* states whatever
//! the expansion order, so parallel runs produce the same verdict, the
//! same witness **set**, and the same state/step/dedup counts as the
//! serial engine — the equivalence suite pins this over the litmus
//! corpus and the Table 2 case studies for every strategy × thread
//! count. Merged reports sort witnesses canonically, so parallel
//! *output* is reproducible run-to-run as well. What may differ from
//! serial mode: witness order before the sort (serial keeps discovery
//! order), the `first_witness_*` metrics (they record whichever
//! witness a worker reached first), and event interleaving. Under
//! truncation (`max_states` / `max_violations`) the *prefix* of states
//! explored is timing-dependent, exactly as it is order-dependent
//! across strategies. [`crate::ExplorerOptions::steal_seed`] rotates
//! victim order and therefore timing, never results — the equivalence
//! proptest hammers exactly this.

use crate::explorer::{ExpandTimer, Explorer};
use crate::observe::{BoxObserver, Event, EventSink, SharedSink};
use crate::report::Report;
use crate::state::SymState;
use crate::strategy::SearchStrategy;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, LazyLock, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

static STEAL_ATTEMPT_HIST: LazyLock<&'static sct_telemetry::Histogram> =
    LazyLock::new(|| sct_telemetry::histogram(sct_telemetry::names::STEAL_ATTEMPT));

/// Per-worker utilization accounting, published on worker exit to the
/// labeled counters `worker_busy_ns{worker="i"}` /
/// `worker_steal_ns{...}` / `worker_parked_ns{...}` (cumulative per
/// worker slot across explorations) plus the `steal_attempt_ns`
/// histogram. Inert when telemetry is disabled.
struct WorkerUtil {
    on: bool,
    busy_ns: u64,
    steal_ns: u64,
    parked_ns: u64,
    steal_hist: Option<sct_telemetry::LocalHist>,
}

impl WorkerUtil {
    fn new() -> WorkerUtil {
        let on = sct_telemetry::enabled();
        WorkerUtil {
            on,
            busy_ns: 0,
            steal_ns: 0,
            parked_ns: 0,
            steal_hist: on.then(|| sct_telemetry::LocalHist::new(*STEAL_ATTEMPT_HIST)),
        }
    }

    #[inline]
    fn now(&self) -> Option<Instant> {
        if self.on {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// One donation-buffer sweep finished (hit or miss).
    #[inline]
    fn steal_attempt(&mut self, t0: Option<Instant>) {
        if let (Some(t0), Some(hist)) = (t0, self.steal_hist.as_mut()) {
            let ns = sct_telemetry::saturating_ns(t0.elapsed());
            hist.record_ns(ns);
            self.steal_ns += ns;
        }
    }

    /// One condvar park finished.
    #[inline]
    fn parked(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.parked_ns += sct_telemetry::saturating_ns(t0.elapsed());
        }
    }

    /// Publish the totals for worker slot `me`.
    fn publish(&mut self, me: usize) {
        if !self.on {
            return;
        }
        if let Some(hist) = self.steal_hist.as_mut() {
            hist.flush();
        }
        sct_telemetry::counter(&sct_telemetry::names::worker_busy(me)).add(self.busy_ns);
        sct_telemetry::counter(&sct_telemetry::names::worker_steal(me)).add(self.steal_ns);
        sct_telemetry::counter(&sct_telemetry::names::worker_parked(me)).add(self.parked_ns);
        self.busy_ns = 0;
        self.steal_ns = 0;
        self.parked_ns = 0;
    }
}

/// A persistent pool of parked worker threads shared by every parallel
/// exploration in the process.
///
/// Spawning OS threads per exploration costs ~50–100µs per thread —
/// more than the *entire* serial exploration of a small litmus program
/// — so a `std::thread::scope` per `explore_parallel` call would make
/// parallelism a net loss on exactly the many-small-programs batch
/// workload it exists to speed up. The pool spawns each worker once,
/// parks it on a condvar between explorations, and hands it scoped
/// jobs; dispatch cost is a condvar wake instead of a thread spawn.
mod pool {
    use std::collections::VecDeque;
    use std::sync::{Condvar, LazyLock, Mutex, MutexGuard, PoisonError};

    /// Completion latch for one `run` call: how many invocations are
    /// still outstanding, and whether any of them panicked.
    struct Latch {
        state: Mutex<(usize, bool)>,
        done: Condvar,
    }

    impl Latch {
        fn complete(&self, panicked: bool) {
            let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            s.0 -= 1;
            s.1 |= panicked;
            if s.0 == 0 {
                // Notified while the lock is held: the waiter can only
                // observe the zero after this thread releases the
                // mutex, after which this thread never touches the
                // latch again — so the waiter may safely destroy it.
                self.done.notify_all();
            }
        }
    }

    /// One erased invocation: a pointer to the caller's job closure
    /// and to its latch.
    ///
    /// # Safety invariant
    ///
    /// Both pointees live on the stack of the `run` call that enqueued
    /// the task, and `run` does not return until the latch has counted
    /// every invocation — so the pointers are valid whenever a worker
    /// dereferences them. This is the same guarantee
    /// `std::thread::scope` provides, rebuilt so the threads
    /// themselves can outlive the scope.
    struct Task {
        job: *const (dyn Fn() + Sync),
        latch: *const Latch,
    }

    // Safety: see `Task` — the pointees outlive every dereference, and
    // the job is `Sync` so any worker thread may call it.
    unsafe impl Send for Task {}

    struct Inner {
        tasks: VecDeque<Task>,
        /// Workers parked on the condvar right now.
        idle: usize,
    }

    struct Pool {
        inner: Mutex<Inner>,
        work: Condvar,
    }

    static POOL: LazyLock<Pool> = LazyLock::new(|| Pool {
        inner: Mutex::new(Inner {
            tasks: VecDeque::new(),
            idle: 0,
        }),
        work: Condvar::new(),
    });

    fn lock() -> MutexGuard<'static, Inner> {
        POOL.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn worker_loop() {
        loop {
            let task = {
                let mut inner = lock();
                loop {
                    if let Some(t) = inner.tasks.pop_front() {
                        break t;
                    }
                    inner.idle += 1;
                    inner = POOL.work.wait(inner).unwrap_or_else(PoisonError::into_inner);
                    inner.idle -= 1;
                }
            };
            // Safety: the enqueuing `run` is still blocked on the
            // latch (see `Task`), so both pointers are live.
            let job = unsafe { &*task.job };
            let latch = unsafe { &*task.latch };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            latch.complete(result.is_err());
        }
    }

    /// Invoke `job` up to `n` times concurrently: once inline on the
    /// calling thread (the caller is a full worker, not a blocked
    /// supervisor) and up to `n - 1` times on pool threads. Every
    /// planned extra invocation that will *not* run — the OS refused a
    /// thread and no parked worker was free — is reported through one
    /// `cancel()` call instead, so callers that track planned workers
    /// can account for it.
    ///
    /// Blocks until every started invocation returns — including when
    /// the inline invocation panics (the unwind is caught, the latch
    /// is drained, and only then is the panic resumed), so no worker
    /// can ever dereference the stack-allocated job or latch after
    /// `run` leaves. Panics if any invocation panicked.
    pub(super) fn run(n: usize, job: &(dyn Fn() + Sync), cancel: &(dyn Fn() + Sync)) {
        let extra = n.saturating_sub(1);
        if extra == 0 {
            job();
            return;
        }
        let latch = Latch {
            state: Mutex::new((extra, false)),
            done: Condvar::new(),
        };
        // Safety: purely a lifetime erasure (same type, longer
        // lifetime) — the latch protocol below keeps `job` borrowed
        // for as long as any worker can reach the pointer.
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), _>(job) };
        let slots;
        {
            let mut inner = lock();
            // Capacity = parked workers not already claimed by queued
            // tasks, topped up by spawning (all under one lock, so the
            // arithmetic cannot race another `run`). Workers are never
            // reaped: the pool's high-water mark is the highest
            // concurrent demand, which the daemon bounds by
            // `--jobs × --threads`.
            let free = inner.idle.saturating_sub(inner.tasks.len());
            let mut capacity = free.min(extra);
            while capacity < extra {
                if std::thread::Builder::new()
                    .name("pitchfork-explore".into())
                    .spawn(worker_loop)
                    .is_err()
                {
                    break;
                }
                capacity += 1;
            }
            slots = capacity;
            if slots < extra {
                // No task for these invocations exists yet (nothing is
                // published until the pushes below), so shrinking the
                // latch expectation cannot race a completion.
                latch
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .0 -= extra - slots;
            }
            for _ in 0..slots {
                inner.tasks.push_back(Task {
                    job: erased as *const _,
                    latch: &latch as *const _,
                });
            }
            if slots > 0 {
                POOL.work.notify_all();
            }
        }
        for _ in slots..extra {
            cancel();
        }
        let inline = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        // Wait unconditionally — panicked or not, pool workers may
        // still hold pointers into this stack frame.
        let mut s = latch.state.lock().unwrap_or_else(PoisonError::into_inner);
        while s.0 > 0 {
            s = latch.done.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        let pool_panicked = s.1;
        drop(s);
        match inline {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if pool_panicked => panic!("exploration worker panicked"),
            Ok(()) => {}
        }
    }
}

/// Lock stripes of the visited set (fingerprints spread uniformly, so
/// 64 stripes keep 8 workers essentially collision-free).
const VISITED_SHARDS: usize = 64;

/// Cap on states moved per donation. Half-frontier batches amortize
/// steal overhead; the cap keeps one donation from hollowing out a
/// deep frontier (the donor keeps locality on its own subtree).
const MAX_DONATION: usize = 32;

/// One worker's mailbox: states it donated for hungry peers to take.
/// Only touched when load is imbalanced — the owner's push/pop path
/// never locks it.
struct WorkerSlot {
    donations: Mutex<Vec<SymState>>,
}

/// Everything the workers share.
struct Shared<'obs> {
    /// Donation buffers, indexed by worker id.
    workers: Vec<WorkerSlot>,
    /// States sitting in donation buffers (sleepers re-check this
    /// under the park lock, so donors can never publish unseen work).
    published: AtomicUsize,
    /// Workers currently out of local work (donors check this before
    /// paying for a donation).
    hungry: AtomicUsize,
    /// States queued anywhere or currently being expanded; zero means
    /// exploration is complete (see the module docs on termination).
    in_flight: AtomicUsize,
    /// Raised on completion, budget truncation, or worker panic.
    stop: AtomicBool,
    /// Park point for hungry workers (paired with `work`).
    park: Mutex<()>,
    work: Condvar,
    visited: Vec<Mutex<HashSet<u128>>>,
    /// States expanded so far (the budget counter; claimed by CAS so
    /// exactly `max_states` expansions happen under truncation).
    states: AtomicUsize,
    deduped: AtomicUsize,
    violations: AtomicUsize,
    truncated: AtomicBool,
    /// Wall-clock cut-off (from
    /// [`crate::ExplorerOptions::deadline_ms`], anchored at exploration
    /// start — the adaptive path carries the serial prelude's anchor
    /// over); `None` never expires.
    deadline: Option<Instant>,
    /// Raised by whichever worker observed the deadline expire.
    deadline_exceeded: AtomicBool,
    /// Approximate total frontier occupancy across workers (event
    /// payloads and the `frontier_peak` stat).
    queued: AtomicUsize,
    peak: AtomicUsize,
    steals: AtomicU64,
    steal_fails: AtomicU64,
    /// Worker-id dispenser (the pool hands every invocation the same
    /// closure; each claims a distinct id here).
    next_worker: AtomicUsize,
    steal_seed: u64,
    observers: Mutex<&'obs mut [BoxObserver]>,
}

impl Shared<'_> {
    /// Flag termination and wake every parked worker. Taking the park
    /// lock orders the flag against sleepers' re-check, so none can
    /// park after missing it.
    fn stop_all(&self) {
        self.stop.store(true, Ordering::Release);
        let _park = self.park.lock().unwrap_or_else(PoisonError::into_inner);
        self.work.notify_all();
    }

    /// One expansion finished; the worker that drains `in_flight` to
    /// zero ends the exploration.
    fn finish_state(&self) {
        if self.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.stop_all();
        }
    }

    /// Insert a fingerprint; `false` when already present.
    fn visit(&self, fp: u128) -> bool {
        self.visited[(fp as usize) & (VISITED_SHARDS - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp)
    }

    fn lock_donations(&self, v: usize) -> MutexGuard<'_, Vec<SymState>> {
        self.workers[v]
            .donations
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// SplitMix64: decorrelates worker ids and attempt counters into
/// victim-order rotations.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Everything a parallel exploration starts from. [`ParallelSeed::fresh`]
/// seeds a from-scratch run; the adaptive `--threads 0` path hands over
/// a serial prelude's frontier, visited set, and partial report instead
/// (see [`Explorer::explore_observed`]).
pub(crate) struct ParallelSeed {
    /// The starting frontier (already fingerprinted into `visited`).
    pub(crate) initials: Vec<SymState>,
    /// Fingerprints of every state ever enqueued so far.
    pub(crate) visited: HashSet<u128>,
    /// Stats and violations accumulated before the handover (zeroed
    /// for a fresh run). Counters resume from these values.
    pub(crate) base: Report,
    /// Wall-clock deadline carried into the pool. For a fresh run this
    /// anchors at seed construction; the adaptive handover passes the
    /// serial prelude's anchor so the total budget spans the whole
    /// exploration, not just the parallel tail.
    pub(crate) deadline: Option<Instant>,
}

impl ParallelSeed {
    /// A from-scratch seed: one initial state, empty history.
    pub(crate) fn fresh(explorer: &Explorer<'_>, initial: SymState) -> ParallelSeed {
        let mut visited = HashSet::new();
        if explorer.options.dedup_states {
            visited.insert(initial.fingerprint());
        }
        ParallelSeed {
            initials: vec![initial],
            visited,
            base: Report::default(),
            deadline: explorer.deadline_from_now(),
        }
    }
}

/// Run `explorer`'s exploration of `seed` on `threads` workers.
/// Called by [`Explorer::explore_observed`] when
/// [`crate::ExplorerOptions::threads`] resolves above 1.
pub(crate) fn explore_parallel(
    explorer: &Explorer<'_>,
    seed: ParallelSeed,
    observers: &mut [BoxObserver],
    threads: usize,
) -> Report {
    let options = &explorer.options;
    let ParallelSeed {
        initials,
        visited,
        base,
        deadline,
    } = seed;
    if initials.is_empty() {
        let mut report = base;
        report.stats.threads = threads;
        return report;
    }
    let memo_before = sct_symx::solver_memo_stats();

    let queued0 = initials.len();
    let mut visited_shards: Vec<Mutex<HashSet<u128>>> = (0..VISITED_SHARDS)
        .map(|_| Mutex::new(HashSet::new()))
        .collect();
    for fp in visited {
        visited_shards[(fp as usize) & (VISITED_SHARDS - 1)]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp);
    }
    let shared = Shared {
        workers: (0..threads)
            .map(|_| WorkerSlot {
                donations: Mutex::new(Vec::new()),
            })
            .collect(),
        published: AtomicUsize::new(queued0),
        hungry: AtomicUsize::new(0),
        in_flight: AtomicUsize::new(queued0),
        stop: AtomicBool::new(false),
        park: Mutex::new(()),
        work: Condvar::new(),
        visited: visited_shards,
        states: AtomicUsize::new(base.stats.states),
        deduped: AtomicUsize::new(base.stats.deduped),
        violations: AtomicUsize::new(base.violations.len()),
        truncated: AtomicBool::new(false),
        deadline,
        deadline_exceeded: AtomicBool::new(false),
        queued: AtomicUsize::new(queued0),
        peak: AtomicUsize::new(base.stats.frontier_peak.max(queued0)),
        steals: AtomicU64::new(0),
        steal_fails: AtomicU64::new(0),
        next_worker: AtomicUsize::new(0),
        steal_seed: options.steal_seed,
        observers: Mutex::new(observers),
    };
    // Round-robin the starting frontier across donation buffers: every
    // worker's first sweep reclaims its own share lock-free of others,
    // and an imbalanced split is stolen right back.
    for (i, st) in initials.into_iter().enumerate() {
        shared.lock_donations(i % threads).push(st);
    }

    // One invocation per worker: the calling thread runs one inline,
    // the persistent pool supplies the rest (no per-exploration thread
    // spawns — see `mod pool`). A worker whose expansion panics raises
    // the stop flag so the survivors drain and exit; the panic itself
    // is re-raised by `pool::run` once everything has stopped. An
    // invocation the pool could not start at all needs no accounting —
    // termination counts states, not workers.
    let collected: Mutex<Vec<Report>> = Mutex::new(Vec::with_capacity(threads));
    pool::run(
        threads,
        &|| {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker(explorer, &shared, threads)
            })) {
                Ok(local) => collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(local),
                Err(payload) => {
                    shared.stop_all();
                    std::panic::resume_unwind(payload);
                }
            }
        },
        &|| {},
    );
    let locals = collected.into_inner().unwrap_or_else(PoisonError::into_inner);

    // Merge worker-local reports onto the seed's base report.
    let mut report = base;
    report.stats.strategy = options.strategy.name();
    report.stats.threads = threads;
    report.stats.states = shared.states.load(Ordering::Relaxed);
    report.stats.deduped = shared.deduped.load(Ordering::Relaxed);
    report.stats.truncated |= shared.truncated.load(Ordering::Relaxed);
    report.stats.deadline_exceeded |= shared.deadline_exceeded.load(Ordering::Relaxed);
    report.stats.frontier_peak = shared.peak.load(Ordering::Relaxed);
    report.stats.steals += shared.steals.load(Ordering::Relaxed) as usize;
    report.stats.steal_fails += shared.steal_fails.load(Ordering::Relaxed) as usize;
    let mut first_witness = report
        .stats
        .first_witness_states
        .zip(report.stats.first_witness_depth);
    for local in locals {
        report.stats.schedules += local.stats.schedules;
        report.stats.steps += local.stats.steps;
        report.stats.arena_lock_waits += local.stats.arena_lock_waits;
        report.stats.memo_lock_waits += local.stats.memo_lock_waits;
        report.stats.local_cache_hits += local.stats.local_cache_hits;
        if let (Some(s), Some(d)) = (
            local.stats.first_witness_states,
            local.stats.first_witness_depth,
        ) {
            if first_witness.is_none_or(|(best, _)| s < best) {
                first_witness = Some((s, d));
            }
        }
        report.violations.extend(local.violations);
    }
    if let Some((s, d)) = first_witness {
        report.stats.first_witness_states = Some(s);
        report.stats.first_witness_depth = Some(d);
    }
    // Canonical witness order: workers interleave nondeterministically,
    // but the witness *set* is fixed, so sorting makes parallel output
    // reproducible (serial mode keeps discovery order).
    report.violations.sort_by_cached_key(|v| {
        (
            v.pc,
            v.schedule.to_string(),
            v.observation.to_string(),
            v.trace.len(),
        )
    });

    let memo_after = sct_symx::solver_memo_stats();
    report.stats.solver_queries += (memo_after.queries - memo_before.queries) as usize;
    report.stats.solver_memo_hits += (memo_after.hits - memo_before.hits) as usize;
    report.stats.solver_memo_misses += (memo_after.misses - memo_before.misses) as usize;
    report.stats.solver_memo_evicted += (memo_after.evicted - memo_before.evicted) as usize;
    report
}

/// One worker: pop the private frontier, expand, push successors back
/// privately, donate when peers are hungry, steal when empty. Returns
/// the worker-local report (steps, schedules, violations,
/// first-witness metrics, and this thread's exact lock-wait and
/// cache-hit deltas).
fn worker(explorer: &Explorer<'_>, shared: &Shared<'_>, threads: usize) -> Report {
    let me = shared.next_worker.fetch_add(1, Ordering::Relaxed) % threads;
    let options = &explorer.options;
    let dedup = options.dedup_states;
    let tls_before = sct_symx::thread_stats();
    let mut frontier = options.strategy.frontier();
    let mut attempt = 0u64;
    let mut local = Report::default();
    local.stats.strategy = options.strategy.name();
    let mut sink = SharedSink(&shared.observers);
    let mut util = WorkerUtil::new();
    let mut expand_timer = ExpandTimer::start();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // ----- pop own frontier, else steal (or terminate) -----
        let state = match frontier.pop() {
            Some(s) => s,
            None => {
                match acquire(shared, me, threads, frontier.as_mut(), &mut attempt, &mut util) {
                    Some(s) => {
                        // Steal/park time is the utilization counters'
                        // business, not the next state's span.
                        expand_timer.reset();
                        s
                    }
                    None => break,
                }
            }
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);

        // ----- claim an expansion slot against the budgets -----
        let states_now = loop {
            let expanded = shared.states.load(Ordering::Relaxed);
            let deadline_hit = shared.deadline.is_some_and(|d| Instant::now() >= d);
            if deadline_hit {
                shared.deadline_exceeded.store(true, Ordering::Relaxed);
            }
            if expanded >= options.max_states
                || shared.violations.load(Ordering::Relaxed) >= options.max_violations
                || explorer.is_cancelled()
                || deadline_hit
            {
                shared.truncated.store(true, Ordering::Relaxed);
                shared.stop_all();
                return finish_local(local, &tls_before, &mut util, me);
            }
            if shared
                .states
                .compare_exchange(expanded, expanded + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break expanded + 1;
            }
        };
        // `apply` reads `report.stats.states` for first-witness
        // metrics and violation events: give it the global count at
        // expansion time (the merge recomputes the true total).
        local.stats.states = states_now;
        sink.emit(Event::StateExpanded {
            states: states_now,
            frontier: shared.queued.load(Ordering::Relaxed),
            rob_depth: state.rob.len(),
        });

        // ----- expand -----
        let conts = explorer.continuations(&state);
        if conts.is_empty() {
            local.stats.schedules += 1;
            shared.finish_state();
            util.busy_ns += expand_timer.stamp();
            continue;
        }
        let violations_before = local.violations.len();
        let mut fresh: Vec<SymState> = Vec::new();
        for cont in conts {
            for succ in explorer.apply(&state, &cont, &mut local, &mut sink) {
                if dedup && !shared.visit(succ.fingerprint()) {
                    shared.deduped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                fresh.push(succ);
            }
        }
        let found = local.violations.len() - violations_before;
        if found > 0 {
            shared.violations.fetch_add(found, Ordering::Relaxed);
        }
        if !fresh.is_empty() {
            // Fresh states are in flight *before* this expansion is
            // counted finished — `in_flight` can therefore never dip
            // to zero while work exists.
            shared.in_flight.fetch_add(fresh.len(), Ordering::AcqRel);
            let n = fresh.len();
            for succ in fresh {
                frontier.push(succ);
            }
            let q = shared.queued.fetch_add(n, Ordering::Relaxed) + n;
            shared.peak.fetch_max(q, Ordering::Relaxed);
            if shared.hungry.load(Ordering::Relaxed) > 0 {
                donate(shared, me, frontier.as_mut());
            }
        }
        shared.finish_state();
        util.busy_ns += expand_timer.stamp();
    }
    finish_local(local, &tls_before, &mut util, me)
}

/// Stamp the worker's exact thread-local deltas into its report and
/// publish its utilization counters.
fn finish_local(
    mut local: Report,
    tls_before: &sct_symx::ThreadStats,
    util: &mut WorkerUtil,
    me: usize,
) -> Report {
    let tls = sct_symx::thread_stats().since(tls_before);
    local.stats.arena_lock_waits = tls.arena_lock_waits as usize;
    local.stats.memo_lock_waits = tls.memo_lock_waits as usize;
    local.stats.local_cache_hits = tls.local_cache_hits() as usize;
    util.publish(me);
    sct_symx::flush_thread_telemetry();
    local
}

/// Move half the frontier (capped) into this worker's donation buffer
/// and wake the sleepers. The donor pops, so it donates its
/// *highest-priority* states — the strategy hint travels with the work.
fn donate(shared: &Shared<'_>, me: usize, frontier: &mut dyn SearchStrategy) {
    let len = frontier.len();
    if len < 2 {
        return;
    }
    let give = (len / 2).min(MAX_DONATION);
    let mut batch = Vec::with_capacity(give);
    for _ in 0..give {
        match frontier.pop() {
            Some(s) => batch.push(s),
            None => break,
        }
    }
    if batch.is_empty() {
        return;
    }
    let n = batch.len();
    shared.lock_donations(me).extend(batch);
    // Publish before taking the park lock: a sleeper that already
    // checked `published` is inside `wait` (it held the lock from
    // check to wait), so the notify below cannot be lost; a sleeper
    // that has not yet checked will see the new count.
    shared.published.fetch_add(n, Ordering::AcqRel);
    let _park = shared.park.lock().unwrap_or_else(PoisonError::into_inner);
    shared.work.notify_all();
}

/// Out of local work: sweep the donation buffers (own first, then a
/// seed-rotated victim order), parking between failed sweeps, until a
/// batch lands in `frontier` or the stop flag is raised.
fn acquire(
    shared: &Shared<'_>,
    me: usize,
    threads: usize,
    frontier: &mut dyn SearchStrategy,
    attempt: &mut u64,
    util: &mut WorkerUtil,
) -> Option<SymState> {
    shared.hungry.fetch_add(1, Ordering::Relaxed);
    let got = loop {
        if shared.stop.load(Ordering::Acquire) {
            break None;
        }
        let sweep_start = util.now();
        let found = grab_batch(shared, me, threads, frontier, attempt);
        util.steal_attempt(sweep_start);
        if found {
            match frontier.pop() {
                Some(s) => break Some(s),
                None => continue,
            }
        }
        shared.steal_fails.fetch_add(1, Ordering::Relaxed);
        let park = shared.park.lock().unwrap_or_else(PoisonError::into_inner);
        if shared.stop.load(Ordering::Acquire) || shared.published.load(Ordering::Acquire) > 0 {
            continue;
        }
        let park_start = util.now();
        drop(shared.work.wait(park).unwrap_or_else(PoisonError::into_inner));
        util.parked(park_start);
    };
    shared.hungry.fetch_sub(1, Ordering::Relaxed);
    got
}

/// One sweep over the donation buffers. Takes a whole buffer into
/// `frontier` (re-establishing the strategy order locally) and reports
/// whether anything was found.
fn grab_batch(
    shared: &Shared<'_>,
    me: usize,
    threads: usize,
    frontier: &mut dyn SearchStrategy,
    attempt: &mut u64,
) -> bool {
    let salt = splitmix64(shared.steal_seed ^ ((me as u64) << 32) ^ *attempt);
    *attempt += 1;
    let start = (salt as usize) % threads;
    for k in 0..=threads {
        let v = if k == 0 { me } else { (start + k - 1) % threads };
        if k > 0 && v == me {
            continue;
        }
        let batch = {
            let mut buf = shared.lock_donations(v);
            if buf.is_empty() {
                continue;
            }
            std::mem::take(&mut *buf)
        };
        shared.published.fetch_sub(batch.len(), Ordering::AcqRel);
        if v != me {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        for s in batch {
            frontier.push(s);
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::explorer::{Explorer, ExplorerOptions};
    use crate::report::Verdict;
    use crate::state::SymState;
    use sct_core::examples::fig1;

    fn explore(threads: usize, max_states: usize) -> crate::report::Report {
        let (p, cfg) = fig1();
        let explorer = Explorer::new(
            &p,
            ExplorerOptions {
                threads,
                max_states,
                ..Default::default()
            },
        );
        explorer.explore(SymState::from_config(&cfg))
    }

    #[test]
    fn parallel_matches_serial_on_fig1() {
        let serial = explore(1, 50_000);
        for threads in [2, 4] {
            let par = explore(threads, 50_000);
            assert_eq!(par.verdict(), serial.verdict(), "{threads} threads");
            assert_eq!(par.stats.states, serial.stats.states, "{threads} threads");
            assert_eq!(par.stats.steps, serial.stats.steps, "{threads} threads");
            assert_eq!(par.stats.deduped, serial.stats.deduped, "{threads} threads");
            assert_eq!(par.flagged_pcs(), serial.flagged_pcs(), "{threads} threads");
            assert_eq!(par.stats.threads, threads);
        }
    }

    #[test]
    fn parallel_truncates_at_budget() {
        let par = explore(4, 3);
        assert!(par.stats.truncated);
        assert!(par.stats.states <= 3, "CAS budget: {}", par.stats.states);
        assert!(matches!(par.verdict(), Verdict::Unknown { .. } | Verdict::Insecure { .. }));
    }

    #[test]
    fn steal_seed_rotates_victims_not_results() {
        let baseline = explore(4, 50_000);
        for seed in [1u64, 0xdead_beef, u64::MAX] {
            let (p, cfg) = fig1();
            let explorer = Explorer::new(
                &p,
                ExplorerOptions {
                    threads: 4,
                    steal_seed: seed,
                    ..Default::default()
                },
            );
            let par = explorer.explore(SymState::from_config(&cfg));
            assert_eq!(par.verdict(), baseline.verdict(), "seed {seed:#x}");
            assert_eq!(par.stats.states, baseline.stats.states, "seed {seed:#x}");
            assert_eq!(par.flagged_pcs(), baseline.flagged_pcs(), "seed {seed:#x}");
        }
    }

    // Either message is correct: the caller's inline worker resumes
    // the original payload ("injected observer panic"), a pool worker
    // surfaces as the pool's "exploration worker panicked".
    #[test]
    #[should_panic(expected = "panic")]
    fn worker_panic_propagates_instead_of_hanging() {
        // A panicking observer unwinds one worker mid-expansion. The
        // dying worker raises the stop flag, so the survivors exit and
        // the panic is re-raised here — the failure mode this guards
        // against is an eternal condvar park, which would time the
        // whole suite out rather than fail fast.
        use crate::observe::{BoxObserver, Event};
        let (p, cfg) = fig1();
        let explorer = Explorer::new(
            &p,
            ExplorerOptions {
                threads: 4,
                ..Default::default()
            },
        );
        let mut observers: Vec<BoxObserver> = vec![Box::new(|e: &Event<'_>| {
            if matches!(e, Event::StateExpanded { states: 3, .. }) {
                panic!("injected observer panic");
            }
        })];
        explorer.explore_observed(SymState::from_config(&cfg), &mut observers);
    }

    #[test]
    fn zero_threads_means_auto() {
        // 0 = adaptive: serial until the frontier is wide enough to
        // feed a pool (and always serial on a 1-core host). On any
        // machine this must still produce fig1's violation.
        let report = explore(0, 50_000);
        assert!(report.verdict().is_insecure());
        assert!(report.stats.threads >= 1);
    }
}
