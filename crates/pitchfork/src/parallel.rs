//! The multi-threaded frontier engine behind
//! [`ExplorerOptions::threads`](crate::ExplorerOptions::threads).
//!
//! Exploration at the state level is embarrassingly parallel: each
//! frontier state expands independently, and only three things are
//! shared — the strategy-ordered frontier, the fingerprint visited
//! set, and the process-wide expression arena / solver memo (which
//! `sct-symx` lock-stripes; see its crate docs). This module runs a
//! `std::thread::scope` worker pool over exactly the serial engine's
//! expansion logic ([`Explorer::continuations`] / [`Explorer::apply`]
//! are shared code, not reimplementations):
//!
//! * **Frontier** — one strategy frontier behind a mutex plus a
//!   condvar. Workers pop under the lock, expand without it, and push
//!   fresh successors back in one batch. The [`SearchStrategy`] order
//!   becomes a priority *hint*: each pop still takes the
//!   highest-priority state enqueued so far, but which states have
//!   been enqueued depends on worker timing.
//! * **Visited set** — lock-striped (64 mutexes over `u128`
//!   fingerprints); a successor is claimed by whichever worker inserts
//!   its fingerprint first, so every distinct state is expanded
//!   exactly once, as in serial mode.
//! * **Termination** — a worker finding the frontier empty parks on
//!   the condvar; when the last worker goes idle with an empty
//!   frontier, exploration is complete (no in-flight expansion can
//!   produce more work) and everyone is woken to exit.
//!
//! # Determinism contract
//!
//! With the state budget and violation cap not hit, the set of
//! expanded states is the set of *distinct reachable* states whatever
//! the expansion order, so parallel runs produce the same verdict and
//! the same witness **set** as the serial engine — the equivalence
//! suite pins this over the litmus corpus and the Table 2 case studies
//! for every strategy. What may differ from serial mode (and between
//! parallel runs): the order witnesses are discovered (merged reports
//! sort them canonically), the `first_witness_*` metrics (they record
//! whichever witness a worker reached first), and event interleaving.
//! Under truncation (`max_states` / `max_violations`) the *prefix* of
//! states explored is timing-dependent, exactly as it is
//! order-dependent across strategies.

use crate::explorer::Explorer;
use crate::observe::{BoxObserver, Event, EventSink, SharedSink};
use crate::report::Report;
use crate::state::SymState;
use crate::strategy::SearchStrategy;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A persistent pool of parked worker threads shared by every parallel
/// exploration in the process.
///
/// Spawning OS threads per exploration costs ~50–100µs per thread —
/// more than the *entire* serial exploration of a small litmus program
/// — so a `std::thread::scope` per `explore_parallel` call would make
/// parallelism a net loss on exactly the many-small-programs batch
/// workload it exists to speed up. The pool spawns each worker once,
/// parks it on a condvar between explorations, and hands it scoped
/// jobs; dispatch cost is a condvar wake instead of a thread spawn.
mod pool {
    use std::collections::VecDeque;
    use std::sync::{Condvar, LazyLock, Mutex, MutexGuard, PoisonError};

    /// Completion latch for one `run` call: how many invocations are
    /// still outstanding, and whether any of them panicked.
    struct Latch {
        state: Mutex<(usize, bool)>,
        done: Condvar,
    }

    impl Latch {
        fn complete(&self, panicked: bool) {
            let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            s.0 -= 1;
            s.1 |= panicked;
            if s.0 == 0 {
                // Notified while the lock is held: the waiter can only
                // observe the zero after this thread releases the
                // mutex, after which this thread never touches the
                // latch again — so the waiter may safely destroy it.
                self.done.notify_all();
            }
        }
    }

    /// One erased invocation: a pointer to the caller's job closure
    /// and to its latch.
    ///
    /// # Safety invariant
    ///
    /// Both pointees live on the stack of the `run` call that enqueued
    /// the task, and `run` does not return until the latch has counted
    /// every invocation — so the pointers are valid whenever a worker
    /// dereferences them. This is the same guarantee
    /// `std::thread::scope` provides, rebuilt so the threads
    /// themselves can outlive the scope.
    struct Task {
        job: *const (dyn Fn() + Sync),
        latch: *const Latch,
    }

    // Safety: see `Task` — the pointees outlive every dereference, and
    // the job is `Sync` so any worker thread may call it.
    unsafe impl Send for Task {}

    struct Inner {
        tasks: VecDeque<Task>,
        /// Workers parked on the condvar right now.
        idle: usize,
    }

    struct Pool {
        inner: Mutex<Inner>,
        work: Condvar,
    }

    static POOL: LazyLock<Pool> = LazyLock::new(|| Pool {
        inner: Mutex::new(Inner {
            tasks: VecDeque::new(),
            idle: 0,
        }),
        work: Condvar::new(),
    });

    fn lock() -> MutexGuard<'static, Inner> {
        POOL.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn worker_loop() {
        loop {
            let task = {
                let mut inner = lock();
                loop {
                    if let Some(t) = inner.tasks.pop_front() {
                        break t;
                    }
                    inner.idle += 1;
                    inner = POOL.work.wait(inner).unwrap_or_else(PoisonError::into_inner);
                    inner.idle -= 1;
                }
            };
            // Safety: the enqueuing `run` is still blocked on the
            // latch (see `Task`), so both pointers are live.
            let job = unsafe { &*task.job };
            let latch = unsafe { &*task.latch };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            latch.complete(result.is_err());
        }
    }

    /// Invoke `job` up to `n` times concurrently: once inline on the
    /// calling thread (the caller is a full worker, not a blocked
    /// supervisor) and up to `n - 1` times on pool threads. Every
    /// planned extra invocation that will *not* run — the OS refused a
    /// thread and no parked worker was free — is reported through one
    /// `cancel()` call instead, so the caller's worker accounting can
    /// stop waiting for it.
    ///
    /// Blocks until every started invocation returns — including when
    /// the inline invocation panics (the unwind is caught, the latch
    /// is drained, and only then is the panic resumed), so no worker
    /// can ever dereference the stack-allocated job or latch after
    /// `run` leaves. Panics if any invocation panicked.
    pub(super) fn run(n: usize, job: &(dyn Fn() + Sync), cancel: &(dyn Fn() + Sync)) {
        let extra = n.saturating_sub(1);
        if extra == 0 {
            job();
            return;
        }
        let latch = Latch {
            state: Mutex::new((extra, false)),
            done: Condvar::new(),
        };
        // Safety: purely a lifetime erasure (same type, longer
        // lifetime) — the latch protocol below keeps `job` borrowed
        // for as long as any worker can reach the pointer.
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), _>(job) };
        let slots;
        {
            let mut inner = lock();
            // Capacity = parked workers not already claimed by queued
            // tasks, topped up by spawning (all under one lock, so the
            // arithmetic cannot race another `run`). Workers are never
            // reaped: the pool's high-water mark is the highest
            // concurrent demand, which the daemon bounds by
            // `--jobs × --threads`.
            let free = inner.idle.saturating_sub(inner.tasks.len());
            let mut capacity = free.min(extra);
            while capacity < extra {
                if std::thread::Builder::new()
                    .name("pitchfork-explore".into())
                    .spawn(worker_loop)
                    .is_err()
                {
                    break;
                }
                capacity += 1;
            }
            slots = capacity;
            if slots < extra {
                // No task for these invocations exists yet (nothing is
                // published until the pushes below), so shrinking the
                // latch expectation cannot race a completion.
                latch
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .0 -= extra - slots;
            }
            for _ in 0..slots {
                inner.tasks.push_back(Task {
                    job: erased as *const _,
                    latch: &latch as *const _,
                });
            }
            if slots > 0 {
                POOL.work.notify_all();
            }
        }
        for _ in slots..extra {
            cancel();
        }
        let inline = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        // Wait unconditionally — panicked or not, pool workers may
        // still hold pointers into this stack frame.
        let mut s = latch.state.lock().unwrap_or_else(PoisonError::into_inner);
        while s.0 > 0 {
            s = latch.done.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        let pool_panicked = s.1;
        drop(s);
        match inline {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if pool_panicked => panic!("exploration worker panicked"),
            Ok(()) => {}
        }
    }
}

/// Lock stripes of the visited set (fingerprints spread uniformly, so
/// 64 stripes keep 8 workers essentially collision-free).
const VISITED_SHARDS: usize = 64;

/// The mutex-guarded part of the shared frontier.
struct Frontier {
    queue: Box<dyn SearchStrategy + Send>,
    /// Workers currently parked waiting for work.
    idle: usize,
    /// Workers still participating. Starts at the planned thread count
    /// and drops when a planned worker is cancelled (the pool could
    /// not start it) or dies (its expansion panicked) — termination is
    /// "every *living* worker idle over an empty frontier", so a lost
    /// worker can never strand the survivors on the condvar.
    alive: usize,
    /// Set once: budget hit or frontier drained with all workers idle.
    stop: bool,
    /// Current and peak queue occupancy (the strategy trait exposes
    /// `len`, but tracking it here keeps the event path lock-free).
    len: usize,
    peak: usize,
}

/// Everything the workers share.
struct Shared<'obs> {
    frontier: Mutex<Frontier>,
    work: Condvar,
    visited: Vec<Mutex<HashSet<u128>>>,
    /// States expanded so far (the budget counter; claimed by CAS so
    /// exactly `max_states` expansions happen under truncation).
    states: AtomicUsize,
    deduped: AtomicUsize,
    violations: AtomicUsize,
    truncated: AtomicBool,
    frontier_len: AtomicUsize,
    observers: Mutex<&'obs mut [BoxObserver]>,
}

impl Shared<'_> {
    fn lock_frontier(&self) -> MutexGuard<'_, Frontier> {
        self.frontier.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flag termination and wake every parked worker.
    fn stop_all(&self) {
        self.lock_frontier().stop = true;
        self.work.notify_all();
    }

    /// One planned worker will never (or no longer) participate:
    /// re-run the termination check against the reduced head count so
    /// the survivors are not left waiting for it.
    fn retire_worker(&self) {
        let mut f = self.lock_frontier();
        f.alive = f.alive.saturating_sub(1);
        if f.idle == f.alive && f.len == 0 {
            f.stop = true;
        }
        self.work.notify_all();
    }

    /// Insert a fingerprint; `false` when already present.
    fn visit(&self, fp: u128) -> bool {
        self.visited[(fp as usize) & (VISITED_SHARDS - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp)
    }
}

/// Run `explorer`'s exploration of `initial` on `threads` workers.
/// Called by [`Explorer::explore_observed`] when
/// [`crate::ExplorerOptions::threads`] resolves above 1.
pub(crate) fn explore_parallel(
    explorer: &Explorer<'_>,
    initial: SymState,
    observers: &mut [BoxObserver],
    threads: usize,
) -> Report {
    let options = &explorer.options;
    let memo_before = sct_symx::solver_memo_stats();
    let arena_waits_before = sct_symx::arena_lock_waits();

    let shared = Shared {
        frontier: Mutex::new(Frontier {
            queue: options.strategy.frontier(),
            idle: 0,
            alive: threads,
            stop: false,
            len: 0,
            peak: 0,
        }),
        work: Condvar::new(),
        visited: (0..VISITED_SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        states: AtomicUsize::new(0),
        deduped: AtomicUsize::new(0),
        violations: AtomicUsize::new(0),
        truncated: AtomicBool::new(false),
        frontier_len: AtomicUsize::new(0),
        observers: Mutex::new(observers),
    };
    if options.dedup_states {
        shared.visit(initial.fingerprint());
    }
    {
        let mut f = shared.lock_frontier();
        f.queue.push(initial);
        f.len = 1;
        f.peak = 1;
    }
    shared.frontier_len.store(1, Ordering::Relaxed);

    // One invocation per worker: the calling thread runs one inline,
    // the persistent pool supplies the rest (no per-exploration thread
    // spawns — see `mod pool`). A worker whose expansion panics (or
    // that the pool could not start) retires itself from the head
    // count so the survivors still terminate; the panic itself is
    // re-raised by `pool::run` once everything has stopped.
    let collected: Mutex<Vec<Report>> = Mutex::new(Vec::with_capacity(threads));
    pool::run(
        threads,
        &|| {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker(explorer, &shared)
            })) {
                Ok(local) => collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(local),
                Err(payload) => {
                    shared.retire_worker();
                    std::panic::resume_unwind(payload);
                }
            }
        },
        &|| shared.retire_worker(),
    );
    let locals = collected.into_inner().unwrap_or_else(PoisonError::into_inner);

    // Merge worker-local reports into one.
    let mut report = Report::default();
    report.stats.strategy = options.strategy.name();
    report.stats.threads = threads;
    report.stats.states = shared.states.load(Ordering::Relaxed);
    report.stats.deduped = shared.deduped.load(Ordering::Relaxed);
    report.stats.truncated = shared.truncated.load(Ordering::Relaxed);
    report.stats.frontier_peak = shared.lock_frontier().peak;
    let mut first_witness: Option<(usize, usize)> = None;
    for local in locals {
        report.stats.schedules += local.stats.schedules;
        report.stats.steps += local.stats.steps;
        if let (Some(s), Some(d)) = (
            local.stats.first_witness_states,
            local.stats.first_witness_depth,
        ) {
            if first_witness.is_none_or(|(best, _)| s < best) {
                first_witness = Some((s, d));
            }
        }
        report.violations.extend(local.violations);
    }
    if let Some((s, d)) = first_witness {
        report.stats.first_witness_states = Some(s);
        report.stats.first_witness_depth = Some(d);
    }
    // Canonical witness order: workers interleave nondeterministically,
    // but the witness *set* is fixed, so sorting makes parallel output
    // reproducible (serial mode keeps discovery order).
    report.violations.sort_by_cached_key(|v| {
        (
            v.pc,
            v.schedule.to_string(),
            v.observation.to_string(),
            v.trace.len(),
        )
    });

    let memo_after = sct_symx::solver_memo_stats();
    report.stats.solver_queries = (memo_after.queries - memo_before.queries) as usize;
    report.stats.solver_memo_hits = (memo_after.hits - memo_before.hits) as usize;
    report.stats.solver_memo_misses = (memo_after.misses - memo_before.misses) as usize;
    report.stats.solver_memo_evicted = (memo_after.evicted - memo_before.evicted) as usize;
    report.stats.memo_lock_waits = (memo_after.lock_waits - memo_before.lock_waits) as usize;
    report.stats.arena_lock_waits =
        (sct_symx::arena_lock_waits() - arena_waits_before) as usize;
    report
}

/// One worker: pop under the frontier lock, expand without it, push
/// fresh successors back in a batch. Returns the worker-local report
/// (steps, schedules, violations, first-witness metrics).
fn worker(explorer: &Explorer<'_>, shared: &Shared<'_>) -> Report {
    let options = &explorer.options;
    let dedup = options.dedup_states;
    let mut local = Report::default();
    local.stats.strategy = options.strategy.name();
    let mut sink = SharedSink(&shared.observers);
    loop {
        // ----- pop (or terminate) -----
        let state = {
            let mut f = shared.lock_frontier();
            loop {
                if f.stop {
                    return local;
                }
                if let Some(state) = f.queue.pop() {
                    f.len -= 1;
                    shared.frontier_len.store(f.len, Ordering::Relaxed);
                    break state;
                }
                f.idle += 1;
                if f.idle == f.alive {
                    // Every living worker idle over an empty frontier:
                    // no in-flight expansion exists to refill it. Done.
                    f.stop = true;
                    shared.work.notify_all();
                    return local;
                }
                f = shared.work.wait(f).unwrap_or_else(PoisonError::into_inner);
                f.idle -= 1;
            }
        };

        // ----- claim an expansion slot against the budgets -----
        let states_now = loop {
            let expanded = shared.states.load(Ordering::Relaxed);
            if expanded >= options.max_states
                || shared.violations.load(Ordering::Relaxed) >= options.max_violations
            {
                shared.truncated.store(true, Ordering::Relaxed);
                shared.stop_all();
                return local;
            }
            if shared
                .states
                .compare_exchange(expanded, expanded + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break expanded + 1;
            }
        };
        // `apply` reads `report.stats.states` for first-witness
        // metrics and violation events: give it the global count at
        // expansion time (the merge recomputes the true total).
        local.stats.states = states_now;
        sink.emit(Event::StateExpanded {
            states: states_now,
            frontier: shared.frontier_len.load(Ordering::Relaxed),
            rob_depth: state.rob.len(),
        });

        // ----- expand -----
        let conts = explorer.continuations(&state);
        if conts.is_empty() {
            local.stats.schedules += 1;
            continue;
        }
        let violations_before = local.violations.len();
        let mut fresh: Vec<SymState> = Vec::new();
        for cont in conts {
            for succ in explorer.apply(&state, &cont, &mut local, &mut sink) {
                if dedup && !shared.visit(succ.fingerprint()) {
                    shared.deduped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                fresh.push(succ);
            }
        }
        let found = local.violations.len() - violations_before;
        if found > 0 {
            shared.violations.fetch_add(found, Ordering::Relaxed);
        }
        if !fresh.is_empty() {
            let mut f = shared.lock_frontier();
            for succ in fresh {
                f.queue.push(succ);
                f.len += 1;
            }
            f.peak = f.peak.max(f.len);
            shared.frontier_len.store(f.len, Ordering::Relaxed);
            if f.idle > 0 {
                shared.work.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::explorer::{Explorer, ExplorerOptions};
    use crate::report::Verdict;
    use crate::state::SymState;
    use sct_core::examples::fig1;

    fn explore(threads: usize, max_states: usize) -> crate::report::Report {
        let (p, cfg) = fig1();
        let explorer = Explorer::new(
            &p,
            ExplorerOptions {
                threads,
                max_states,
                ..Default::default()
            },
        );
        explorer.explore(SymState::from_config(&cfg))
    }

    #[test]
    fn parallel_matches_serial_on_fig1() {
        let serial = explore(1, 50_000);
        for threads in [2, 4] {
            let par = explore(threads, 50_000);
            assert_eq!(par.verdict(), serial.verdict(), "{threads} threads");
            assert_eq!(par.stats.states, serial.stats.states, "{threads} threads");
            assert_eq!(par.stats.steps, serial.stats.steps, "{threads} threads");
            assert_eq!(par.stats.deduped, serial.stats.deduped, "{threads} threads");
            assert_eq!(par.flagged_pcs(), serial.flagged_pcs(), "{threads} threads");
            assert_eq!(par.stats.threads, threads);
        }
    }

    #[test]
    fn parallel_truncates_at_budget() {
        let par = explore(4, 3);
        assert!(par.stats.truncated);
        assert!(par.stats.states <= 3, "CAS budget: {}", par.stats.states);
        assert!(matches!(par.verdict(), Verdict::Unknown { .. } | Verdict::Insecure { .. }));
    }

    // Either message is correct: the caller's inline worker resumes
    // the original payload ("injected observer panic"), a pool worker
    // surfaces as the pool's "exploration worker panicked".
    #[test]
    #[should_panic(expected = "panic")]
    fn worker_panic_propagates_instead_of_hanging() {
        // A panicking observer unwinds one worker mid-expansion. The
        // dead worker must retire itself from the head count so the
        // survivors terminate and the panic is re-raised here — the
        // failure mode this guards against is an eternal condvar park,
        // which would time the whole suite out rather than fail fast.
        use crate::observe::{BoxObserver, Event};
        let (p, cfg) = fig1();
        let explorer = Explorer::new(
            &p,
            ExplorerOptions {
                threads: 4,
                ..Default::default()
            },
        );
        let mut observers: Vec<BoxObserver> = vec![Box::new(|e: &Event<'_>| {
            if matches!(e, Event::StateExpanded { states: 3, .. }) {
                panic!("injected observer panic");
            }
        })];
        explorer.explore_observed(SymState::from_config(&cfg), &mut observers);
    }

    #[test]
    fn zero_threads_means_auto() {
        // 0 = one worker per core; on any machine this must still
        // produce fig1's violation.
        let report = explore(0, 50_000);
        assert!(report.verdict().is_insecure());
        assert!(report.stats.threads >= 1);
    }
}
