//! The `pitchfork --serve` daemon: a socket front end over one
//! [`SessionService`], listening on a Unix socket or (fleet mode) a
//! TCP address via [`crate::transport`].
//!
//! std-only, thread-per-connection. A pool of **job worker** threads
//! (size = [`Server::bind_with_workers`]'s `job_workers`, CLI
//! `--jobs K`, default 1) executes queued jobs: each worker takes the
//! service lock only long enough to pop a [`PreparedJob`], runs the
//! analysis with **no lock held** — the expression arena and solver
//! memo are lock-striped process-wide state, so K jobs proceed
//! genuinely in parallel — and re-locks briefly to publish the result.
//! Each accepted connection gets a handler thread speaking the
//! line-delimited JSON protocol of [`crate::protocol`]. `Status` and
//! `Events` are answered from the [`ServiceMonitor`] without touching
//! the service lock, which is what lets a client stream events *while*
//! jobs run; submissions and stats wait only for the short queue-pop /
//! publish critical sections.
//!
//! TCP listeners usually want [`ServerOptions::token`]: clients then
//! authenticate with `Request::Hello` before anything else, and every
//! other request on an unauthenticated connection is rejected.
//!
//! ```no_run
//! use pitchfork::server::Server;
//! use pitchfork::service::SessionService;
//! use pitchfork::AnalysisSession;
//!
//! let session = AnalysisSession::builder().v1_mode(20).build().unwrap();
//! let server = Server::bind("/tmp/pitchfork.sock", SessionService::new(session)).unwrap();
//! server.wait(); // serves until a Shutdown request arrives
//! ```

use crate::journal::Journal;
use crate::protocol::{Request, Response, WireViolation};
use crate::service::{JobId, JobStatus, ServiceMonitor, SessionService};
use crate::transport::{Endpoint, Listener, Stream};
use std::io::{BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the worker sleeps between queue polls when idle, and the
/// event streamer between batches. Wake-ups on submit go through the
/// condvar; this is only the fallback cadence.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Listener-level policy: authentication and per-client limits. The
/// defaults (no token, unlimited submissions) match the pre-fleet
/// daemon exactly.
#[derive(Clone, Debug, Default)]
pub struct ServerOptions {
    /// When set, clients must open with a matching `Request::Hello`
    /// before any other request is honored; a wrong token closes the
    /// connection. When unset, `Hello` is accepted as a no-op so fleet
    /// clients can always send it first.
    pub token: Option<String>,
    /// Submissions allowed per connection (0 = unlimited). Requests
    /// past the quota get `Response::Error` and the connection stays
    /// usable for status/event reads.
    pub max_jobs_per_client: u64,
    /// Write-ahead job journal path (`--serve --journal PATH`). When
    /// set, every submission is journaled before it is acknowledged,
    /// and binding replays the previous life's unfinished jobs: queued
    /// jobs re-enter the queue and interrupted jobs re-run from their
    /// original submit lines. `None` (the default) keeps the pre-journal
    /// in-memory-only behavior.
    pub journal: Option<std::path::PathBuf>,
}

struct Shared {
    service: Mutex<SessionService>,
    work: Condvar,
    shutdown: AtomicBool,
    monitor: ServiceMonitor,
    options: ServerOptions,
    /// Write-ahead job journal (see [`ServerOptions::journal`]).
    /// Locked independently of the service so appends never extend a
    /// job-execution critical section. A failed append is logged and
    /// the daemon continues — durability degrades, service does not.
    journal: Option<Mutex<Journal>>,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, SessionService> {
        self.service.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one journal record through `f`; errors are reported to
    /// stderr, never propagated (a full disk must not take down the
    /// analysis service).
    fn journal_append(&self, f: impl FnOnce(&mut Journal) -> std::io::Result<()>) {
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = f(&mut journal) {
                eprintln!("journal: append failed ({}): {e}", journal.path().display());
            }
        }
    }
}

/// A running daemon: the bound socket, its worker, and its accept loop.
///
/// Dropping the handle does **not** stop the daemon; call
/// [`Server::shutdown`] (or send a `Shutdown` request) and then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    /// The address as actually bound — for TCP with port 0 this is the
    /// assigned port, for Unix the socket path.
    local: String,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `path` (an existing socket file is replaced — a daemon that
    /// crashed leaves one behind) and start serving `service` with one
    /// job worker (jobs execute one at a time, as daemons did before
    /// concurrent execution existed).
    pub fn bind(path: impl AsRef<Path>, service: SessionService) -> std::io::Result<Server> {
        Server::bind_with_workers(path, service, 1)
    }

    /// [`Server::bind`] with a pool of `job_workers` threads executing
    /// queued jobs concurrently (clamped to at least 1). Status reads
    /// and event streams stay correct under concurrency — events are
    /// routed by job id — and epoch retirement is deferred until the
    /// in-flight jobs drain.
    pub fn bind_with_workers(
        path: impl AsRef<Path>,
        service: SessionService,
        job_workers: usize,
    ) -> std::io::Result<Server> {
        Server::bind_endpoint(
            &Endpoint::Unix(path.as_ref().to_path_buf()),
            service,
            job_workers,
            ServerOptions::default(),
        )
    }

    /// The general form: bind a Unix or TCP [`Endpoint`] with
    /// listener-level [`ServerOptions`] (token auth, per-client job
    /// quota). All connection handling, job execution, and protocol
    /// code is shared between the transports.
    pub fn bind_endpoint(
        endpoint: &Endpoint,
        service: SessionService,
        job_workers: usize,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let mut service = service;
        let listener = Listener::bind(endpoint)?;
        // Non-blocking accept: the loop polls the shutdown flag between
        // attempts, so `Shutdown` works without a wake-up connection.
        listener.set_nonblocking(true)?;
        let local = listener.local_display().unwrap_or_else(|| endpoint.display());
        // Journal recovery happens before the first connection can
        // race a submission: unfinished jobs from the previous daemon
        // life re-enter the queue (fresh ids), and the journal is
        // rewritten compacted with just their records.
        let journal = match &options.journal {
            None => None,
            Some(path) => {
                let replay = Journal::replay(path)?;
                let mut journal = Journal::create(path)?;
                let replayed = replay.len() as u64;
                for job in replay {
                    let line = replay_submit_line(&job);
                    let id = match job.baseline {
                        Some(b) => {
                            service.submit_source_with_baseline(job.name, &job.source, job.spec, b)
                        }
                        None => service.submit_source(job.name, &job.source, job.spec),
                    };
                    eprintln!(
                        "journal: replaying job {} as {} ({})",
                        job.old_id,
                        id.as_u64(),
                        if job.interrupted { "interrupted" } else { "queued" },
                    );
                    if let Err(e) = journal.submitted(id.as_u64(), &line) {
                        eprintln!("journal: append failed ({}): {e}", path.display());
                    }
                }
                if replayed > 0 {
                    service.note_replayed(replayed);
                }
                Some(Mutex::new(journal))
            }
        };
        let monitor = service.monitor();
        let shared = Arc::new(Shared {
            service: Mutex::new(service),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            monitor,
            options,
            journal,
        });

        let workers = (0..job_workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pitchfork-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pitchfork-accept".into())
                .spawn(move || accept_loop(listener, &shared))?
        };
        Ok(Server {
            shared,
            endpoint: endpoint.clone(),
            local,
            accept: Some(accept),
            workers,
        })
    }

    /// The address the daemon is serving on: the Unix socket path, or
    /// the TCP address actually bound (`--listen 127.0.0.1:0` reports
    /// the assigned port here).
    pub fn local_addr(&self) -> &str {
        &self.local
    }

    /// Ask the daemon to stop: no new connections; the worker drains
    /// the queue and exits.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
    }

    /// `true` until a `Shutdown` request or [`Server::shutdown`] call.
    pub fn is_running(&self) -> bool {
        !self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the daemon stops, then remove the socket file (Unix
    /// endpoints only; TCP has nothing to clean up).
    pub fn wait(mut self) {
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Rebuild the wire submit line for a replayed job (what gets
/// journaled under its fresh id).
fn replay_submit_line(job: &crate::journal::ReplayJob) -> String {
    match &job.baseline {
        Some(b) => Request::SubmitDiff {
            name: job.name.clone(),
            source: job.source.clone(),
            spec: job.spec.clone(),
            baseline: b.clone(),
        }
        .to_line(),
        None => Request::Submit {
            name: job.name.clone(),
            source: job.source.clone(),
            spec: job.spec.clone(),
        }
        .to_line(),
    }
}

/// One job worker: pop a prepared job under the service lock, run it
/// with no lock held, publish the result. On shutdown the pool drains
/// the queue (and waits out jobs running on sibling workers) before
/// exiting, preserving the "shutdown finishes accepted work" contract.
fn worker_loop(shared: &Shared) {
    loop {
        let prepared = shared.lock().begin_next();
        match prepared {
            Some(job) => {
                let id = job.id().as_u64();
                shared.journal_append(|j| j.started(id));
                // The `worker-death` fault point kills the whole
                // process at the most damaging instant — a job
                // journaled `started` but not `finished` — which is
                // exactly what the journal's replay contract covers.
                if sct_faults::enabled()
                    && sct_faults::should_fire(sct_faults::FaultPoint::WorkerDeath)
                {
                    eprintln!("sct-faults: injected worker death (job {id})");
                    std::process::abort();
                }
                let finished = job.run();
                let mut service = shared.lock();
                service.finish(finished);
                drop(service);
                let status = shared
                    .monitor
                    .status(JobId::from_u64(id))
                    .unwrap_or(JobStatus::Done);
                shared.journal_append(|j| j.finished(id, status.name()));
                // Wake sibling workers (the queue may hold more) and
                // event streamers waiting on terminal status.
                shared.work.notify_all();
            }
            None => {
                let service = shared.lock();
                if shared.shutdown.load(Ordering::SeqCst)
                    && !service.has_pending()
                    && service.in_flight() == 0
                {
                    return;
                }
                let _ = shared
                    .work
                    .wait_timeout(service, IDLE_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("pitchfork-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => {
                // Transient accept failures (EINTR, EMFILE under fd
                // pressure) must not kill the daemon's front door: back
                // off and keep accepting. The loop only exits via the
                // shutdown flag checked above.
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
}

fn write_line(stream: &mut Stream, response: &Response) -> std::io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Build the `Verdicts` response for a job from the monitor's record
/// snapshot — no service lock, so it works mid-run.
fn verdicts_response(monitor: &ServiceMonitor, id: u64) -> Response {
    match monitor.job_record(JobId::from_u64(id)) {
        None => Response::Error {
            message: format!("unknown job {id}"),
        },
        Some(record) => {
            let (verdict, stats, violations) = match &record.report {
                Some(report) => (
                    // A replayed job's synthesized report carries no
                    // witnesses, so the record's replayed verdict — the
                    // baseline's, witnesses and all — wins over the
                    // report's recomputation.
                    Some(record.replayed.unwrap_or_else(|| report.verdict())),
                    Some(report.stats),
                    report.violations.iter().map(WireViolation::from).collect(),
                ),
                None => (None, None, Vec::new()),
            };
            Response::Verdicts {
                id,
                status: record.status,
                verdict,
                stats,
                violations,
                error: record.error,
                elapsed_ms: record.elapsed_ms,
                clamped_states: record.clamped_states,
            }
        }
    }
}

/// Serve one connection until the client hangs up (or the daemon shuts
/// down). Garbage lines get [`Response::Error`] and the connection
/// stays usable; an oversized line ([`crate::protocol::read_line_capped`]
/// bounds buffering, so newline-less floods cost bounded memory, not
/// daemon OOM) gets the error and then the connection closes — the
/// stream is desynced mid-line.
fn handle_connection(stream: Stream, shared: &Arc<Shared>) -> std::io::Result<()> {
    use crate::protocol::{read_line_capped, CappedLine};
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // Per-connection state: authentication (trivially satisfied when
    // no token is configured), submissions so far (the per-client
    // quota's denominator), and the seed-chunk accumulator.
    let mut authed = shared.options.token.is_none();
    let mut submitted: u64 = 0;
    let mut seed_buf: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let line = match read_line_capped(&mut reader)? {
            CappedLine::Line(line) => line,
            CappedLine::Eof => return Ok(()),
            CappedLine::Overflow => {
                write_line(
                    &mut writer,
                    &Response::Error {
                        message: "line exceeds size limit".into(),
                    },
                )?;
                return Ok(());
            }
        };
        let Ok(text) = String::from_utf8(line) else {
            write_line(
                &mut writer,
                &Response::Error {
                    message: "invalid UTF-8".into(),
                },
            )?;
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                write_line(&mut writer, &Response::Error { message: e.to_string() })?;
                continue;
            }
        };
        match request {
            Request::Hello { token } => match &shared.options.token {
                Some(expected) if *expected != token => {
                    // A wrong token closes the connection: fail fast
                    // rather than inviting guesses on a kept-alive
                    // stream.
                    write_line(
                        &mut writer,
                        &Response::Error {
                            message: "invalid token".into(),
                        },
                    )?;
                    return Ok(());
                }
                // Matching token — or no token configured, in which
                // case the handshake is an accepted no-op so fleet
                // clients can always open with it.
                _ => {
                    authed = true;
                    write_line(&mut writer, &Response::Accepted { id: 0 })?;
                }
            },
            _ if !authed => {
                write_line(
                    &mut writer,
                    &Response::Error {
                        message: "authentication required: open with a hello request".into(),
                    },
                )?;
            }
            Request::Submit { name, source, spec } => {
                let quota = shared.options.max_jobs_per_client;
                if quota > 0 && submitted >= quota {
                    write_line(
                        &mut writer,
                        &Response::Error {
                            message: format!("job quota exceeded ({quota} per client)"),
                        },
                    )?;
                    continue;
                }
                submitted += 1;
                let journal_line = shared.journal.is_some().then(|| {
                    Request::Submit {
                        name: name.clone(),
                        source: source.clone(),
                        spec: spec.clone(),
                    }
                    .to_line()
                });
                let id = {
                    let mut service = shared.lock();
                    service.submit_source(name, &source, spec)
                };
                if let Some(line) = journal_line {
                    shared.journal_append(|j| j.submitted(id.as_u64(), &line));
                }
                shared.work.notify_all();
                write_line(&mut writer, &Response::Accepted { id: id.as_u64() })?;
            }
            Request::SubmitDiff {
                name,
                source,
                spec,
                baseline,
            } => {
                let quota = shared.options.max_jobs_per_client;
                if quota > 0 && submitted >= quota {
                    write_line(
                        &mut writer,
                        &Response::Error {
                            message: format!("job quota exceeded ({quota} per client)"),
                        },
                    )?;
                    continue;
                }
                submitted += 1;
                let journal_line = shared.journal.is_some().then(|| {
                    Request::SubmitDiff {
                        name: name.clone(),
                        source: source.clone(),
                        spec: spec.clone(),
                        baseline: baseline.clone(),
                    }
                    .to_line()
                });
                let id = {
                    let mut service = shared.lock();
                    service.submit_source_with_baseline(name, &source, spec, baseline)
                };
                if let Some(line) = journal_line {
                    shared.journal_append(|j| j.submitted(id.as_u64(), &line));
                }
                shared.work.notify_all();
                write_line(&mut writer, &Response::Accepted { id: id.as_u64() })?;
            }
            Request::Cancel { id } => {
                let response = match shared.monitor.request_cancel(JobId::from_u64(id)) {
                    Some(_) => {
                        // Wake the workers: a queued job with the flag
                        // set is reaped (terminal `Cancelled`) at its
                        // next dequeue.
                        shared.work.notify_all();
                        Response::Accepted { id }
                    }
                    None => Response::Error {
                        message: format!("unknown job {id}"),
                    },
                };
                write_line(&mut writer, &response)?;
            }
            Request::Seed { chunk, last } => {
                let response = apply_seed_chunk(shared, &mut seed_buf, &chunk, last);
                write_line(&mut writer, &response)?;
            }
            Request::Status { id } => {
                write_line(&mut writer, &verdicts_response(&shared.monitor, id))?;
            }
            Request::Events { id, since } => {
                stream_events(&mut writer, shared, id, since)?;
            }
            Request::Ping => {
                // Answered on the connection thread with only a brief
                // service-lock hold, so a daemon whose job workers are
                // wedged still pongs — the coordinator's idle-stream
                // timeout, not this probe, is what catches a hung
                // *connection*.
                let (in_flight, queued) = {
                    let service = shared.lock();
                    (service.in_flight() as u64, service.queue_len() as u64)
                };
                write_line(&mut writer, &Response::Pong { in_flight, queued })?;
            }
            Request::Stats => {
                let stats = shared.lock().stats();
                write_line(&mut writer, &Response::Stats { stats })?;
            }
            Request::Metrics => {
                // Service counters under the lock; the metric registry
                // is its own concurrency domain (atomics), so the
                // snapshot needs no service lock.
                let stats = shared.lock().stats();
                let metrics = sct_telemetry::global().snapshot();
                write_line(&mut writer, &Response::Metrics { stats, metrics })?;
            }
            Request::Retire => {
                let response = {
                    let mut service = shared.lock();
                    match service.retire() {
                        Ok(_) => Response::Stats {
                            stats: service.stats(),
                        },
                        Err(e) => Response::Error {
                            message: format!("retire failed: {e}"),
                        },
                    }
                };
                write_line(&mut writer, &response)?;
            }
            Request::Shutdown => {
                let stats = shared.lock().stats();
                write_line(&mut writer, &Response::Stats { stats })?;
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.work.notify_all();
                return Ok(());
            }
        }
    }
}

/// Accumulate one `Seed` chunk; on the final chunk, decode the
/// snapshot and hydrate it into the process arena/memo. Hydration runs
/// under the service lock — imports touch the process-wide arena and
/// solver memo and must not race an epoch retirement. Non-final chunks
/// answer `Seeded{0,0}`; the final chunk answers the import counts (or
/// an error, clearing the accumulator either way).
fn apply_seed_chunk(
    shared: &Shared,
    seed_buf: &mut Vec<u8>,
    chunk: &str,
    last: bool,
) -> Response {
    let bytes = match crate::protocol::hex_decode(chunk) {
        Ok(b) => b,
        Err(e) => {
            seed_buf.clear();
            return Response::Error {
                message: format!("bad seed chunk: {e}"),
            };
        }
    };
    seed_buf.extend_from_slice(&bytes);
    if !last {
        return Response::Seeded {
            nodes: 0,
            verdicts: 0,
        };
    }
    let payload = std::mem::take(seed_buf);
    let snapshot = match sct_cache::Snapshot::decode(&payload) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error {
                message: format!("bad seed snapshot: {e}"),
            }
        }
    };
    let mut service = shared.lock();
    match snapshot.hydrate() {
        Err(e) => Response::Error {
            message: format!("seed import failed: {e}"),
        },
        Ok(stats) => {
            let nodes = stats.arena.added as u64;
            let verdicts = stats.memo.imported as u64;
            service.note_seed(nodes, verdicts);
            if sct_telemetry::enabled() {
                sct_telemetry::counter(sct_telemetry::names::SEED_NODES_ADDED).add(nodes);
                sct_telemetry::counter(sct_telemetry::names::SEED_VERDICTS_IMPORTED)
                    .add(verdicts);
            }
            Response::Seeded { nodes, verdicts }
        }
    }
}

/// Stream a job's events as `EventBatch` lines until the job is
/// terminal and its log drained. Served entirely from the monitor, so
/// batches flow while the worker analyzes.
fn stream_events(
    writer: &mut Stream,
    shared: &Arc<Shared>,
    id: u64,
    since: u64,
) -> std::io::Result<()> {
    let job = JobId::from_u64(id);
    let mut cursor = since as usize;
    loop {
        // Status before events: a job whose status reads terminal has
        // already logged its last event, so the events read that
        // *follows* is guaranteed complete (the reverse order could
        // miss events appended between the two reads).
        let status = shared.monitor.status(job).unwrap_or(JobStatus::Failed);
        let Some((events, next)) = shared.monitor.events_since(job, cursor) else {
            return write_line(
                writer,
                &Response::Error {
                    message: format!("unknown job {id}"),
                },
            );
        };
        let done = status.is_terminal();
        let had_events = !events.is_empty();
        if had_events || done {
            let dropped = shared.monitor.events_dropped(job).unwrap_or(0) as u64;
            write_line(
                writer,
                &Response::EventBatch {
                    id,
                    events,
                    next: next as u64,
                    done,
                    dropped,
                },
            )?;
        }
        if done {
            return Ok(());
        }
        cursor = next;
        if shared.shutdown.load(Ordering::SeqCst) {
            // The daemon is going away; close the stream with a final
            // (possibly empty) terminal batch.
            return write_line(
                writer,
                &Response::EventBatch {
                    id,
                    events: Vec::new(),
                    next: cursor as u64,
                    done: true,
                    dropped: shared.monitor.events_dropped(job).unwrap_or(0) as u64,
                },
            );
        }
        if !had_events {
            std::thread::sleep(IDLE_POLL);
        }
    }
}
