//! # pitchfork
//!
//! A reimplementation of **Pitchfork**, the speculative constant-time
//! violation detector of "Constant-Time Foundations for the New Spectre
//! Era" (Cauligi et al., PLDI 2020, §4), grown into a session-oriented
//! analysis engine over hash-consed symbolic state.
//!
//! # Quickstart
//!
//! Everything goes through one entry point, [`AnalysisSession`]:
//!
//! ```
//! use pitchfork::{AnalysisSession, StrategyKind, Verdict};
//! use sct_core::examples::fig1;
//!
//! let (program, config) = fig1();
//! let mut session = AnalysisSession::builder()
//!     .v1_mode(20)                         // §4.2.1 Spectre v1 mode
//!     .strategy(StrategyKind::DeepestRob)  // frontier order
//!     .build()
//!     .unwrap();
//! let report = session.analyze(&program, &config);
//! assert!(matches!(report.verdict(), Verdict::Insecure { .. }));
//! println!("first witness after {:?} states", report.stats.first_witness_states);
//! ```
//!
//! The session owns every piece of cross-cutting state:
//!
//! * **Options** — detector mode ([`DetectorOptions::v1_mode`] /
//!   [`DetectorOptions::v4_mode`] and the alias/v2 extensions), bounds,
//!   deduplication, and state budgets, set through [`SessionBuilder`];
//! * **Search strategy** — the frontier order is a first-class
//!   [`SearchStrategy`] trait with four built-ins selectable via
//!   [`StrategyKind`] (`lifo`, `fifo`, `deepest-rob`,
//!   `violation-likely`, also the CLI's `--strategy`). Every strategy
//!   reaches the same verdict — the corpus equivalence tests pin this —
//!   but states-to-first-witness differ, which is what matters under a
//!   budget;
//! * **Typed verdicts** — [`Report::verdict`] returns a [`Verdict`]
//!   ([`Verdict::Secure`] / [`Verdict::Insecure`] /
//!   [`Verdict::Unknown`]), and each [`Violation`] carries its witness
//!   path: schedule, trace, program point, and path constraints;
//! * **Event streaming** — [`Observer`]s registered on the builder
//!   receive typed [`Event`]s (state-expanded, violation-found,
//!   item-finished, epoch-retired) as analysis runs; daemon mode
//!   streams these to subscribed clients ([`OwnedEvent`] is the owned,
//!   wire-ready form);
//! * **Cache & epochs** — [`SessionBuilder::cache`] hydrates the
//!   expression arena and solver-verdict memo from an `sct-cache`
//!   snapshot, [`AnalysisSession::save`] persists them, and
//!   [`AnalysisSession::retire`] ends the arena epoch and warm-starts
//!   the next one from the snapshot (the daemon-mode lifecycle);
//! * **Batches** — [`AnalysisSession::run_batch`] drives whole corpora
//!   ([`BatchItem`] per program, per-item bounds and symbolized
//!   registers) through the shared arena and reports aggregate
//!   statistics ([`BatchReport`]).
//!
//! # Daemon mode
//!
//! The session generalizes to a **service**: a [`service::Job`]
//! (program + bounds + options + strategy) submitted to a
//! [`service::SessionService`] that owns one session, a FIFO queue,
//! and the epoch-retire policy ([`service::RetirePolicy`] — snapshot →
//! retire → warm-start every N jobs or M arena nodes). `pitchfork
//! --serve SOCK` puts that service behind a Unix-domain socket
//! ([`server::Server`], thread-per-connection, hand-rolled
//! line-delimited JSON in [`protocol`]) so a **resident daemon**
//! amortizes the hash-consed arena and the solver-verdict memo across
//! submissions, clients, and — via the cache snapshot — restarts.
//!
//! Quickstart: serve, submit the corpus form of Kocher example 1 (the
//! classic Spectre v1 bounds-check-bypass gadget), read the verdict
//! and its event stream:
//!
//! ```text
//! $ pitchfork --serve /tmp/pitchfork.sock --cache /tmp/pitchfork.cache &
//! $ pitchfork submit --connect /tmp/pitchfork.sock --bound 16 --symbolic ra \
//!       crates/litmus/corpus/spectre_v1.sasm
//! crates/litmus/corpus/spectre_v1.sasm: VIOLATION (12 states, 3 schedules explored, strategy lifo)
//!   memo: 5 hits / 11 misses; first witness at Some(4) states
//! $ pitchfork events --connect /tmp/pitchfork.sock --job 1 | tail -2
//! violation-found: read 0x66sec near pc 4 after 4 states
//! item-finished: crates/litmus/corpus/spectre_v1.sasm flagged=true (12 states)
//! $ pitchfork retire --connect /tmp/pitchfork.sock   # snapshot → new epoch → warm start
//! $ pitchfork stats --connect /tmp/pitchfork.sock
//! ```
//!
//! Verdict lines are byte-identical to one-shot mode (CI diffs them);
//! a repeat submission answers with nonzero memo/arena reuse; `Retire`
//! round-trips the epoch without restarting the process. In-process
//! users drive [`service::SessionService`] directly ([`Client`] and
//! the [`protocol`] types are `std`-only, so the daemon needs no
//! dependencies the workspace doesn't vendor).
//!
//! # Fleet mode
//!
//! The daemon also listens on TCP (`--listen HOST:PORT`, same
//! protocol, same verdict bytes — [`transport`] abstracts the two
//! socket families), which turns a set of machines into an analysis
//! **fleet** driven by `pitchfork coordinate`:
//!
//! ```text
//! # one worker per host (or per core locally), sharing a token
//! $ pitchfork --serve --listen 0.0.0.0:7433 --token "$SCT_TOKEN" \
//!       --jobs 2 --client-quota 64 &
//! $ pitchfork --serve --listen 0.0.0.0:7434 --token "$SCT_TOKEN" &
//!
//! # shard a corpus manifest across the workers, warm-starting each
//! # from a shared cache snapshot
//! $ pitchfork coordinate --worker 127.0.0.1:7433 --worker 127.0.0.1:7434 \
//!       --token "$SCT_TOKEN" --seed /tmp/pitchfork.cache \
//!       --bound 16 --symbolic ra crates/litmus/corpus/*.sasm
//! crates/litmus/corpus/spectre_v1.sasm: VIOLATION (12 states, 3 schedules explored, strategy lifo)
//! ...
//! ```
//!
//! The coordinator ([`fleet`]) assigns entries to workers largest-first
//! (size-aware LPT), streams per-worker progress to stderr, and prints
//! merged verdict lines to stdout **in manifest order, byte-identical
//! to a single-process `pitchfork` batch over the same corpus** — CI
//! diffs the two. A worker that dies mid-run has its in-flight and
//! queued shards requeued to the survivors (bounded retries per
//! entry); a worker seeded with a snapshot reports the import as
//! nonzero `seed_nodes_added` / `seed_verdicts_imported` counters in
//! its `pitchfork metrics` scrape.
//!
//! Connections authenticate with [`Request::Hello`] carrying the
//! shared `--token` (tokenless daemons accept the handshake as a
//! no-op; a wrong token closes the connection). `--client-quota N`
//! bounds submissions per connection, per-job
//! [`service::JobSpec::max_states`] budgets are clamped to the
//! daemon's cap (the applied budget surfaces in the job's status as
//! `clamped_states`), and [`Request::Cancel`] stops a queued or
//! running job cooperatively — its status becomes
//! [`service::JobStatus::Cancelled`].
//!
//! # Incremental analysis (CI gate)
//!
//! The [`incremental`] module turns re-analysis of a mostly-unchanged
//! corpus from linear to proportional-to-the-diff. Each entry gets a
//! **fingerprint** ([`incremental::entry_fingerprint`]): a hash of its
//! basic-block partition ([`incremental::block_hashes`]) combined with
//! a [`incremental::config_tag`] over every option that can change a
//! verdict — bound, mode, strategy, budgets, symbolized registers —
//! and deliberately *excluding* `threads` and `steal_seed`, which the
//! determinism contract guarantees never do. A passing run persists a
//! [`BaselineManifest`] (one line-JSON record per entry: fingerprint,
//! verdict, report line, exploration stats) next to a
//! **reachability-pruned** cache snapshot
//! (`sct_cache::save_rooted` keeps only arena nodes reachable from
//! the memoized verdicts, so a months-old baseline doesn't ship every
//! dead expression ever interned; the pruned-vs-unpruned equivalence
//! suite pins that both hydrate to identical verdicts).
//!
//! [`AnalysisSession::analyze_incremental`] diffs a batch against the
//! baseline ([`incremental::plan_entry`] classifies each entry
//! [`EntryPlan::Unchanged`] / [`EntryPlan::Dirty`] / [`EntryPlan::New`]),
//! replays unchanged entries with **zero exploration** — their report
//! lines are carried over byte-for-byte — and re-explores only the
//! rest against the warm memo. The CLI packaging is a CI gate:
//!
//! ```text
//! $ pitchfork ci-gate --baseline .sct-baseline --bound 16 --symbolic ra \
//!       crates/litmus/corpus/*.sasm
//! crates/litmus/corpus/spectre_v1.sasm: VIOLATION (12 states, 3 schedules explored, strategy lifo)
//! ...
//! ci-gate: 23 entries — 22 replayed, 1 re-analyzed; 12 states explored, 374 skipped (96.9%)
//! REGRESSION: crates/litmus/corpus/spectre_v1_fenced.sasm flipped secure (within bound) -> VIOLATION
//! ci-gate: FAIL — 1 regression(s); baseline not promoted
//! ```
//!
//! Exit 0 promotes the refreshed baseline; exit 3 means an entry
//! **flipped to insecure** (new insecure entries don't flip — there is
//! nothing to regress from); exit 2 is an operational error. With
//! `--connect` the same gate runs against a daemon:
//! [`Request::SubmitDiff`] ships each unchanged entry's
//! [`JobBaseline`] alongside the normal submission (on the wire it is
//! a `submit` line with a `baseline` object, so pre-diff daemons just
//! run the job in full), and the daemon recomputes the fingerprint
//! from its *resolved* options before replaying — a stale baseline
//! costs a re-analysis, never a wrong verdict. Replays surface as
//! `incr_reuse_total` / `incr_reanalyzed_total` counters, pruning as
//! `incr_prune_nodes`; `pitchfork metrics --watch N` re-scrapes every
//! N seconds and renders only what moved
//! ([`sct_telemetry::render_delta`]).
//!
//! # Parallel exploration
//!
//! Exploration is embarrassingly parallel at the state level: each
//! frontier state expands independently, and everything shared — the
//! hash-consing expression arena, the solver-verdict memo, the
//! fingerprint visited set — is lock-striped, with a thread-local L1
//! cache in front of the arena and memo so hot-path hits touch no
//! shared lock at all ([`ExploreStats::local_cache_hits`] counts
//! them). Opt in with [`SessionBuilder::parallelism`] (CLI
//! `--threads N`), per job with [`service::JobSpec::threads`], and at
//! the daemon level with `--serve ... --jobs K`, which runs K whole
//! jobs concurrently against the shared arena. Worker threads come
//! from a persistent process-wide pool, so even sub-millisecond
//! explorations pay a condvar wake, not a thread spawn.
//!
//! **The work-stealing engine.** `threads > 1` gives every worker its
//! own private frontier — an instance of the session's
//! [`SearchStrategy`], pushed and popped with no lock — plus a small
//! mutex-guarded *donation buffer* touched only during rebalancing.
//! When a worker runs dry it sweeps the buffers (its own first, then
//! the other workers in a per-worker pseudo-random rotation) and takes
//! a whole batch in one lock acquisition; owners with surplus donate
//! half their frontier (capped) the moment any peer goes hungry.
//! Balanced phases therefore run entirely lock-free on the hot path;
//! the old single mutex-guarded global frontier is gone. Termination
//! is an in-flight state counter — enqueued states count up, finished
//! expansions count down, zero means done — so idle workers park on a
//! condvar and are woken by the next donation. [`ExploreStats::steals`]
//! and [`ExploreStats::steal_fails`] make the rebalancing traffic
//! observable, and [`ExplorerOptions::steal_seed`] perturbs victim
//! order for race-hunting without ever changing results.
//!
//! **Adaptive `--threads 0`.** Zero means *adaptive*: exploration
//! starts on the serial engine and hands the frontier over to one
//! worker per core only if it grows wide enough to pay for the
//! coordination (a few states per core). Litmus-sized programs finish
//! serially at full serial speed; deep v4 explorations spill and use
//! the machine. On a single-core host the engine never spills.
//!
//! **Determinism contract.** `threads = 1` (the default) is the serial
//! engine, byte-for-byte identical to previous releases. For
//! `threads > 1`, with deduplication on and no truncation, the engine
//! expands exactly the serial engine's distinct-state set whatever the
//! steal timing, so the **verdict**, the **witness multiset** (every
//! violation's (pc, observation) pair with its multiplicity), and the
//! order-insensitive statistics (`states`, `steps`, `deduped`) are
//! identical to serial mode — the work-stealing-equivalence suite pins
//! this over the litmus corpus and Table 2 for every strategy at 2/4/8
//! threads (there, with the full schedules too), and a property test
//! hammers the steal/terminate races under randomized victim order.
//! What may differ: which witness is found *first* (`first_witness_*`
//! record whichever a worker reached first; merged violation lists are
//! sorted canonically), event interleaving, the **schedule prefix**
//! naming a witness whose state is reachable along several schedules
//! (which duplicate wins the visited-set insert is timing-dependent —
//! the leak's location and observation never are), and — under a
//! `max_states` / `max_violations` truncation — the explored prefix,
//! exactly as it already differs across strategies.
//! Each worker pops its own frontier in strategy order; *globally* the
//! [`SearchStrategy`] acts as a priority hint, since which states a
//! worker owns depends on donation timing.
//!
//! **When to use it.** Parallelism pays on deep explorations (big
//! programs, high bounds, v4/alias modes) and on multi-core hosts;
//! contention is visible without a profiler via
//! [`ExploreStats::arena_lock_waits`] / `memo_lock_waits` (summed
//! exactly over the exploration's workers) and the daemon's `Stats`
//! response. Single large-batch workloads on few cores are often
//! better served by `--jobs` (parallelism *across* programs) than
//! `--threads` (parallelism *within* one) — or by `--threads 0`,
//! which makes the call per exploration.
//!
//! # Observability
//!
//! Every layer is instrumented through the std-only `sct-telemetry`
//! crate: a process-wide [`sct_telemetry::MetricsRegistry`] of
//! counters, gauges, and log-bucketed latency histograms (fixed
//! power-of-two nanosecond buckets; hot paths record into thread-local
//! buffers that flush in batches, so an observation is an increment,
//! not a lock). The kill switch is the `SCT_TELEMETRY=0` environment
//! variable (or [`sct_telemetry::set_enabled`]); disabled, every span
//! collapses to one relaxed atomic load — the throughput bench gates
//! the enabled overhead under 3%.
//!
//! The registered metric families:
//!
//! | metric | kind | what it times |
//! |---|---|---|
//! | `solver_check_hit_ns` | histogram | satisfiability checks answered by the memo (L1 or stripe) |
//! | `solver_check_miss_ns` | histogram | checks that fell through to the decision procedure |
//! | `state_expand_ns` | histogram | one frontier-state expansion in the explorer |
//! | `steal_attempt_ns` | histogram | one work-stealing sweep in the parallel engine |
//! | `job_queue_wait_ns` | histogram | daemon job: submission → dequeue |
//! | `job_run_ns` | histogram | daemon job: dequeue → verdict |
//! | `job_events_dropped` | counter | events evicted by per-job retention caps |
//! | `worker_busy_ns{worker="i"}` | counter | per-worker time spent expanding states |
//! | `worker_steal_ns{worker="i"}` | counter | per-worker time spent rebalancing |
//! | `worker_parked_ns{worker="i"}` | counter | per-worker time parked on the idle condvar |
//! | `seed_nodes_added` | counter | arena nodes imported from `seed` warm-start snapshots |
//! | `seed_verdicts_imported` | counter | memoised verdicts imported from `seed` snapshots |
//! | `fleet_dispatch_total{worker="i"}` | counter | coordinator: shards dispatched to worker i |
//! | `fleet_retry_total{worker="i"}` | counter | coordinator: shard attempts retried off worker i |
//! | `fleet_shard_ns{worker="i"}` | histogram | coordinator: shard submit → terminal status on worker i |
//! | `fault_injected_total` | counter | faults fired by the `SCT_FAULTS` injection harness |
//! | `job_deadline_exceeded_total` | counter | jobs cut off by their per-job wall-clock deadline |
//! | `journal_replayed_total` | counter | jobs re-submitted from the write-ahead journal on restart |
//! | `cache_quarantined_total` | counter | corrupt snapshot/baseline files renamed aside to `*.bad` |
//!
//! The job-latency histograms (`job_queue_wait_ns`, `job_run_ns`, and
//! the coordinator's `fleet_shard_ns`) carry an **exemplar**: the job
//! id of their maximum observation, rendered as ` max_job=N` on the
//! exposition summary comment, so a p99 spike links straight to a
//! concrete submission.
//!
//! The daemon answers [`Request::Metrics`] with its [`ServiceStats`]
//! plus a full registry snapshot, and `pitchfork metrics --connect
//! SOCK` renders that as Prometheus text exposition
//! ([`sct_telemetry::render_prometheus`]): one `# TYPE` line per
//! family; histograms emit cumulative `_bucket{le="..."}` series, a
//! `_sum`/`_count` pair, and a `# name p50=... p90=... p99=... max=...`
//! summary comment. Per-job latency surfaces as
//! [`ServiceStats::queue_wait_ms_total`] / `run_ms_total` /
//! `jobs_timed`, and per-job wall time as [`JobView::elapsed_ms`]
//! (rendered by `pitchfork status`).
//!
//! `--trace PATH` (one-shot and `--serve`) appends structured JSONL
//! trace records: a manifest-style provenance header first (`ts`,
//! `artifact`, `git_commit`, `host_cpus`, mode and bounds — the same
//! shape as the bench `audit.jsonl` lines), then one object per
//! lifecycle event (`job_submitted`, `job_status`, `violation_found`,
//! `item_finished`, `epoch_retired`, `job_done`) carrying the job id
//! and a monotonic `t_ms` relative to the header. State-expansion
//! events are deliberately *not* traced — at ~10⁵ events/s that
//! belongs in the `state_expand_ns` histogram, not a log file.
//!
//! Event retention is bounded per job: the daemon keeps the first
//! [`service::EVENT_HEAD_RETAIN`] and the most recent
//! [`service::EVENT_TAIL_RETAIN`] events, counts evictions, and
//! reports the per-job `dropped` total on every `Events` response, so
//! a slow subscriber sees *that* it lost mid-run events and exactly
//! how many — never a silently truncated stream.
//!
//! # Robustness & failure model
//!
//! Long-lived daemons and multi-machine fleets fail in ways a one-shot
//! CLI never sees: workers die mid-job, connections stall without
//! closing, cache files arrive truncated or bit-flipped, and a single
//! pathological program can pin a worker forever. The failure model is
//! explicit, and every recovery path preserves the one invariant that
//! matters: **a verdict that is printed is byte-identical to the
//! verdict a clean run would have printed** — degradation costs time,
//! never soundness.
//!
//! * **Per-job deadlines.** [`service::JobSpec::deadline_ms`] (CLI
//!   `--deadline-ms N` on `submit`, `ci-gate`, and `coordinate`) bounds
//!   a job's wall-clock exploration. Both engines check the deadline
//!   cooperatively — the serial engine per frontier pop, the parallel
//!   engine at each budget claim, with the anchor carried across the
//!   adaptive serial→parallel spill — so an expired job stops at a
//!   state boundary with its partial [`ExploreStats`]
//!   (`deadline_exceeded = true` implies `truncated = true`). Its
//!   status becomes [`service::JobStatus::TimedOut`] and its verdict is
//!   [`Verdict::Insecure`] if a violation was already found, otherwise
//!   [`Verdict::Unknown`] — **never** a false `Secure`. The deadline is
//!   deliberately *excluded* from the incremental fingerprint: it
//!   bounds how long an answer may take, not what the answer is.
//! * **Crash-safe job journal.** `--serve --journal PATH` appends a
//!   write-ahead record per lifecycle edge (`submitted` with the full
//!   wire submit line, `started`, `finished`) as line-JSON. On restart
//!   the daemon replays the tail: jobs submitted-but-unfinished are
//!   re-submitted under fresh ids ([`journal`] reuses
//!   [`Request::parse`], so a replayed job is literally the original
//!   submission re-made), torn trailing lines from a mid-write crash
//!   are skipped, and the journal is compacted to just the live jobs.
//!   Replay count surfaces as [`ServiceStats::jobs_replayed`] and the
//!   `journal_replayed_total` counter.
//! * **Heartbeats and read deadlines.** [`Request::Ping`] answers
//!   [`Response::Pong`] with queue depth on the connection thread, so a
//!   pong distinguishes *alive-but-busy* from *wedged*. The coordinator
//!   bounds every read ([`fleet::FleetOptions::read_timeout`], default
//!   30 s — status polls round-trip in milliseconds, so this only needs
//!   to cover network latency, not job runtime) and pings on every
//!   reconnect; a worker that accepts connections but never answers
//!   surfaces as a timed-out read and burns the same per-worker retry
//!   budget as a crash, instead of hanging the run forever.
//! * **Graceful cache degradation.** A snapshot or baseline that fails
//!   validation (truncation, bit flips, version skew) is **quarantined**
//!   — renamed aside to `PATH.bad` ([`sct_cache::quarantine`],
//!   `cache_quarantined_total`) — with a warning to stderr, and the run
//!   continues cold. `ci-gate` treats an unreadable baseline directory
//!   the same way: warn, run the full cold analysis, exit 0/3 on the
//!   verdicts alone, and promote a fresh baseline over the wreckage.
//!   Corruption is an operational hiccup, not a CI outage.
//! * **Deterministic fault injection.** The `sct-faults` crate arms
//!   seeded fault points — `conn-drop`, `read-stall`, `write-stall`,
//!   `partial-write`, `snapshot-bit-flip`, `worker-death` — from the
//!   `SCT_FAULTS` environment variable (e.g.
//!   `SCT_FAULTS="seed=42,conn-drop=at:3,read-stall=every:5"`), fired
//!   inside [`transport`], the server accept loop, and `sct-cache` I/O.
//!   Disarmed (the default) it costs one relaxed atomic load per site.
//!   The `chaos` test suite and the CI `chaos-smoke` leg drive seeded
//!   schedules — killed workers, stalled streams, flipped snapshot
//!   bytes — and assert the merged verdicts stay byte-identical to a
//!   clean run; `fault_injected_total` counts what actually fired.
//!
//! # Compatibility wrappers
//!
//! [`Detector`] and [`BatchAnalyzer`], the pre-session entry points,
//! remain as thin delegating wrappers and are now
//! `#[deprecated]`: `Detector::analyze` is session-analyze with
//! default wiring, `BatchAnalyzer::analyze_all` is
//! [`AnalysisSession::run_batch`]. Their tests keep pinning the
//! delegation; new code should build an [`AnalysisSession`] (or a
//! [`service::SessionService`]).
//!
//! # Engine layers
//!
//! * [`SymMachine`] lifts the reference semantics to symbolic values
//!   ([`sct_symx`]'s interned expressions), forking on symbolic branch
//!   conditions and concretizing addresses angr-style;
//! * [`Explorer`] enumerates the worst-case schedules (Definition
//!   B.18) with an explicit frontier (ordered by the session's
//!   strategy) and a visited set keyed by [`SymState::fingerprint`];
//!   schedules that reconverge on an already-expanded state are pruned,
//!   which is what keeps deep speculation bounds (250 for v1, 20 for
//!   v4) tractable;
//! * [`repair`](crate::repair) inserts fences until the detector is
//!   satisfied.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod client;
pub mod detector;
pub mod explorer;
pub mod fleet;
pub mod incremental;
pub mod journal;
pub mod machine;
pub mod observe;
pub mod parallel;
pub mod protocol;
pub mod repair;
pub mod report;
pub mod server;
pub mod service;
pub mod session;
pub mod state;
pub mod strategy;
pub mod transport;

#[allow(deprecated)]
pub use batch::BatchAnalyzer;
pub use batch::{BatchItem, BatchOutcome, BatchReport, BatchTotals};
pub use client::{Client, ClientError, JobView};
#[allow(deprecated)]
pub use detector::Detector;
pub use detector::DetectorOptions;
pub use explorer::{Explorer, ExplorerOptions};
pub use incremental::{
    BaselineEntry, BaselineManifest, EntryPlan, IncrementalOutcome, IncrementalReport,
};
pub use machine::SymMachine;
pub use observe::{BoxObserver, Event, EventLog, Observer, OwnedEvent};
pub use protocol::{ProtocolError, Request, Response, WireViolation};
pub use repair::{insert_fences, repair, suggest_fences, RepairError, Repaired};
pub use report::{ExploreStats, Report, Verdict, Violation};
pub use server::Server;
pub use service::{
    FinishedJob, Job, JobBaseline, JobId, JobMode, JobRecord, JobSpec, JobStatus, PreparedJob,
    RetirePolicy, ServiceMonitor, ServiceStats, SessionService,
};
pub use session::{AnalysisSession, SessionBuilder};
pub use state::SymState;
pub use strategy::{SearchStrategy, StrategyKind};
