//! # pitchfork
//!
//! A reimplementation of **Pitchfork**, the speculative constant-time
//! violation detector of "Constant-Time Foundations for the New Spectre
//! Era" (Cauligi et al., PLDI 2020, §4), re-architected as a
//! **worklist exploration engine** over hash-consed symbolic state:
//!
//! * [`SymMachine`] lifts the reference semantics to symbolic values
//!   ([`sct_symx`]'s interned expressions), forking on symbolic branch
//!   conditions and concretizing addresses angr-style;
//! * [`Explorer`] enumerates the worst-case schedules (Definition
//!   B.18) with an explicit frontier and a visited set keyed by
//!   [`SymState::fingerprint`] — ROB contents, interned
//!   register/memory expressions, and the path condition. Schedules
//!   that reconverge on an already-expanded state are pruned, which is
//!   what keeps deep speculation bounds (250 for v1, 20 for v4)
//!   tractable: on the Table 2 case studies, v4-mode exploration that
//!   exhausted the seed engine's 50k-state budget completes in a few
//!   hundred distinct states;
//! * [`Detector`] wraps program + configuration into reports;
//!   [`BatchAnalyzer`] runs whole corpora through one configuration and
//!   the shared expression arena, reporting aggregate statistics and
//!   arena reuse;
//! * [`repair`](crate::repair) inserts fences until the detector is
//!   satisfied.
//!
//! Two analysis modes mirror §4.2.1:
//!
//! * [`DetectorOptions::v1_mode`] — Spectre v1/v1.1: store addresses
//!   resolve eagerly; deep speculation bounds stay tractable (the paper
//!   used 250);
//! * [`DetectorOptions::v4_mode`] — Spectre v4: additionally explores
//!   delayed store-address resolution (forwarding hazards), requiring a
//!   reduced bound (the paper used 20).
//!
//! # Example
//!
//! ```
//! use pitchfork::{Detector, DetectorOptions};
//! use sct_core::examples::fig1;
//!
//! let (program, config) = fig1();
//! let report = Detector::new(DetectorOptions::v1_mode(20)).analyze(&program, &config);
//! assert!(report.has_violations(), "Spectre v1 is flagged");
//! println!("{} states, {} duplicates pruned", report.stats.states, report.stats.deduped);
//! ```
//!
//! Batch mode over many programs:
//!
//! ```
//! use pitchfork::{BatchAnalyzer, BatchItem, DetectorOptions};
//! use sct_core::examples::fig1;
//!
//! let (program, config) = fig1();
//! let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(20))
//!     .analyze_all(vec![BatchItem::new("fig1", program, config)]);
//! assert_eq!(batch.totals.flagged, 1);
//! println!("{batch}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod detector;
pub mod explorer;
pub mod machine;
pub mod repair;
pub mod report;
pub mod state;

pub use batch::{BatchAnalyzer, BatchItem, BatchOutcome, BatchReport, BatchTotals};
pub use detector::{Detector, DetectorOptions};
pub use explorer::{Explorer, ExplorerOptions};
pub use machine::SymMachine;
pub use repair::{insert_fences, repair, suggest_fences, RepairError, Repaired};
pub use report::{ExploreStats, Report, Violation};
pub use state::SymState;
