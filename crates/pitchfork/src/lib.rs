//! # pitchfork
//!
//! A reimplementation of **Pitchfork**, the speculative constant-time
//! violation detector of "Constant-Time Foundations for the New Spectre
//! Era" (Cauligi et al., PLDI 2020, §4).
//!
//! Pitchfork generates a set of *worst-case schedules* (Definition
//! B.18) parametrized by a **speculation bound**, and symbolically
//! executes the program under each, flagging any observation that
//! carries a secret label. The schedule set is sound for the fragment
//! the paper's tool exercises: if any schedule leaks, a worst-case
//! schedule leaks (Theorem B.20).
//!
//! Two analysis modes mirror §4.2.1:
//!
//! * [`DetectorOptions::v1_mode`] — Spectre v1/v1.1: store addresses
//!   resolve eagerly; deep speculation bounds stay tractable (the paper
//!   used 250);
//! * [`DetectorOptions::v4_mode`] — Spectre v4: additionally explores
//!   delayed store-address resolution (forwarding hazards), requiring a
//!   reduced bound (the paper used 20).
//!
//! # Example
//!
//! ```
//! use pitchfork::{Detector, DetectorOptions};
//! use sct_core::examples::fig1;
//!
//! let (program, config) = fig1();
//! let report = Detector::new(DetectorOptions::v1_mode(20)).analyze(&program, &config);
//! assert!(report.has_violations(), "Spectre v1 is flagged");
//! for v in &report.violations {
//!     println!("{v}");
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detector;
pub mod explorer;
pub mod machine;
pub mod repair;
pub mod report;
pub mod state;

pub use detector::{Detector, DetectorOptions};
pub use explorer::{Explorer, ExplorerOptions};
pub use machine::SymMachine;
pub use repair::{insert_fences, repair, suggest_fences, RepairError, Repaired};
pub use report::{ExploreStats, Report, Violation};
pub use state::SymState;
