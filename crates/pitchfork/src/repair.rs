//! **Extension**: automatic fence repair.
//!
//! The paper's conclusion names proving countermeasures effective as
//! future work; this module closes the loop mechanically: given a
//! violation report, propose `fence` insertion points, splice them into
//! the program (renumbering program points), and re-analyze until the
//! detector is satisfied.
//!
//! The heuristic mirrors how the Figure 8 mitigation works:
//!
//! * for a violation reached through a mispredicted branch, fence the
//!   *speculatively taken* arm (right at the branch's guessed target);
//! * for a store-bypass (v4) violation with no branch involved, fence
//!   immediately before the load that observed stale memory.

use crate::detector::DetectorOptions;
use crate::session::AnalysisSession;
use crate::report::Report;
use sct_core::{Config, Directive, Instr, Machine, Pc, Program};
use std::collections::BTreeSet;

/// Errors from the repair pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RepairError {
    /// The program contains indirect jumps; renumbering cannot patch
    /// code addresses held in data, so repair refuses.
    HasIndirectJumps,
    /// No insertion point could be derived from the report.
    NoCandidate,
    /// The fence budget was exhausted before the program became clean.
    BudgetExhausted {
        /// Fences inserted before giving up.
        inserted: usize,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::HasIndirectJumps => {
                write!(f, "cannot renumber programs with indirect jumps")
            }
            RepairError::NoCandidate => write!(f, "no fence insertion point derivable"),
            RepairError::BudgetExhausted { inserted } => {
                write!(f, "still leaking after inserting {inserted} fence(s)")
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// Insert a `fence` *before* each program point in `points`,
/// renumbering every later program point and remapping all direct
/// control-flow references.
///
/// # Errors
///
/// [`RepairError::HasIndirectJumps`] when the program contains `jmpi`
/// (their targets are data and cannot be renumbered safely).
pub fn insert_fences(program: &Program, points: &BTreeSet<Pc>) -> Result<Program, RepairError> {
    if program.iter().any(|(_, i)| matches!(i, Instr::Jmpi { .. })) {
        return Err(RepairError::HasIndirectJumps);
    }
    let shift = |p: Pc| -> Pc { p + points.iter().filter(|&&s| s <= p).count() as Pc };
    // Control transfers to an insertion point must enter *through* the
    // fence, which sits one slot before the shifted instruction.
    let target = |p: Pc| -> Pc {
        if points.contains(&p) {
            shift(p) - 1
        } else {
            shift(p)
        }
    };
    let mut out = Program::new();
    out.entry = target(program.entry);
    for (pc, instr) in program.iter() {
        let new_pc = shift(pc);
        if points.contains(&pc) {
            // The fence occupies the slot just before the shifted
            // instruction and falls through to it.
            out.insert(new_pc - 1, Instr::Fence { next: new_pc });
        }
        let remapped = match instr.clone() {
            Instr::Op { dst, op, args, next } => Instr::Op {
                dst,
                op,
                args,
                next: target(next),
            },
            Instr::Load { dst, addr, next } => Instr::Load {
                dst,
                addr,
                next: target(next),
            },
            Instr::Store { src, addr, next } => Instr::Store {
                src,
                addr,
                next: target(next),
            },
            Instr::Fence { next } => Instr::Fence { next: target(next) },
            Instr::Br { op, args, tru, fls } => Instr::Br {
                op,
                args,
                tru: target(tru),
                fls: target(fls),
            },
            Instr::Call { callee, ret } => Instr::Call {
                callee: target(callee),
                ret: target(ret),
            },
            Instr::Ret => Instr::Ret,
            Instr::Jmpi { .. } => unreachable!("rejected above"),
        };
        out.insert(new_pc, remapped);
    }
    Ok(out)
}

/// Derive fence insertion points from a report by replaying each
/// violation's schedule on the reference machine.
pub fn suggest_fences(program: &Program, config: &Config, report: &Report) -> BTreeSet<Pc> {
    let mut points = BTreeSet::new();
    for v in &report.violations {
        if let Some(p) = suggest_for_schedule(program, config, &v.schedule) {
            points.insert(p);
        }
    }
    points
}

/// Replay one violating schedule and pick the insertion point.
fn suggest_for_schedule(
    program: &Program,
    config: &Config,
    schedule: &sct_core::Schedule,
) -> Option<Pc> {
    let mut m = Machine::new(program, config.clone());
    let mut last_branch_target: Option<Pc> = None;
    for d in schedule.iter() {
        // Record where a branch fetch speculates to *before* stepping.
        if let Directive::FetchBranch(taken) = d {
            if let Some(Instr::Br { tru, fls, .. }) = program.fetch(m.cfg.pc) {
                last_branch_target = Some(if taken { *tru } else { *fls });
            }
        }
        // For load executions, remember the load's program point in
        // case this is the leaking step.
        let load_pp = d.target_index().and_then(|i| match m.cfg.rob.get(i) {
            Some(sct_core::transient::Transient::Load { pp, .. }) => Some(*pp),
            _ => None,
        });
        let obs = m.step(d).ok()?;
        if obs.iter().any(|o| o.is_secret()) {
            // Prefer fencing the mispredicted arm; otherwise fence the
            // leaking load itself (v4-style repair).
            return last_branch_target.or(load_pp);
        }
    }
    None
}

/// Outcome of an iterative repair.
#[derive(Clone, Debug)]
pub struct Repaired {
    /// The fenced program.
    pub program: Program,
    /// The insertion points chosen, in original program-point numbering
    /// per round (round-by-round).
    pub rounds: Vec<BTreeSet<Pc>>,
    /// The final (clean) report.
    pub report: Report,
}

/// Iteratively insert fences until the detector reports the program
/// clean, up to `max_rounds`.
///
/// # Errors
///
/// * [`RepairError::HasIndirectJumps`] for programs with `jmpi`;
/// * [`RepairError::NoCandidate`] when a violation yields no insertion
///   point;
/// * [`RepairError::BudgetExhausted`] when `max_rounds` rounds do not
///   suffice.
pub fn repair(
    program: &Program,
    config: &Config,
    options: DetectorOptions,
    max_rounds: usize,
) -> Result<Repaired, RepairError> {
    let mut session = AnalysisSession::with_options(options);
    let mut current = program.clone();
    let mut rounds = Vec::new();
    let mut inserted = 0usize;
    for _ in 0..max_rounds {
        let report = session.analyze(&current, config);
        if !report.has_violations() {
            return Ok(Repaired {
                program: current,
                rounds,
                report,
            });
        }
        let points = suggest_fences(&current, config, &report);
        if points.is_empty() {
            return Err(RepairError::NoCandidate);
        }
        inserted += points.len();
        current = insert_fences(&current, &points)?;
        rounds.push(points);
    }
    let report = session.analyze(&current, config);
    if report.has_violations() {
        Err(RepairError::BudgetExhausted { inserted })
    } else {
        Ok(Repaired {
            program: current,
            rounds,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::examples::fig1;
    use sct_core::sched::sequential::run_sequential;
    use sct_core::Params;

    #[test]
    fn insert_fences_renumbers_consistently() {
        let (p, _) = fig1();
        let points: BTreeSet<Pc> = [2].into_iter().collect();
        let fenced = insert_fences(&p, &points).unwrap();
        // One extra instruction; the branch's true arm now points at
        // the fence's slot... the branch targets shift with the block.
        assert_eq!(fenced.len(), p.len() + 1);
        match fenced.fetch(2) {
            Some(Instr::Fence { next }) => assert_eq!(*next, 3),
            other => panic!("expected fence at 2, got {other:?}"),
        }
        match fenced.fetch(1) {
            Some(Instr::Br { tru, fls, .. }) => {
                // The guarded arm (old 2) enters through the fence at
                // its slot (2); the other arm (old 4) just shifts to 5.
                assert_eq!((*tru, *fls), (2, 5));
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn repair_fixes_fig1_and_preserves_sequential_behaviour() {
        let (p, c) = fig1();
        let repaired = repair(&p, &c, DetectorOptions::v1_mode(20), 4).unwrap();
        assert!(!repaired.report.has_violations());
        assert!(!repaired.rounds.is_empty());
        // Sequential architectural behaviour is unchanged. (Traces are
        // compared modulo renumbering: jump-target observations shift
        // with the inserted fences, data addresses do not.)
        let before = run_sequential(&p, c.clone(), Params::paper(), 10_000).unwrap();
        let after = run_sequential(&repaired.program, c, Params::paper(), 10_000).unwrap();
        assert!(before.config.arch_equivalent(&after.config));
        assert_eq!(before.outcome.trace.len(), after.outcome.trace.len());
        for (x, y) in before.outcome.trace.iter().zip(after.outcome.trace.iter()) {
            use sct_core::Observation::*;
            match (x, y) {
                (Jump { label: la, .. }, Jump { label: lb, .. }) => assert_eq!(la, lb),
                other => assert_eq!(other.0, other.1),
            }
        }
        assert!(after.outcome.trace.is_public());
    }
}
