//! Event streaming: observe an analysis as it runs.
//!
//! An [`Observer`] registered on an [`crate::AnalysisSession`] receives
//! a typed [`Event`] at every interesting transition — a state expanded,
//! a violation found, a batch item finished, an epoch retired. The hook
//! exists so progress can be *streamed* (a future `pitchfork --serve`
//! pushes these events to clients) instead of scraped from reports
//! after the fact; [`EventLog`] is the bundled collector used by tests
//! and simple progress displays.

use crate::report::Violation;

/// One analysis event, borrowed from the engine's state at the moment
/// it happens.
#[derive(Clone, Copy, Debug)]
pub enum Event<'a> {
    /// The explorer popped and expanded a frontier state.
    StateExpanded {
        /// States expanded so far in this exploration (including this
        /// one).
        states: usize,
        /// Frontier occupancy after the expansion.
        frontier: usize,
        /// Reorder-buffer occupancy of the expanded state.
        rob_depth: usize,
    },
    /// A secret-labeled observation was witnessed.
    ViolationFound {
        /// The violation, schedule and trace included.
        violation: &'a Violation,
        /// States expanded when the witness appeared.
        states: usize,
    },
    /// A batch item finished analyzing.
    ItemFinished {
        /// The item's display name.
        name: &'a str,
        /// Whether its report carries violations.
        flagged: bool,
        /// States its exploration expanded.
        states: usize,
    },
    /// The session retired its arena epoch (and, with a cache attached,
    /// warm-started the next epoch from the snapshot).
    EpochRetired {
        /// The arena epoch that just ended.
        epoch: u64,
        /// Nodes rehydrated into the new epoch (0 without a cache).
        rehydrated: usize,
    },
}

/// An [`Event`] copied out of the engine: owned, storable, and
/// wire-ready.
///
/// Borrowed events reference engine state that is gone by the next
/// step; anything that *retains* events — the
/// [`crate::service::SessionService`] job log, the `--serve` event
/// stream — keeps this form instead. The violation payload is reduced
/// to its stable display pieces (program point, rendered observation);
/// the full [`Violation`] stays on the job's report.
/// [`crate::protocol`] serializes this type with stable field names.
#[derive(Clone, Debug, PartialEq)]
pub enum OwnedEvent {
    /// See [`Event::StateExpanded`].
    StateExpanded {
        /// States expanded so far in this exploration.
        states: usize,
        /// Frontier occupancy after the expansion.
        frontier: usize,
        /// Reorder-buffer occupancy of the expanded state.
        rob_depth: usize,
    },
    /// See [`Event::ViolationFound`].
    ViolationFound {
        /// States expanded when the witness appeared.
        states: usize,
        /// Program point of the leak (best-effort attribution).
        pc: u64,
        /// The secret-labeled observation, rendered
        /// (`sct_core::Observation`'s stable display form).
        observation: String,
    },
    /// See [`Event::ItemFinished`].
    ItemFinished {
        /// The item's display name.
        name: String,
        /// Whether its report carries violations.
        flagged: bool,
        /// States its exploration expanded.
        states: usize,
    },
    /// See [`Event::EpochRetired`].
    EpochRetired {
        /// The arena epoch that just ended.
        epoch: u64,
        /// Nodes rehydrated into the new epoch (0 without a cache).
        rehydrated: usize,
    },
}

impl From<&Event<'_>> for OwnedEvent {
    fn from(event: &Event<'_>) -> Self {
        match *event {
            Event::StateExpanded {
                states,
                frontier,
                rob_depth,
            } => OwnedEvent::StateExpanded {
                states,
                frontier,
                rob_depth,
            },
            Event::ViolationFound { violation, states } => OwnedEvent::ViolationFound {
                states,
                pc: violation.pc,
                observation: violation.observation.to_string(),
            },
            Event::ItemFinished {
                name,
                flagged,
                states,
            } => OwnedEvent::ItemFinished {
                name: name.to_string(),
                flagged,
                states,
            },
            Event::EpochRetired { epoch, rehydrated } => {
                OwnedEvent::EpochRetired { epoch, rehydrated }
            }
        }
    }
}

/// A sink for [`Event`]s.
///
/// Observers are owned by the session and invoked synchronously on the
/// analyzing thread; keep handlers cheap (copy the data out, notify a
/// channel) — a slow observer is a slow analysis.
pub trait Observer {
    /// Receive one event.
    fn on_event(&mut self, event: &Event<'_>);
}

/// Every `FnMut` over events is an observer.
impl<F: FnMut(&Event<'_>)> Observer for F {
    fn on_event(&mut self, event: &Event<'_>) {
        self(event)
    }
}

/// The boxed observer form sessions own. `Send` because a daemon
/// ([`crate::server`]) runs its session — observers included — on a
/// worker thread; share state out of an observer with `Arc<Mutex<..>>`.
pub type BoxObserver = Box<dyn Observer + Send>;

/// An aggregating observer: counts per event kind and remembers the
/// first witness, enough for progress lines and assertions without
/// retaining every event.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// `StateExpanded` events seen.
    pub states_expanded: usize,
    /// `ViolationFound` events seen.
    pub violations_found: usize,
    /// `ItemFinished` events seen.
    pub items_finished: usize,
    /// `EpochRetired` events seen.
    pub epochs_retired: usize,
    /// States expanded when the first `ViolationFound` arrived.
    pub first_witness_states: Option<usize>,
    /// Deepest ROB occupancy observed across expansions.
    pub max_rob_depth: usize,
}

impl Observer for EventLog {
    fn on_event(&mut self, event: &Event<'_>) {
        match event {
            Event::StateExpanded { rob_depth, .. } => {
                self.states_expanded += 1;
                self.max_rob_depth = self.max_rob_depth.max(*rob_depth);
            }
            Event::ViolationFound { states, .. } => {
                self.violations_found += 1;
                self.first_witness_states.get_or_insert(*states);
            }
            Event::ItemFinished { .. } => self.items_finished += 1,
            Event::EpochRetired { .. } => self.epochs_retired += 1,
        }
    }
}

/// Fan one event out to every registered observer (the session's
/// internal dispatcher).
pub(crate) fn emit(observers: &mut [BoxObserver], event: Event<'_>) {
    for obs in observers.iter_mut() {
        obs.on_event(&event);
    }
}

/// Where an exploration delivers its events: directly into the
/// observer slice (the serial engine) or through a mutex shared by
/// worker threads (the parallel engine). The indirection keeps the
/// expansion/violation plumbing identical in both engines.
pub(crate) trait EventSink {
    /// Deliver one event.
    fn emit(&mut self, event: Event<'_>);
}

/// The serial engine's sink: no locking, same call path as before the
/// parallel engine existed.
pub(crate) struct DirectSink<'a>(pub &'a mut [BoxObserver]);

impl EventSink for DirectSink<'_> {
    fn emit(&mut self, event: Event<'_>) {
        emit(self.0, event);
    }
}

/// The parallel engine's sink: worker threads serialize on the mutex
/// only for the duration of one observer fan-out.
pub(crate) struct SharedSink<'a, 'b>(pub &'a std::sync::Mutex<&'b mut [BoxObserver]>);

impl EventSink for SharedSink<'_, '_> {
    fn emit(&mut self, event: Event<'_>) {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        emit(&mut guard, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_aggregates() {
        let mut log = EventLog::default();
        log.on_event(&Event::StateExpanded {
            states: 1,
            frontier: 2,
            rob_depth: 5,
        });
        log.on_event(&Event::StateExpanded {
            states: 2,
            frontier: 1,
            rob_depth: 3,
        });
        log.on_event(&Event::EpochRetired {
            epoch: 0,
            rehydrated: 10,
        });
        assert_eq!(log.states_expanded, 2);
        assert_eq!(log.max_rob_depth, 5);
        assert_eq!(log.epochs_retired, 1);
        assert_eq!(log.first_witness_states, None);
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0usize;
        {
            let mut f = |_: &Event<'_>| count += 1;
            f.on_event(&Event::ItemFinished {
                name: "x",
                flagged: false,
                states: 1,
            });
        }
        assert_eq!(count, 1);
    }
}
