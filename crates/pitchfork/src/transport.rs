//! Transport abstraction for the daemon and its clients: one
//! [`Listener`]/[`Stream`] pair covering the original Unix-socket path
//! and the fleet-mode TCP path (`--listen HOST:PORT`).
//!
//! The wire protocol ([`crate::protocol`]) is already byte-oriented and
//! line-delimited, so the only transport-specific surface is binding,
//! accepting, connecting, and cloning a stream for the split
//! reader/writer the connection handler uses. Both `std` socket types
//! implement `Read + Write + try_clone`, so the enums below are thin
//! dispatch wrappers with no buffering of their own.
//!
//! Address syntax (used by `--connect` and the coordinator's worker
//! list): an address containing a `:` whose last segment parses as a
//! port is TCP (`127.0.0.1:7070`, `localhost:7070`); anything else is
//! a Unix socket path (`/tmp/pitchfork.sock`).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// Where a daemon listens: a Unix socket path or a TCP address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// Unix-domain socket at this filesystem path.
    Unix(PathBuf),
    /// TCP socket at this `HOST:PORT` address.
    Tcp(String),
}

impl Endpoint {
    /// Classify an address string: TCP when it looks like `HOST:PORT`
    /// (the text after the last `:` parses as a port), Unix otherwise.
    /// Absolute or relative paths never contain a trailing `:port`
    /// segment in practice, so the rule is unambiguous for every
    /// address this tool ever prints.
    pub fn parse(addr: &str) -> Endpoint {
        match addr.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Endpoint::Tcp(addr.to_string())
            }
            _ => Endpoint::Unix(PathBuf::from(addr)),
        }
    }

    /// The address as the daemon prints it.
    pub fn display(&self) -> String {
        match self {
            Endpoint::Unix(p) => p.display().to_string(),
            Endpoint::Tcp(a) => a.clone(),
        }
    }
}

/// A bound listening socket (Unix or TCP).
pub enum Listener {
    /// Unix-domain listener.
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind `endpoint`. For Unix endpoints a stale socket file from a
    /// dead daemon is removed first (connecting to it would have
    /// failed anyway).
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }

    /// Put the listener in non-blocking accept mode (the accept loop
    /// polls so it can observe shutdown).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Submissions and verdicts are small request/response
                // lines; latency beats batching here.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }

    /// The local address actually bound (lets `--listen 127.0.0.1:0`
    /// report the assigned port).
    pub fn local_display(&self) -> Option<String> {
        match self {
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok().map(|a| a.to_string()),
        }
    }
}

/// One connected byte stream (Unix or TCP), clonable for split
/// reader/writer use.
pub enum Stream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Connect to `addr` (classified by [`Endpoint::parse`]).
    pub fn connect(addr: &str) -> io::Result<Stream> {
        match Endpoint::parse(addr) {
            Endpoint::Unix(path) => Stream::connect_unix(path),
            Endpoint::Tcp(a) => {
                let s = TcpStream::connect(a.as_str())?;
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
        }
    }

    /// Connect to a Unix socket path.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Stream> {
        UnixStream::connect(path).map(Stream::Unix)
    }

    /// An independent handle to the same connection (separate read
    /// cursor state lives in the caller's `BufReader`).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Bound every read on this connection to `timeout` (`None` blocks
    /// forever again). The option is socket-level, so it also governs
    /// reads through handles from [`Stream::try_clone`] — set it once
    /// on either half of a split reader/writer pair. A timed-out read
    /// fails with `WouldBlock`/`TimedOut`, which callers treat as a
    /// dead peer.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// The `conn-drop` / stall fault points guarding one I/O op:
    /// `Some(err)` aborts the op with a simulated peer reset, stalls
    /// sleep in place first. Disarmed injector: one relaxed load.
    fn faults(&self, stall_point: sct_faults::FaultPoint) -> Option<io::Error> {
        if !sct_faults::enabled() {
            return None;
        }
        if sct_faults::should_fire(stall_point) {
            std::thread::sleep(sct_faults::stall());
        }
        if sct_faults::should_fire(sct_faults::FaultPoint::ConnDrop) {
            return Some(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection drop (sct-faults)",
            ));
        }
        None
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(e) = self.faults(sct_faults::FaultPoint::ReadStall) {
            return Err(e);
        }
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(e) = self.faults(sct_faults::FaultPoint::WriteStall) {
            return Err(e);
        }
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_classify_unambiguously() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7070"),
            Endpoint::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            Endpoint::parse("localhost:0"),
            Endpoint::Tcp("localhost:0".into())
        );
        assert_eq!(
            Endpoint::parse("/tmp/pitchfork.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/pitchfork.sock"))
        );
        // A colon without a numeric port stays a path.
        assert_eq!(
            Endpoint::parse("/tmp/odd:name.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/odd:name.sock"))
        );
        assert_eq!(
            Endpoint::parse("relative.sock"),
            Endpoint::Unix(PathBuf::from("relative.sock"))
        );
    }

    #[test]
    fn tcp_listener_reports_assigned_port() {
        let l = Listener::bind(&Endpoint::parse("127.0.0.1:0")).unwrap();
        let addr = l.local_display().unwrap();
        assert!(addr.starts_with("127.0.0.1:"));
        assert_ne!(addr, "127.0.0.1:0");
    }

    #[test]
    fn tcp_round_trips_a_line() {
        let l = Listener::bind(&Endpoint::parse("127.0.0.1:0")).unwrap();
        let addr = l.local_display().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = Stream::connect(&addr).unwrap();
            s.write_all(b"ping\n").unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            buf
        });
        let mut conn = l.accept().unwrap();
        let mut byte = [0u8; 5];
        conn.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"ping\n");
        conn.write_all(b"pong\n").unwrap();
        drop(conn);
        assert_eq!(t.join().unwrap(), "pong\n");
    }
}
