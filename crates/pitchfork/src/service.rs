//! The service-oriented job model: submit programs as [`Job`]s, run
//! them FIFO through one long-lived [`crate::AnalysisSession`], and
//! read back typed results, events, and service statistics.
//!
//! [`SessionService`] is the in-process form of the daemon: it owns the
//! session, the request queue, and the epoch-retire policy
//! ([`RetirePolicy`] — retire + warm-start every N jobs or at M arena
//! nodes), and every future transport plugs into it —
//! [`crate::server`] wraps one in a mutex behind a Unix socket, the
//! examples drive one directly. Where [`AnalysisSession::analyze`]
//! answers synchronously, the service answers in job lifecycle terms:
//! [`JobStatus::Queued`] → [`JobStatus::Running`] → [`JobStatus::Done`]
//! (or [`JobStatus::Failed`]), with an [`OwnedEvent`] log per job that
//! a server can stream while the job runs.
//!
//! ```
//! use pitchfork::service::{Job, SessionService};
//! use pitchfork::AnalysisSession;
//! use sct_core::examples::fig1;
//!
//! let session = AnalysisSession::builder().v1_mode(16).build().unwrap();
//! let mut service = SessionService::new(session);
//! let (program, config) = fig1();
//! let id = service.submit(Job::new("fig1", program, config));
//! service.run_pending();
//! let record = service.record(id).unwrap();
//! assert!(record.report.as_ref().unwrap().verdict().is_insecure());
//! ```

use crate::detector::DetectorOptions;
use crate::explorer::Explorer;
use crate::incremental::{block_hashes, config_tag, entry_fingerprint};
use crate::observe::{BoxObserver, Event, OwnedEvent};
use crate::report::{Report, Verdict};
use crate::session::AnalysisSession;
use crate::state::SymState;
use crate::strategy::StrategyKind;
use sct_core::{Config, Program, Reg};
use sct_telemetry::TraceValue;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, LazyLock, Mutex, PoisonError};
use std::time::Instant;

static QUEUE_WAIT_HIST: LazyLock<&'static sct_telemetry::Histogram> =
    LazyLock::new(|| sct_telemetry::histogram(sct_telemetry::names::JOB_QUEUE_WAIT));
static RUN_HIST: LazyLock<&'static sct_telemetry::Histogram> =
    LazyLock::new(|| sct_telemetry::histogram(sct_telemetry::names::JOB_RUN));
static EVENTS_DROPPED_CTR: LazyLock<&'static sct_telemetry::Counter> =
    LazyLock::new(|| sct_telemetry::counter(sct_telemetry::names::EVENTS_DROPPED));

/// A service-assigned job identifier, unique within one
/// [`SessionService`] (and one daemon): the handle every status, event,
/// and verdict request names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(u64);

impl JobId {
    /// The wire form (protocol messages carry the bare number).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild an id received over the wire.
    pub fn from_u64(id: u64) -> JobId {
        JobId(id)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// The session is analyzing it now.
    Running,
    /// Finished; the record holds a [`Report`].
    Done,
    /// Rejected or aborted; the record holds an error message.
    Failed,
    /// Stopped by a `Cancel` request: either reaped from the queue
    /// before running, or stopped cooperatively mid-exploration (the
    /// record then holds the truncated partial report).
    Cancelled,
    /// The job's wall-clock deadline ([`JobSpec::deadline_ms`]) expired
    /// mid-exploration; the record holds the truncated partial report
    /// (verdict `Unknown` unless violations were already found).
    TimedOut,
}

impl JobStatus {
    /// The stable wire name (`queued`, `running`, `done`, `failed`,
    /// `cancelled`, `timed-out`).
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed-out",
        }
    }

    /// Parse a wire name (the inverse of [`JobStatus::name`]).
    pub fn parse(name: &str) -> Option<JobStatus> {
        [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
            JobStatus::TimedOut,
        ]
        .into_iter()
        .find(|s| s.name() == name)
    }

    /// `true` once the job will never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled | JobStatus::TimedOut
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// The detector mode a job runs under — the typed form of the CLI's
/// mode flags, with stable wire names.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JobMode {
    /// Spectre v1/v1.1 (no forwarding hazards).
    #[default]
    V1,
    /// Spectre v4 (forwarding hazards).
    V4,
    /// Aliasing-predictor extension.
    Alias,
    /// Spectre v2 (mistrained indirect jumps) extension.
    V2,
}

impl JobMode {
    /// The stable wire name (`v1`, `v4`, `alias`, `v2`).
    pub fn name(self) -> &'static str {
        match self {
            JobMode::V1 => "v1",
            JobMode::V4 => "v4",
            JobMode::Alias => "alias",
            JobMode::V2 => "v2",
        }
    }

    /// Parse a wire name (the inverse of [`JobMode::name`]).
    pub fn parse(name: &str) -> Option<JobMode> {
        [JobMode::V1, JobMode::V4, JobMode::Alias, JobMode::V2]
            .into_iter()
            .find(|m| m.name() == name.trim())
    }

    /// The detector options this mode denotes at `bound`.
    pub fn options(self, bound: usize) -> DetectorOptions {
        match self {
            JobMode::V1 => DetectorOptions::v1_mode(bound),
            JobMode::V4 => DetectorOptions::v4_mode(bound),
            JobMode::Alias => DetectorOptions::alias_mode(bound),
            JobMode::V2 => DetectorOptions::v2_mode(bound),
        }
    }
}

impl fmt::Display for JobMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// Per-job analysis options: mode, bound, frontier order, worker
/// threads, and symbolized registers. `None` (or 0 for `threads`)
/// fields inherit the session's setting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSpec {
    /// Detector mode.
    pub mode: JobMode,
    /// Speculation-bound override (`None` = the session's bound).
    pub bound: Option<usize>,
    /// Frontier-order override (`None` = the session's strategy).
    pub strategy: Option<StrategyKind>,
    /// Worker threads for this job's exploration (0 = the session's
    /// setting; 1 = serial; n = n-thread frontier — the wire form of
    /// `--threads`).
    pub threads: usize,
    /// Per-job state-budget override (`None` = the daemon's default).
    /// A request above the daemon's own budget is clamped down to it,
    /// and the clamp is surfaced on the job's record rather than
    /// applied silently.
    pub max_states: Option<usize>,
    /// Per-job wall-clock deadline in milliseconds, measured from the
    /// moment exploration starts (queue wait does not count). `None`
    /// never times out. Enforced cooperatively at the engines' stop
    /// points; an expired job lands in [`JobStatus::TimedOut`] with
    /// its truncated partial report.
    pub deadline_ms: Option<u64>,
    /// Registers replaced by fresh symbolic inputs.
    pub symbolic: Vec<Reg>,
}

/// A baseline verdict summary attached to a submission
/// (`Request::SubmitDiff`): when the submitted program and resolved
/// options still fingerprint to [`JobBaseline::fingerprint`], the
/// daemon **replays** the recorded verdict without exploring anything —
/// the diff-aware fast path of the incremental CI gate. A fingerprint
/// mismatch (the entry changed, or client and daemon resolve options
/// differently) falls back to a full analysis, so a stale baseline can
/// cost time but never correctness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobBaseline {
    /// [`crate::incremental::entry_fingerprint`] the verdict was
    /// computed under.
    pub fingerprint: u64,
    /// The baseline verdict to replay on a match.
    pub verdict: Verdict,
    /// States the baseline exploration expanded.
    pub states: usize,
    /// Complete schedules the baseline exploration ran.
    pub schedules: usize,
    /// The frontier order the baseline ran under.
    pub strategy: String,
    /// Whether the baseline exploration hit its budget.
    pub truncated: bool,
}

impl JobBaseline {
    /// A [`Report`] standing in for the skipped exploration: the
    /// baseline's statistics with no recomputed witnesses. The typed
    /// verdict still comes from [`JobBaseline::verdict`] (a record's
    /// `replayed` field), never from this report — an insecure
    /// baseline's witnesses are not re-derived.
    fn synthesized_report(&self) -> Report {
        Report {
            violations: Vec::new(),
            stats: crate::report::ExploreStats {
                strategy: StrategyKind::parse(&self.strategy)
                    .map(|s| s.name())
                    .unwrap_or("unknown"),
                states: self.states,
                schedules: self.schedules,
                truncated: self.truncated,
                ..Default::default()
            },
        }
    }
}

/// One unit of work: a program, its initial configuration, and the
/// options to analyze it under.
#[derive(Clone, Debug)]
pub struct Job {
    /// Display name (file name, corpus entry, ...).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
    /// Analysis options.
    pub spec: JobSpec,
    /// Baseline verdict summary: when present and the fingerprint still
    /// matches, the job replays instead of exploring.
    pub baseline: Option<JobBaseline>,
}

impl Job {
    /// A job with default options (the session's mode and bound).
    pub fn new(name: impl Into<String>, program: Program, config: Config) -> Job {
        Job {
            name: name.into(),
            program,
            config,
            spec: JobSpec::default(),
            baseline: None,
        }
    }

    /// A job with explicit options.
    pub fn with_spec(
        name: impl Into<String>,
        program: Program,
        config: Config,
        spec: JobSpec,
    ) -> Job {
        Job {
            name: name.into(),
            program,
            config,
            spec,
            baseline: None,
        }
    }

    /// The same job carrying a baseline verdict summary (see
    /// [`JobBaseline`]).
    pub fn with_baseline(mut self, baseline: JobBaseline) -> Job {
        self.baseline = Some(baseline);
        self
    }

    /// Assemble a job from `.sasm` source text — the form jobs arrive
    /// in over the wire (`Request::Submit` carries source, not
    /// structs). Errors render the assembler diagnostic.
    pub fn from_source(
        name: impl Into<String>,
        source: &str,
        spec: JobSpec,
    ) -> Result<Job, sct_asm::AsmError> {
        let asm = sct_asm::assemble(source)?;
        Ok(Job {
            name: name.into(),
            program: asm.program,
            config: asm.config,
            spec,
            baseline: None,
        })
    }
}

/// A snapshot of what a job has produced so far: its lifecycle state,
/// and the report or error once terminal.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job's display name.
    pub name: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The analysis report, once [`JobStatus::Done`].
    pub report: Option<Report>,
    /// The failure message, once [`JobStatus::Failed`].
    pub error: Option<String>,
    /// Wall-clock milliseconds the job has been (or was) executing:
    /// live and growing while [`JobStatus::Running`], frozen at the
    /// final run time once terminal. `None` for queued jobs and for
    /// submissions that failed before running.
    pub elapsed_ms: Option<u64>,
    /// The state budget actually applied when the job's requested
    /// `max_states` exceeded the daemon's cap and was clamped down;
    /// `None` when no clamp happened.
    pub clamped_states: Option<u64>,
    /// The baseline verdict replayed for this job (see [`JobBaseline`]);
    /// `None` for jobs that actually explored. When present, this — not
    /// the synthesized report — is the job's verdict.
    pub replayed: Option<Verdict>,
}

/// When the service retires the session's arena epoch (save snapshot →
/// retire → warm-start; see [`AnalysisSession::retire`]). Both triggers
/// are checked after each job; `None` disables a trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetirePolicy {
    /// Retire after this many completed jobs since the last retirement.
    pub every_jobs: Option<usize>,
    /// Retire once the process arena holds at least this many nodes.
    pub max_arena_nodes: Option<usize>,
}

impl RetirePolicy {
    /// Retirement disabled (explicit [`SessionService::retire`] calls
    /// and `Retire` requests still work).
    pub fn never() -> RetirePolicy {
        RetirePolicy::default()
    }

    /// Retire every `jobs` completed jobs.
    pub fn every_jobs(jobs: usize) -> RetirePolicy {
        RetirePolicy {
            every_jobs: Some(jobs),
            max_arena_nodes: None,
        }
    }

    fn due(&self, jobs_since: usize, arena_nodes: usize) -> bool {
        self.every_jobs.is_some_and(|n| jobs_since >= n.max(1))
            || self.max_arena_nodes.is_some_and(|n| arena_nodes >= n)
    }
}

/// Aggregate service counters — the payload of the wire `Stats`
/// response, flat and `Copy` so it serializes stably.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs ever submitted (accepted or failed at submission).
    pub jobs_submitted: u64,
    /// Jobs finished with a report.
    pub jobs_done: u64,
    /// Jobs failed (submission rejects included).
    pub jobs_failed: u64,
    /// Jobs currently queued (running job excluded).
    pub queued: u64,
    /// Arena epochs retired by this service's session.
    pub epochs_retired: u64,
    /// Jobs completed since the last retirement.
    pub jobs_since_retire: u64,
    /// Live expression-arena nodes.
    pub arena_nodes: u64,
    /// Current arena epoch.
    pub arena_epoch: u64,
    /// Verdicts currently memoized.
    pub memo_entries: u64,
    /// The verdict-memo capacity cap.
    pub memo_capacity: u64,
    /// Cumulative memo hits (process-wide).
    pub memo_hits: u64,
    /// Cumulative memo misses (process-wide).
    pub memo_misses: u64,
    /// Cumulative memo evictions by the capacity guard.
    pub memo_evicted: u64,
    /// Cumulative memo entries dropped as stale.
    pub memo_stale_dropped: u64,
    /// Nodes the most recent retirement warm-started (0 when cold).
    pub last_reload_nodes: u64,
    /// Verdicts the most recent retirement warm-started.
    pub last_reload_verdicts: u64,
    /// Jobs currently executing (0 or 1 on a single-worker daemon;
    /// up to `--jobs K` under concurrent execution).
    pub in_flight: u64,
    /// Cumulative contended interner-lock acquisitions (process-wide;
    /// the shard-contention signal for concurrent jobs and parallel
    /// frontiers).
    pub arena_lock_waits: u64,
    /// Cumulative contended solver-memo-lock acquisitions.
    pub memo_lock_waits: u64,
    /// Cross-worker batch steals summed over every finished job's
    /// report (exact per-job attribution — concurrent jobs each roll
    /// up their own workers' counters, unlike the process-wide
    /// lock-wait gauges above).
    pub steals: u64,
    /// Failed steal sweeps (worker parked) summed over finished jobs.
    pub steal_fails: u64,
    /// Thread-local L1 cache hits (interner + verdict memo) summed
    /// over finished jobs.
    pub local_cache_hits: u64,
    /// Milliseconds jobs spent queued before execution, summed over
    /// finished jobs.
    pub queue_wait_ms_total: u64,
    /// Milliseconds jobs spent executing, summed over finished jobs.
    pub run_ms_total: u64,
    /// Jobs contributing to the two totals above (failed submissions
    /// never run, so this can trail `jobs_submitted`).
    pub jobs_timed: u64,
    /// Events lost to the per-job retention cap, summed over all jobs.
    pub events_dropped: u64,
    /// Jobs stopped by a `Cancel` request (reaped from the queue or
    /// stopped cooperatively mid-run).
    pub jobs_cancelled: u64,
    /// Jobs whose requested per-job state budget exceeded the daemon's
    /// cap and was clamped down to it.
    pub budget_clamped_jobs: u64,
    /// Arena nodes added by `Seed` snapshot imports (warm-start
    /// shipping from a fleet coordinator).
    pub seed_nodes_added: u64,
    /// Solver verdicts imported by `Seed` snapshot imports.
    pub seed_verdicts_imported: u64,
    /// Jobs whose wall-clock deadline ([`JobSpec::deadline_ms`])
    /// expired mid-exploration.
    pub jobs_timed_out: u64,
    /// Jobs re-submitted from the write-ahead journal on daemon
    /// restart (see `--journal`).
    pub jobs_replayed: u64,
}

/// Cap on retained events per job: one event per expanded state adds
/// up, and the daemon is resident. An over-cap log keeps its **first
/// [`EVENT_HEAD_RETAIN`] and last [`EVENT_TAIL_RETAIN`] events** —
/// the head shows how the job started, the tail always contains the
/// most recent activity and the terminal `ItemFinished` — and counts
/// the dropped middle ([`ServiceMonitor::events_dropped`], surfaced in
/// `Events` responses), so cursors stay monotonic and streams still
/// close cleanly.
pub const MAX_EVENTS_PER_JOB: usize = 100_000;

/// Oldest events kept per job (the head of a first/last-N split log).
pub const EVENT_HEAD_RETAIN: usize = MAX_EVENTS_PER_JOB / 2;

/// Newest events kept per job (the tail ring of a first/last-N split
/// log; always ends at the most recent event).
pub const EVENT_TAIL_RETAIN: usize = MAX_EVENTS_PER_JOB - EVENT_HEAD_RETAIN;

/// Cap on retained job records. When exceeded, the oldest *terminal*
/// records are dropped (their ids then answer "unknown job") — queued
/// and running jobs are never evicted. Together with
/// [`MAX_EVENTS_PER_JOB`] this bounds monitor *growth* per job and the
/// job count; it is not a hard aggregate byte budget (4k retained
/// reports of large analyses are still real memory — size the caps to
/// the deployment, or retire records faster via a smaller cap).
pub const MAX_RETAINED_JOBS: usize = 4_096;

/// Per-job shared state: the record fields plus the first/last-N
/// split event log. Virtual event indices run `0..total_events()`;
/// indices `head.len()..head.len()+events_dropped` name the evicted
/// middle and yield nothing.
struct JobEntry {
    name: String,
    status: JobStatus,
    report: Option<Report>,
    error: Option<String>,
    /// The first [`EVENT_HEAD_RETAIN`] events, in order.
    head: Vec<OwnedEvent>,
    /// The last up-to-[`EVENT_TAIL_RETAIN`] events after the head
    /// filled, in order (a ring: overflow evicts the front).
    tail: VecDeque<OwnedEvent>,
    /// Events evicted from between head and tail.
    events_dropped: usize,
    /// When the job flipped to [`JobStatus::Running`].
    started_at: Option<Instant>,
    /// Final run time, stamped when the job turns terminal.
    elapsed_ms: Option<u64>,
    /// Cooperative cancellation flag, shared with the explorer's state
    /// loop while the job runs. Set by `Cancel` requests; a queued job
    /// with the flag set is reaped without running.
    cancel: Arc<AtomicBool>,
    /// Budget actually applied when the requested `max_states` was
    /// clamped to the daemon cap (`None` = no clamp).
    clamped_states: Option<u64>,
    /// The baseline verdict this job replayed instead of exploring
    /// (`None` for jobs that actually ran).
    replayed: Option<Verdict>,
}

impl JobEntry {
    /// Events ever appended (retained or dropped) — the cursor space.
    fn total_events(&self) -> usize {
        self.head.len() + self.events_dropped + self.tail.len()
    }
}

struct MonitorInner {
    jobs: BTreeMap<u64, JobEntry>,
    /// The job currently analyzing (events are appended to it).
    current: Option<u64>,
    /// Events outside any job (epoch retirements between jobs).
    service_events: Vec<OwnedEvent>,
    /// Events lost to per-job retention, summed over every job
    /// (retained *and* already-evicted records).
    events_dropped_total: u64,
    /// Structured trace sink: when set, job lifecycle transitions and
    /// non-`StateExpanded` events append JSONL records (expansions are
    /// far too hot to trace per event; their latencies go to the
    /// `state_expand_ns` histogram instead).
    trace: Option<Arc<sct_telemetry::TraceWriter>>,
}

/// A cheap, clonable view of job records and event logs — the
/// authoritative store for everything a job *produces*.
///
/// The monitor exists so a server can answer `Status` and stream
/// `Events` **while a job is running**: the worker holds the
/// [`SessionService`] itself for the duration of an analysis, but the
/// monitor is only locked for the microseconds an event append or a
/// record read takes.
#[derive(Clone)]
pub struct ServiceMonitor {
    inner: Arc<Mutex<MonitorInner>>,
}

impl ServiceMonitor {
    fn new() -> ServiceMonitor {
        ServiceMonitor {
            inner: Arc::new(Mutex::new(MonitorInner {
                jobs: BTreeMap::new(),
                current: None,
                service_events: Vec::new(),
                events_dropped_total: 0,
                trace: None,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MonitorInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attach a structured trace sink: from now on, job lifecycle
    /// transitions and every non-`StateExpanded` event append JSONL
    /// records (see the crate-level Observability docs for the
    /// schema).
    pub fn set_trace(&self, trace: Arc<sct_telemetry::TraceWriter>) {
        self.lock().trace = Some(trace);
    }

    fn add_job(&self, id: JobId, name: String, status: JobStatus, error: Option<String>) {
        let mut inner = self.lock();
        // Retention bound: evict the oldest terminal records first (ids
        // are monotonic, so BTreeMap order is age order). Live jobs are
        // never evicted.
        while inner.jobs.len() >= MAX_RETAINED_JOBS {
            let Some((&oldest, _)) = inner
                .jobs
                .iter()
                .find(|(_, j)| j.status.is_terminal())
            else {
                break;
            };
            inner.jobs.remove(&oldest);
        }
        if let Some(t) = &inner.trace {
            t.record(
                Some(id.as_u64()),
                "job_submitted",
                &[
                    ("name", TraceValue::Str(name.clone())),
                    ("status", TraceValue::Str(status.name().to_string())),
                ],
            );
        }
        inner.jobs.insert(
            id.as_u64(),
            JobEntry {
                name,
                status,
                report: None,
                error,
                head: Vec::new(),
                tail: VecDeque::new(),
                events_dropped: 0,
                started_at: None,
                elapsed_ms: None,
                cancel: Arc::new(AtomicBool::new(false)),
                clamped_states: None,
                replayed: None,
            },
        );
    }

    /// Mark a job as replayed from a baseline: the stored verdict wins
    /// over the (synthesized) report's when records are read.
    fn note_replay(&self, id: JobId, verdict: Verdict) {
        let mut inner = self.lock();
        if let Some(t) = &inner.trace {
            t.record(
                Some(id.as_u64()),
                "job_replayed",
                &[("verdict", TraceValue::Str(verdict.to_string()))],
            );
        }
        if let Some(j) = inner.jobs.get_mut(&id.as_u64()) {
            j.replayed = Some(verdict);
        }
    }

    fn set_status(&self, id: JobId, status: JobStatus) {
        let mut inner = self.lock();
        if let Some(t) = &inner.trace {
            t.record(
                Some(id.as_u64()),
                "job_status",
                &[("status", TraceValue::Str(status.name().to_string()))],
            );
        }
        if let Some(j) = inner.jobs.get_mut(&id.as_u64()) {
            j.status = status;
            if status == JobStatus::Running && j.started_at.is_none() {
                j.started_at = Some(Instant::now());
            }
        }
    }

    fn finish(&self, id: JobId, report: Report, status: JobStatus) {
        let mut inner = self.lock();
        let MonitorInner { jobs, trace, .. } = &mut *inner;
        if let Some(j) = jobs.get_mut(&id.as_u64()) {
            j.status = status;
            j.elapsed_ms = j
                .elapsed_ms
                .or_else(|| j.started_at.map(|t| t.elapsed().as_millis() as u64));
            if let Some(t) = trace {
                t.record(
                    Some(id.as_u64()),
                    match status {
                        JobStatus::Cancelled => "job_cancelled",
                        JobStatus::TimedOut => "job_timed_out",
                        _ => "job_done",
                    },
                    &[
                        ("states", TraceValue::U64(report.stats.states as u64)),
                        ("flagged", TraceValue::Bool(report.has_violations())),
                    ],
                );
            }
            j.report = Some(report);
        }
    }

    /// Request cancellation: sets the job's cooperative flag (observed
    /// by the explorer's state loop, and by the queue when the job has
    /// not started). Returns the job's status at request time; `None`
    /// for unknown ids. Terminal jobs are left untouched (the request
    /// is an idempotent no-op).
    pub fn request_cancel(&self, id: JobId) -> Option<JobStatus> {
        let mut inner = self.lock();
        let trace_rec = inner.trace.clone();
        let j = inner.jobs.get_mut(&id.as_u64())?;
        let status = j.status;
        if !status.is_terminal() {
            j.cancel.store(true, Ordering::Release);
            if let Some(t) = &trace_rec {
                t.record(
                    Some(id.as_u64()),
                    "job_cancel_requested",
                    &[("status", TraceValue::Str(status.name().to_string()))],
                );
            }
        }
        Some(status)
    }

    /// The job's cooperative cancellation flag (`None` for unknown
    /// ids) — handed to the explorer while the job runs.
    fn cancel_handle(&self, id: JobId) -> Option<Arc<AtomicBool>> {
        self.lock().jobs.get(&id.as_u64()).map(|j| j.cancel.clone())
    }

    /// Finalize a job reaped from the queue by a cancellation request:
    /// it never ran, so it turns terminal with no report.
    fn finish_unrun_cancelled(&self, id: JobId) {
        let mut inner = self.lock();
        if let Some(t) = &inner.trace {
            t.record(Some(id.as_u64()), "job_cancelled", &[]);
        }
        if let Some(j) = inner.jobs.get_mut(&id.as_u64()) {
            j.status = JobStatus::Cancelled;
        }
    }

    /// Record that a job's requested state budget was clamped down to
    /// `applied` (the daemon's cap).
    fn note_clamp(&self, id: JobId, applied: u64) {
        if let Some(j) = self.lock().jobs.get_mut(&id.as_u64()) {
            j.clamped_states = Some(applied);
        }
    }

    fn set_current(&self, id: Option<JobId>) {
        self.lock().current = id.map(JobId::as_u64);
    }

    fn record_event(&self, event: OwnedEvent) {
        let mut inner = self.lock();
        match inner.current {
            Some(id) => Self::push_event(&mut inner, id, event),
            None => {
                Self::trace_event(&inner.trace, None, &event);
                if inner.service_events.len() < MAX_EVENTS_PER_JOB {
                    inner.service_events.push(event);
                }
            }
        }
    }

    /// Append an event to an explicit job's log — the routing used by
    /// concurrent job execution, where several jobs stream at once and
    /// a single `current` pointer cannot attribute events.
    fn record_event_for(&self, id: JobId, event: OwnedEvent) {
        let mut inner = self.lock();
        Self::push_event(&mut inner, id.as_u64(), event);
    }

    /// Mirror a non-`StateExpanded` event into the trace sink, if one
    /// is attached. Expansions are the per-state hot path — tracing
    /// them would dominate the file and the analysis; the
    /// `state_expand_ns` histogram covers their timing.
    fn trace_event(
        trace: &Option<Arc<sct_telemetry::TraceWriter>>,
        job: Option<u64>,
        event: &OwnedEvent,
    ) {
        let Some(t) = trace else { return };
        match event {
            OwnedEvent::StateExpanded { .. } => {}
            OwnedEvent::ViolationFound {
                states,
                pc,
                observation,
            } => t.record(
                job,
                "violation_found",
                &[
                    ("states", TraceValue::U64(*states as u64)),
                    ("pc", TraceValue::U64(*pc)),
                    ("observation", TraceValue::Str(observation.clone())),
                ],
            ),
            OwnedEvent::ItemFinished {
                name,
                flagged,
                states,
            } => t.record(
                job,
                "item_finished",
                &[
                    ("name", TraceValue::Str(name.clone())),
                    ("flagged", TraceValue::Bool(*flagged)),
                    ("states", TraceValue::U64(*states as u64)),
                ],
            ),
            OwnedEvent::EpochRetired { epoch, rehydrated } => t.record(
                job,
                "epoch_retired",
                &[
                    ("epoch", TraceValue::U64(*epoch)),
                    ("rehydrated", TraceValue::U64(*rehydrated as u64)),
                ],
            ),
        }
    }

    fn push_event(inner: &mut MonitorInner, id: u64, event: OwnedEvent) {
        Self::trace_event(&inner.trace, Some(id), &event);
        let MonitorInner {
            jobs,
            events_dropped_total,
            ..
        } = inner;
        if let Some(j) = jobs.get_mut(&id) {
            // First/last-N retention: the head keeps the log's start,
            // the tail ring always holds the newest events (the
            // terminal `ItemFinished` included), and the evicted
            // middle is counted instead of stored.
            if j.head.len() < EVENT_HEAD_RETAIN && j.tail.is_empty() {
                j.head.push(event);
            } else {
                j.tail.push_back(event);
                if j.tail.len() > EVENT_TAIL_RETAIN {
                    j.tail.pop_front();
                    j.events_dropped += 1;
                    *events_dropped_total += 1;
                    if sct_telemetry::enabled() {
                        EVENTS_DROPPED_CTR.inc();
                    }
                }
            }
        }
    }

    /// The mirrored status of a job (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.lock().jobs.get(&id.as_u64()).map(|j| j.status)
    }

    /// A snapshot of a job's record (`None` for unknown ids).
    pub fn job_record(&self, id: JobId) -> Option<JobRecord> {
        let inner = self.lock();
        let j = inner.jobs.get(&id.as_u64())?;
        let elapsed_ms = match j.status {
            JobStatus::Running => j.started_at.map(|t| t.elapsed().as_millis() as u64),
            _ => j.elapsed_ms,
        };
        Some(JobRecord {
            name: j.name.clone(),
            status: j.status,
            report: j.report.clone(),
            error: j.error.clone(),
            elapsed_ms,
            clamped_states: j.clamped_states,
            replayed: j.replayed,
        })
    }

    /// Events logged for a job from virtual index `since` on, together
    /// with the next cursor. `None` for unknown ids; an empty batch
    /// means nothing new yet. Cursors index the *full* event sequence
    /// (dropped middle included), so they stay monotonic across
    /// retention eviction; a cursor pointing into the evicted gap
    /// resumes at the retained tail.
    pub fn events_since(&self, id: JobId, since: usize) -> Option<(Vec<OwnedEvent>, usize)> {
        let inner = self.lock();
        let j = inner.jobs.get(&id.as_u64())?;
        let tail_start = j.head.len() + j.events_dropped;
        let mut out = Vec::new();
        if since < j.head.len() {
            out.extend_from_slice(&j.head[since..]);
        }
        let skip = since.saturating_sub(tail_start).min(j.tail.len());
        out.extend(j.tail.iter().skip(skip).cloned());
        Some((out, j.total_events()))
    }

    /// Events logged for a job so far (dropped middle included — this
    /// is the cursor space's upper bound, not the retained count).
    pub fn event_count(&self, id: JobId) -> Option<usize> {
        self.lock().jobs.get(&id.as_u64()).map(|j| j.total_events())
    }

    /// Events a job lost to the first/last-N retention cap (0 for
    /// ordinary jobs).
    pub fn events_dropped(&self, id: JobId) -> Option<usize> {
        self.lock().jobs.get(&id.as_u64()).map(|j| j.events_dropped)
    }

    /// Events lost to per-job retention summed over every job this
    /// monitor ever tracked (survives job-record eviction).
    pub fn events_dropped_total(&self) -> u64 {
        self.lock().events_dropped_total
    }

    /// Service-level events (epoch retirements between jobs) from index
    /// `since` on, with the next cursor.
    pub fn service_events_since(&self, since: usize) -> (Vec<OwnedEvent>, usize) {
        let inner = self.lock();
        let start = since.min(inner.service_events.len());
        (
            inner.service_events[start..].to_vec(),
            inner.service_events.len(),
        )
    }
}

/// A dequeued job, self-contained and ready to execute **off the
/// service lock**: resolved detector options (session defaults with
/// the job's overrides applied), the program, and a monitor handle
/// that streams events under the job's own id. Produced by
/// [`SessionService::begin_next`]; consumed by [`PreparedJob::run`];
/// the result returns to the service via [`SessionService::finish`].
pub struct PreparedJob {
    id: JobId,
    name: String,
    program: Program,
    config: Config,
    symbolic: Vec<Reg>,
    options: DetectorOptions,
    monitor: ServiceMonitor,
    /// Cooperative cancellation flag shared with the monitor's record:
    /// the explorer polls it in its state loop.
    cancel: Arc<AtomicBool>,
    /// Time spent queued (submission → dequeue), for the service's
    /// job-latency accounting.
    queue_wait_ns: u64,
}

impl PreparedJob {
    /// The job's id (handed out at submission).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The resolved options the job will run under.
    pub fn options(&self) -> &DetectorOptions {
        &self.options
    }

    /// Execute the analysis. Needs no lock on the service: events
    /// stream straight into the monitor under this job's id (several
    /// running jobs interleave their logs correctly), and the shared
    /// expression arena / solver memo are internally lock-striped.
    pub fn run(self) -> FinishedJob {
        let monitor = self.monitor.clone();
        let id = self.id;
        let mut observers: Vec<BoxObserver> = vec![Box::new(move |e: &Event<'_>| {
            monitor.record_event_for(id, OwnedEvent::from(e));
        })];
        let started = Instant::now();
        let explorer =
            Explorer::with_params(&self.program, self.options.params, self.options.explorer)
                .with_cancel(self.cancel.clone());
        let initial = if self.symbolic.is_empty() {
            SymState::from_config(&self.config)
        } else {
            SymState::from_config_symbolizing(&self.config, &self.symbolic)
        };
        let report = explorer.explore_observed(initial, &mut observers);
        // Publish this thread's buffered latency spans so a metrics
        // scrape right after the job sees them (parallel explorations
        // already publish per worker at join).
        sct_symx::flush_thread_telemetry();
        let timed_out = report.stats.deadline_exceeded;
        FinishedJob {
            id: self.id,
            name: self.name,
            report,
            cancelled: self.cancel.load(Ordering::Acquire),
            timed_out,
            queue_wait_ns: self.queue_wait_ns,
            run_ns: sct_telemetry::saturating_ns(started.elapsed()),
        }
    }
}

/// A completed [`PreparedJob`]: pass to [`SessionService::finish`] to
/// publish the report and apply lifecycle bookkeeping.
pub struct FinishedJob {
    id: JobId,
    name: String,
    report: Report,
    /// The cancellation flag was set while (or before) the job ran:
    /// the record turns [`JobStatus::Cancelled`] with the truncated
    /// partial report attached.
    cancelled: bool,
    /// The job's wall-clock deadline expired mid-run: the record turns
    /// [`JobStatus::TimedOut`] with the truncated partial report
    /// attached (an explicit `Cancel` wins when both raced).
    timed_out: bool,
    queue_wait_ns: u64,
    run_ns: u64,
}

impl FinishedJob {
    /// The finished job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The analysis report about to be published.
    pub fn report(&self) -> &Report {
        &self.report
    }
}

/// A long-lived analysis service: one [`AnalysisSession`], a FIFO job
/// queue, and the epoch-retire policy.
///
/// Two execution styles ship. The classic serial loop —
/// [`SessionService::submit`] enqueues, [`SessionService::run_next`] /
/// [`SessionService::run_pending`] execute through the owned session —
/// and **bounded concurrent execution**: [`SessionService::begin_next`]
/// pops a self-contained [`PreparedJob`] that runs off the service
/// lock, so K transport workers analyze K jobs simultaneously against
/// the lock-striped arena/memo ([`SessionService::run_concurrent`] is
/// the in-process form; [`crate::server`] spawns `--jobs K` worker
/// threads). Epoch retirement — the one operation that must be alone —
/// is deferred until the in-flight count drains.
pub struct SessionService {
    session: AnalysisSession,
    monitor: ServiceMonitor,
    /// FIFO queue; the `Instant` is the submission time, for
    /// queue-wait latency accounting.
    queue: VecDeque<(JobId, Job, Instant)>,
    next_id: u64,
    policy: RetirePolicy,
    jobs_since_retire: usize,
    jobs_done: u64,
    jobs_failed: u64,
    jobs_submitted: u64,
    /// Jobs begun via [`SessionService::begin_next`] and not yet
    /// finished — the guard that keeps epoch retirement (which
    /// invalidates every live `ExprRef`) from running under a job.
    in_flight: usize,
    /// A retirement became due (policy or explicit request) while jobs
    /// were in flight; applied when the last one finishes.
    retire_deferred: bool,
    last_reload: Option<sct_cache::LoadStats>,
    last_retire_error: Option<String>,
    /// Work-stealing counters rolled up from every finished job's
    /// report (`run_next` and `finish` both feed these, so jobs run
    /// concurrently off the service lock are attributed exactly
    /// rather than sampled from a process-wide gauge at quiesce).
    job_steals: u64,
    job_steal_fails: u64,
    job_local_cache_hits: u64,
    /// Job-latency roll-ups (the wire `Stats` v4 field group): total
    /// queue wait, total run time, and how many jobs they cover.
    queue_wait_ms_total: u64,
    run_ms_total: u64,
    jobs_timed: u64,
    /// Jobs stopped by cancellation (queued reaps + mid-run stops).
    jobs_cancelled: u64,
    /// Jobs whose requested state budget was clamped to the daemon cap.
    budget_clamped_jobs: u64,
    /// Arena nodes / verdicts imported by `Seed` snapshot requests
    /// (fleet warm-start), reported by the transport via
    /// [`SessionService::note_seed`].
    seed_nodes_added: u64,
    seed_verdicts_imported: u64,
    /// Jobs whose wall-clock deadline expired mid-run.
    jobs_timed_out: u64,
    /// Jobs re-submitted from the write-ahead journal on restart.
    jobs_replayed: u64,
}

impl SessionService {
    /// A service over `session` with retirement disabled.
    pub fn new(session: AnalysisSession) -> SessionService {
        SessionService::with_policy(session, RetirePolicy::never())
    }

    /// A service over `session` retiring per `policy`.
    pub fn with_policy(mut session: AnalysisSession, policy: RetirePolicy) -> SessionService {
        let monitor = ServiceMonitor::new();
        let tap = monitor.clone();
        session.observe(Box::new(move |e: &Event<'_>| {
            tap.record_event(OwnedEvent::from(e))
        }));
        SessionService {
            session,
            monitor,
            queue: VecDeque::new(),
            next_id: 1,
            policy,
            jobs_since_retire: 0,
            jobs_done: 0,
            jobs_failed: 0,
            jobs_submitted: 0,
            in_flight: 0,
            retire_deferred: false,
            last_reload: None,
            last_retire_error: None,
            job_steals: 0,
            job_steal_fails: 0,
            job_local_cache_hits: 0,
            queue_wait_ms_total: 0,
            run_ms_total: 0,
            jobs_timed: 0,
            jobs_cancelled: 0,
            budget_clamped_jobs: 0,
            seed_nodes_added: 0,
            seed_verdicts_imported: 0,
            jobs_timed_out: 0,
            jobs_replayed: 0,
        }
    }

    /// Record a snapshot import performed by the transport on behalf
    /// of this service (fleet warm-start shipping): the counts land in
    /// [`ServiceStats`] so a scraped worker shows its warm start.
    pub fn note_seed(&mut self, nodes: u64, verdicts: u64) {
        self.seed_nodes_added += nodes;
        self.seed_verdicts_imported += verdicts;
    }

    /// Count one deadline expiry (stats counter + telemetry family).
    fn note_timeout(&mut self) {
        self.jobs_timed_out += 1;
        if sct_telemetry::enabled() {
            sct_telemetry::counter(sct_telemetry::names::JOB_DEADLINE_EXCEEDED).inc();
        }
    }

    /// Count jobs re-submitted from the daemon's write-ahead journal
    /// on restart (reported by [`crate::server`] after replay).
    pub fn note_replayed(&mut self, jobs: u64) {
        self.jobs_replayed += jobs;
        if sct_telemetry::enabled() {
            sct_telemetry::counter(sct_telemetry::names::JOURNAL_REPLAYED).add(jobs);
        }
    }

    /// Roll one finished job's latencies into the service totals and —
    /// when telemetry is on — the `job_queue_wait_ns` / `job_run_ns`
    /// histograms, tagged with the job id so a latency spike's exemplar
    /// names a concrete submission (jobs are low-rate; no thread-local
    /// buffering needed).
    fn note_job_timing(&mut self, id: JobId, queue_wait_ns: u64, run_ns: u64) {
        self.queue_wait_ms_total += queue_wait_ns / 1_000_000;
        self.run_ms_total += run_ns / 1_000_000;
        self.jobs_timed += 1;
        if sct_telemetry::enabled() {
            QUEUE_WAIT_HIST.observe_ns_tagged(queue_wait_ns, id.as_u64());
            RUN_HIST.observe_ns_tagged(run_ns, id.as_u64());
        }
    }

    /// Finalize a job answered from its submitted baseline without
    /// exploring: records the replayed verdict (which wins over the
    /// synthesized report's), the terminal `ItemFinished` event, and
    /// the usual timing/counter bookkeeping. Replays do no arena work,
    /// so they don't advance the retire policy's job counter.
    fn finalize_replay(&mut self, id: JobId, name: &str, b: &JobBaseline, queue_wait_ns: u64) {
        let report = b.synthesized_report();
        self.jobs_done += 1;
        self.note_job_timing(id, queue_wait_ns, 0);
        if sct_telemetry::enabled() {
            sct_telemetry::counter(sct_telemetry::names::INCR_REUSE_TOTAL).inc();
        }
        self.monitor.note_replay(id, b.verdict);
        self.monitor.record_event_for(
            id,
            OwnedEvent::ItemFinished {
                name: name.to_string(),
                flagged: b.verdict.is_insecure(),
                states: report.stats.states,
            },
        );
        self.monitor.finish(id, report, JobStatus::Done);
    }

    /// Roll one finished job's work-stealing counters into the
    /// service totals (exact — each job's report already sums its own
    /// workers).
    fn absorb_job_stats(&mut self, stats: &crate::report::ExploreStats) {
        self.job_steals += stats.steals as u64;
        self.job_steal_fails += stats.steal_fails as u64;
        self.job_local_cache_hits += stats.local_cache_hits as u64;
    }

    /// The wrapped session (options, cache binding, epoch counters).
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// The monitor handle a transport clones to answer status and event
    /// reads while jobs run.
    pub fn monitor(&self) -> ServiceMonitor {
        self.monitor.clone()
    }

    /// The active retire policy.
    pub fn policy(&self) -> RetirePolicy {
        self.policy
    }

    fn fresh_id(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Enqueue a job; it runs when [`SessionService::run_next`] reaches
    /// it (FIFO).
    pub fn submit(&mut self, job: Job) -> JobId {
        let id = self.fresh_id();
        self.jobs_submitted += 1;
        self.monitor
            .add_job(id, job.name.clone(), JobStatus::Queued, None);
        self.queue.push_back((id, job, Instant::now()));
        id
    }

    /// Assemble `source` and enqueue it. A source that does not
    /// assemble still gets an id — its record is immediately
    /// [`JobStatus::Failed`] with the assembler diagnostic, so clients
    /// can query why.
    pub fn submit_source(
        &mut self,
        name: impl Into<String>,
        source: &str,
        spec: JobSpec,
    ) -> JobId {
        let name = name.into();
        match Job::from_source(name.clone(), source, spec) {
            Ok(job) => self.submit(job),
            Err(e) => {
                let id = self.fresh_id();
                self.jobs_submitted += 1;
                self.jobs_failed += 1;
                self.monitor
                    .add_job(id, name, JobStatus::Failed, Some(e.to_string()));
                id
            }
        }
    }

    /// Assemble `source` and enqueue it with a baseline record from a
    /// previous run: if the job's fingerprint (recomputed daemon-side
    /// from the assembled program and the fully resolved options) still
    /// matches `baseline.fingerprint`, the job replays the baseline
    /// verdict instead of exploring. On mismatch it runs in full.
    pub fn submit_source_with_baseline(
        &mut self,
        name: impl Into<String>,
        source: &str,
        spec: JobSpec,
        baseline: JobBaseline,
    ) -> JobId {
        let name = name.into();
        match Job::from_source(name.clone(), source, spec) {
            Ok(job) => self.submit(job.with_baseline(baseline)),
            Err(e) => {
                let id = self.fresh_id();
                self.jobs_submitted += 1;
                self.jobs_failed += 1;
                self.monitor
                    .add_job(id, name, JobStatus::Failed, Some(e.to_string()));
                id
            }
        }
    }

    /// `true` when jobs are waiting.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A snapshot of a job's record (status, report once done, error if
    /// failed).
    pub fn record(&self, id: JobId) -> Option<JobRecord> {
        self.monitor.job_record(id)
    }

    /// The job's status (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.monitor.status(id)
    }

    /// Run the oldest queued job to completion, then apply the retire
    /// policy. Returns the job's id, or `None` when the queue is empty.
    pub fn run_next(&mut self) -> Option<JobId> {
        let (id, job, submitted) = self.queue.pop_front()?;
        // A queued job whose cancel flag was set never runs: it turns
        // terminal `Cancelled` with no report.
        if self
            .monitor
            .cancel_handle(id)
            .is_some_and(|c| c.load(Ordering::Acquire))
        {
            self.jobs_cancelled += 1;
            self.monitor.finish_unrun_cancelled(id);
            return Some(id);
        }
        let started = Instant::now();
        let queue_wait_ns = sct_telemetry::saturating_ns(started.duration_since(submitted));
        self.monitor.set_status(id, JobStatus::Running);
        self.monitor.set_current(Some(id));

        // Per-job overrides are scoped to the job: snapshot the
        // session's options (the daemon's configured defaults) and
        // restore them afterwards, so one job's `--bound 12` or v4 mode
        // never leaks into the next job's "inherit the session" case.
        let saved_options = *self.session.options();
        let bound = job.spec.bound.unwrap_or(saved_options.explorer.spec_bound);
        let mut options = job.spec.mode.options(bound);
        options.explorer.max_states =
            self.resolve_state_budget(id, job.spec.max_states, saved_options.explorer.max_states);
        options.explorer.deadline_ms = job.spec.deadline_ms;
        self.session.set_options(options);
        if let Some(s) = job.spec.strategy {
            self.session.set_strategy(s);
        }
        if job.spec.threads > 0 {
            self.session.set_parallelism(job.spec.threads);
        }
        // Baseline replay: a job carrying a matching fingerprint (same
        // basic-block hashes, same effective analysis configuration)
        // skips exploration entirely and re-reports the baseline
        // verdict. The fingerprint is recomputed here from the *fully
        // resolved* options, so a stale or foreign baseline can only
        // cost time (full re-analysis), never correctness.
        if let Some(b) = job.baseline.as_ref() {
            let resolved = *self.session.options();
            let fp = entry_fingerprint(
                &block_hashes(&job.program),
                config_tag(&resolved, bound, &job.spec.symbolic),
            );
            if fp == b.fingerprint {
                let b = b.clone();
                self.session.set_options(saved_options);
                self.session.set_strategy(saved_options.explorer.strategy);
                self.session.set_parallelism(saved_options.explorer.threads);
                self.monitor.set_current(None);
                self.finalize_replay(id, &job.name, &b, queue_wait_ns);
                return Some(id);
            }
            if sct_telemetry::enabled() {
                sct_telemetry::counter(sct_telemetry::names::INCR_REANALYZED_TOTAL).inc();
            }
        }
        let report = self
            .session
            .analyze_symbolic(&job.program, &job.config, &job.spec.symbolic);
        self.session.set_options(saved_options);
        self.session.set_strategy(saved_options.explorer.strategy);
        self.session.set_parallelism(saved_options.explorer.threads);

        let timed_out = report.stats.deadline_exceeded;
        if timed_out {
            self.note_timeout();
        } else {
            self.jobs_done += 1;
        }
        self.jobs_since_retire += 1;
        self.absorb_job_stats(&report.stats);
        self.note_job_timing(
            id,
            queue_wait_ns,
            sct_telemetry::saturating_ns(started.elapsed()),
        );
        // Make this thread's buffered check-latency spans visible to a
        // metrics scrape right after the job.
        sct_symx::flush_thread_telemetry();
        // Apply the retire policy while this job is still `current`, so
        // the `EpochRetired` event lands in the *triggering job's* log
        // — per-job streams are the only events a daemon client can
        // subscribe to, and they must show the retirements their jobs
        // cause. The terminal `ItemFinished` follows it, and only then
        // does the status flip to Done (streamers that read a terminal
        // status are guaranteed the complete log).
        if self
            .policy
            .due(self.jobs_since_retire, sct_symx::arena_stats().nodes)
        {
            if let Err(e) = self.retire() {
                // The job itself succeeded; remember the lifecycle
                // failure for the next stats/error query instead of
                // failing the job.
                self.last_retire_error = Some(e.to_string());
            }
        }
        self.monitor.record_event(OwnedEvent::ItemFinished {
            name: job.name.clone(),
            flagged: report.has_violations(),
            states: report.stats.states,
        });
        self.monitor.set_current(None);
        self.monitor.finish(
            id,
            report,
            if timed_out {
                JobStatus::TimedOut
            } else {
                JobStatus::Done
            },
        );
        Some(id)
    }

    /// Resolve a job's effective state budget against the daemon's
    /// `cap`: `None` inherits the cap, a request above it is clamped
    /// down (counted, and surfaced on the job's record).
    fn resolve_state_budget(&mut self, id: JobId, requested: Option<usize>, cap: usize) -> usize {
        match requested {
            Some(r) if r > cap => {
                self.budget_clamped_jobs += 1;
                self.monitor.note_clamp(id, cap as u64);
                cap
            }
            Some(r) => r,
            None => cap,
        }
    }

    /// Drain the queue; returns how many jobs ran.
    pub fn run_pending(&mut self) -> usize {
        let mut n = 0;
        while self.run_next().is_some() {
            n += 1;
        }
        n
    }

    /// Jobs begun via [`SessionService::begin_next`] and not yet handed
    /// back to [`SessionService::finish`].
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Pop the oldest queued job as a [`PreparedJob`] that runs
    /// **without the service**: everything the analysis needs (program,
    /// resolved options, a monitor handle for event streaming) is
    /// captured, so a transport can release its service lock, call
    /// [`PreparedJob::run`] on a worker thread — several concurrently —
    /// and hand the [`FinishedJob`] back to
    /// [`SessionService::finish`]. Per-job overrides resolve against
    /// the session's current defaults exactly as
    /// [`SessionService::run_next`] does.
    ///
    /// Safe concurrency falls out of the substrate: the expression
    /// arena and solver memo are lock-striped process-wide state, and
    /// epoch retirement is deferred while any prepared job is in
    /// flight.
    pub fn begin_next(&mut self) -> Option<PreparedJob> {
        let (id, job, queue_wait_ns, options) = loop {
            let (id, job, submitted) = self.queue.pop_front()?;
            // Reap queued jobs whose cancel flag was set: they turn
            // terminal `Cancelled` without ever running.
            if self
                .monitor
                .cancel_handle(id)
                .is_some_and(|c| c.load(Ordering::Acquire))
            {
                self.jobs_cancelled += 1;
                self.monitor.finish_unrun_cancelled(id);
                continue;
            }
            let queue_wait_ns = sct_telemetry::saturating_ns(submitted.elapsed());
            let defaults = *self.session.options();
            let bound = job.spec.bound.unwrap_or(defaults.explorer.spec_bound);
            let mut options = job.spec.mode.options(bound);
            options.explorer.strategy = job.spec.strategy.unwrap_or(defaults.explorer.strategy);
            options.explorer.dedup_states = defaults.explorer.dedup_states;
            options.explorer.threads = if job.spec.threads > 0 {
                job.spec.threads
            } else {
                defaults.explorer.threads
            };
            options.explorer.max_states =
                self.resolve_state_budget(id, job.spec.max_states, defaults.explorer.max_states);
            options.explorer.deadline_ms = job.spec.deadline_ms;
            // Baseline replay (see `run_next`): a matching fingerprint
            // finalizes the job here — it never becomes a prepared job
            // or counts toward the in-flight retirement deferral.
            if let Some(b) = job.baseline.as_ref() {
                let fp = entry_fingerprint(
                    &block_hashes(&job.program),
                    config_tag(&options, bound, &job.spec.symbolic),
                );
                if fp == b.fingerprint {
                    self.monitor.set_status(id, JobStatus::Running);
                    let b = b.clone();
                    self.finalize_replay(id, &job.name, &b, queue_wait_ns);
                    continue;
                }
                if sct_telemetry::enabled() {
                    sct_telemetry::counter(sct_telemetry::names::INCR_REANALYZED_TOTAL).inc();
                }
            }
            break (id, job, queue_wait_ns, options);
        };
        self.in_flight += 1;
        self.monitor.set_status(id, JobStatus::Running);
        let cancel = self.monitor.cancel_handle(id).unwrap_or_default();
        Some(PreparedJob {
            id,
            name: job.name,
            program: job.program,
            config: job.config,
            symbolic: job.spec.symbolic,
            options,
            monitor: self.monitor.clone(),
            cancel,
            queue_wait_ns,
        })
    }

    /// Record a completed [`PreparedJob`]: bookkeeping, the terminal
    /// `ItemFinished` event, the job's report, and — once no other job
    /// is in flight — any due (or deferred) epoch retirement.
    pub fn finish(&mut self, done: FinishedJob) {
        self.in_flight = self.in_flight.saturating_sub(1);
        // An explicit `Cancel` wins over a deadline expiry when both
        // raced: the client asked for the stop it observed.
        let status = if done.cancelled {
            self.jobs_cancelled += 1;
            JobStatus::Cancelled
        } else if done.timed_out {
            self.note_timeout();
            JobStatus::TimedOut
        } else {
            self.jobs_done += 1;
            JobStatus::Done
        };
        self.jobs_since_retire += 1;
        self.absorb_job_stats(&done.report.stats);
        self.note_job_timing(done.id, done.queue_wait_ns, done.run_ns);
        let due = self.retire_deferred
            || self
                .policy
                .due(self.jobs_since_retire, sct_symx::arena_stats().nodes);
        if due {
            if self.in_flight == 0 {
                if let Err(e) = self.retire() {
                    self.last_retire_error = Some(e.to_string());
                }
            } else {
                // Retiring now would invalidate the ExprRefs of the
                // jobs still running; the last finisher applies it.
                self.retire_deferred = true;
            }
        }
        self.monitor.record_event_for(
            done.id,
            OwnedEvent::ItemFinished {
                name: done.name.clone(),
                flagged: done.report.has_violations(),
                states: done.report.stats.states,
            },
        );
        self.monitor.finish(done.id, done.report, status);
    }

    /// Drain the queue on `workers` concurrent job threads (each job
    /// may itself run a multi-threaded frontier per its spec). Jobs
    /// run against the shared lock-striped arena/memo and are
    /// finalized **as each completes** — records flip to `Done` and
    /// event streams close exactly as under
    /// [`SessionService::run_pending`], without waiting for the whole
    /// batch (a slow job never delays a fast job's terminal status).
    /// Completion order — and therefore which job triggers a policy
    /// retirement — is timing-dependent. Returns how many jobs ran.
    pub fn run_concurrent(&mut self, workers: usize) -> usize {
        let workers = workers.max(1);
        let mut batch = VecDeque::new();
        while let Some(p) = self.begin_next() {
            batch.push_back(p);
        }
        if batch.is_empty() {
            return 0;
        }
        let ran = batch.len();
        let pool = workers.min(ran);
        let queue = Mutex::new(batch);
        // Workers borrow the service through a mutex only for the
        // brief `finish` critical section; nothing else can reach the
        // service meanwhile (the caller holds `&mut self`).
        let service = Mutex::new(&mut *self);
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| loop {
                    let job = queue
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .pop_front();
                    match job {
                        Some(j) => {
                            let done = j.run();
                            service
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .finish(done);
                        }
                        None => break,
                    }
                });
            }
        });
        ran
    }

    /// Retire the session's arena epoch now (snapshot save → retire →
    /// warm-start; see [`AnalysisSession::retire`]) and reset the
    /// policy's job counter.
    ///
    /// With jobs in flight the retirement is **deferred** instead
    /// (retiring would invalidate their live expression references):
    /// `Ok(None)` is returned and the epoch turns over when the last
    /// in-flight job finishes.
    pub fn retire(&mut self) -> Result<Option<sct_cache::LoadStats>, sct_cache::CacheError> {
        if self.in_flight > 0 {
            self.retire_deferred = true;
            return Ok(None);
        }
        let reload = self.session.retire()?;
        self.jobs_since_retire = 0;
        self.retire_deferred = false;
        self.last_reload = reload;
        self.last_retire_error = None;
        Ok(reload)
    }

    /// The most recent policy-triggered retirement failure, if any
    /// (cleared by a successful [`SessionService::retire`]).
    pub fn last_retire_error(&self) -> Option<&str> {
        self.last_retire_error.as_deref()
    }

    /// Aggregate counters (the wire `Stats` payload).
    pub fn stats(&self) -> ServiceStats {
        let arena = sct_symx::arena_stats();
        let memo = sct_symx::solver_memo_stats();
        ServiceStats {
            in_flight: self.in_flight as u64,
            arena_lock_waits: arena.lock_waits,
            memo_lock_waits: memo.lock_waits,
            jobs_submitted: self.jobs_submitted,
            jobs_done: self.jobs_done,
            jobs_failed: self.jobs_failed,
            queued: self.queue.len() as u64,
            epochs_retired: self.session.epochs_retired() as u64,
            jobs_since_retire: self.jobs_since_retire as u64,
            arena_nodes: arena.nodes as u64,
            arena_epoch: arena.epoch,
            memo_entries: memo.entries as u64,
            memo_capacity: memo.capacity as u64,
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_evicted: memo.evicted,
            memo_stale_dropped: memo.stale_dropped,
            last_reload_nodes: self.last_reload.map_or(0, |l| l.added as u64),
            last_reload_verdicts: self.last_reload.map_or(0, |l| l.verdicts_imported as u64),
            steals: self.job_steals,
            steal_fails: self.job_steal_fails,
            local_cache_hits: self.job_local_cache_hits,
            queue_wait_ms_total: self.queue_wait_ms_total,
            run_ms_total: self.run_ms_total,
            jobs_timed: self.jobs_timed,
            events_dropped: self.monitor.events_dropped_total(),
            jobs_cancelled: self.jobs_cancelled,
            budget_clamped_jobs: self.budget_clamped_jobs,
            seed_nodes_added: self.seed_nodes_added,
            seed_verdicts_imported: self.seed_verdicts_imported,
            jobs_timed_out: self.jobs_timed_out,
            jobs_replayed: self.jobs_replayed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;
    use sct_core::examples::fig1;

    fn service() -> SessionService {
        SessionService::new(
            AnalysisSession::builder()
                .v1_mode(16)
                .build()
                .expect("uncached session"),
        )
    }

    #[test]
    fn job_lifecycle_queued_running_done() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let id = svc.submit(Job::new("fig1", p, cfg));
        assert_eq!(svc.status(id), Some(JobStatus::Queued));
        assert!(svc.has_pending());
        assert_eq!(svc.run_next(), Some(id));
        let rec = svc.record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Done);
        assert!(matches!(
            rec.report.as_ref().unwrap().verdict(),
            Verdict::Insecure { .. }
        ));
        assert!(!svc.has_pending());
        assert_eq!(svc.stats().jobs_done, 1);
    }

    #[test]
    fn jobs_run_fifo() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let a = svc.submit(Job::new("a", p.clone(), cfg.clone()));
        let b = svc.submit(Job::new("b", p, cfg));
        assert_eq!(svc.run_next(), Some(a));
        assert_eq!(svc.status(b), Some(JobStatus::Queued));
        assert_eq!(svc.run_next(), Some(b));
        assert_eq!(svc.run_next(), None);
    }

    #[test]
    fn bad_source_fails_with_diagnostic() {
        let mut svc = service();
        let id = svc.submit_source("garbage", "not an instruction !!!", JobSpec::default());
        let rec = svc.record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Failed);
        assert!(rec.error.is_some());
        assert_eq!(svc.stats().jobs_failed, 1);
        // Failed submissions never enter the queue.
        assert_eq!(svc.run_next(), None);
    }

    #[test]
    fn submit_source_runs_like_direct_analysis() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let source = sct_asm::disassemble_with(&p, Some(&cfg));
        let id = svc.submit_source("fig1", &source, JobSpec::default());
        svc.run_pending();
        let via_service = svc.record(id).unwrap().report.clone().unwrap();
        let mut session = AnalysisSession::builder().v1_mode(16).build().unwrap();
        let direct = session.analyze(&p, &cfg);
        assert_eq!(via_service.verdict(), direct.verdict());
        assert_eq!(via_service.stats.states, direct.stats.states);
    }

    #[test]
    fn baseline_replay_skips_exploration_and_keeps_the_verdict() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let cold = svc.submit(Job::new("fig1", p.clone(), cfg.clone()));
        svc.run_pending();
        let cold_rec = svc.record(cold).unwrap();
        let report = cold_rec.report.as_ref().unwrap();
        let verdict = report.verdict();
        assert!(verdict.is_insecure());
        // The fingerprint a ci-gate client would have recorded: same
        // program, same effective options as the daemon resolves for a
        // default spec on this session.
        let fp = entry_fingerprint(
            &block_hashes(&p),
            config_tag(svc.session().options(), 16, &[]),
        );
        let baseline = JobBaseline {
            fingerprint: fp,
            verdict,
            states: report.stats.states,
            schedules: report.stats.schedules,
            strategy: report.stats.strategy.to_string(),
            truncated: report.stats.truncated,
        };

        // Matching fingerprint: replayed without exploring. The record
        // carries the baseline's verdict (witnesses included, which the
        // synthesized report cannot reconstruct) and its state count.
        let warm = svc.submit(Job::new("fig1", p.clone(), cfg.clone()).with_baseline(baseline.clone()));
        assert_eq!(svc.run_next(), Some(warm));
        let warm_rec = svc.record(warm).unwrap();
        assert_eq!(warm_rec.status, JobStatus::Done);
        assert_eq!(warm_rec.replayed, Some(verdict));
        let warm_report = warm_rec.report.as_ref().unwrap();
        assert_eq!(warm_report.stats.states, baseline.states);
        assert_eq!(warm_report.stats.schedules, baseline.schedules);
        assert!(warm_report.violations.is_empty());

        // The concurrent path replays too: the job never becomes a
        // PreparedJob, so begin_next drains straight to None.
        let inline = svc.submit(Job::new("fig1", p.clone(), cfg.clone()).with_baseline(baseline.clone()));
        assert!(svc.begin_next().is_none());
        assert_eq!(svc.in_flight(), 0);
        let rec = svc.record(inline).unwrap();
        assert_eq!(rec.status, JobStatus::Done);
        assert_eq!(rec.replayed, Some(verdict));

        // A stale fingerprint falls back to full analysis: the verdict
        // is recomputed (witnesses present) and nothing is replayed.
        let stale = JobBaseline {
            fingerprint: fp ^ 1,
            ..baseline
        };
        let full = svc.submit(Job::new("fig1", p, cfg).with_baseline(stale));
        assert_eq!(svc.run_next(), Some(full));
        let full_rec = svc.record(full).unwrap();
        assert_eq!(full_rec.replayed, None);
        assert!(!full_rec.report.as_ref().unwrap().violations.is_empty());
    }

    #[test]
    fn monitor_streams_events_and_statuses() {
        let mut svc = service();
        let monitor = svc.monitor();
        let (p, cfg) = fig1();
        let id = svc.submit(Job::new("fig1", p, cfg));
        assert_eq!(monitor.status(id), Some(JobStatus::Queued));
        svc.run_pending();
        assert_eq!(monitor.status(id), Some(JobStatus::Done));
        let (events, next) = monitor.events_since(id, 0).unwrap();
        assert_eq!(next, events.len());
        let states = svc.record(id).unwrap().report.as_ref().unwrap().stats.states;
        let expanded = events
            .iter()
            .filter(|e| matches!(e, OwnedEvent::StateExpanded { .. }))
            .count();
        assert_eq!(expanded, states);
        assert!(events
            .iter()
            .any(|e| matches!(e, OwnedEvent::ViolationFound { .. })));
        assert!(matches!(
            events.last(),
            Some(OwnedEvent::ItemFinished { flagged: true, .. })
        ));
        // Cursored reads resume where they left off.
        let (tail, _) = monitor.events_since(id, next).unwrap();
        assert!(tail.is_empty());
    }

    // Retire-policy cycling is covered in `tests/serve_e2e.rs`
    // (`retire_policy_cycles_epochs_under_service`): epoch retirement
    // invalidates the process-wide arena, so tests that trigger it are
    // serialized in one integration binary instead of racing the
    // parallel unit tests here.

    #[test]
    fn per_job_spec_overrides_mode_and_strategy() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let spec = JobSpec {
            mode: JobMode::V4,
            bound: Some(12),
            strategy: Some(StrategyKind::Fifo),
            threads: 0,
            max_states: None,
            deadline_ms: None,
            symbolic: vec![],
        };
        let id = svc.submit(Job::with_spec("fig1-v4", p, cfg, spec));
        svc.run_pending();
        let report = svc.record(id).unwrap().report.clone().unwrap();
        assert_eq!(report.stats.strategy, "fifo");
        // The session's own defaults survive the per-job overrides:
        // strategy, bound, and mode are all restored after the job.
        assert_eq!(svc.session().strategy(), StrategyKind::Lifo);
        assert_eq!(svc.session().options().explorer.spec_bound, 16);
        assert!(!svc.session().options().explorer.forwarding_hazards);
    }

    #[test]
    fn concurrent_execution_matches_serial_records() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let ids: Vec<_> = (0..4)
            .map(|i| svc.submit(Job::new(format!("job{i}"), p.clone(), cfg.clone())))
            .collect();
        assert_eq!(svc.run_concurrent(3), 4);
        assert_eq!(svc.in_flight(), 0);
        let monitor = svc.monitor();
        for id in ids {
            let rec = svc.record(id).unwrap();
            assert_eq!(rec.status, JobStatus::Done);
            let report = rec.report.unwrap();
            assert!(report.verdict().is_insecure());
            // Event streams stayed per-job under concurrency: each log
            // has exactly its job's expansions and closes terminally.
            let (events, _) = monitor.events_since(id, 0).unwrap();
            assert!(matches!(
                events.last(),
                Some(OwnedEvent::ItemFinished { flagged: true, .. })
            ));
            let expanded = events
                .iter()
                .filter(|e| matches!(e, OwnedEvent::StateExpanded { .. }))
                .count();
            assert_eq!(expanded, report.stats.states);
        }
        assert_eq!(svc.stats().jobs_done, 4);
    }

    #[test]
    fn per_job_threads_runs_parallel_engine() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let spec = JobSpec {
            threads: 2,
            ..JobSpec::default()
        };
        let id = svc.submit(Job::with_spec("fig1-par", p, cfg, spec));
        svc.run_concurrent(1);
        let report = svc.record(id).unwrap().report.unwrap();
        assert_eq!(report.stats.threads, 2);
        assert!(report.verdict().is_insecure());
        // The session's own parallelism default is untouched.
        assert_eq!(svc.session().parallelism(), 1);
    }

    // Deferred-retire semantics (retire requested while a prepared job
    // is in flight) live in `tests/serve_e2e.rs`
    // (`retire_defers_while_jobs_in_flight`): they retire the
    // process-wide arena, which must not race the parallel unit tests
    // here.

    #[test]
    fn event_retention_keeps_first_and_last() {
        let monitor = ServiceMonitor::new();
        let id = JobId::from_u64(1);
        monitor.add_job(id, "big".into(), JobStatus::Running, None);
        let total = MAX_EVENTS_PER_JOB + 100;
        for i in 0..total {
            monitor.record_event_for(
                id,
                OwnedEvent::StateExpanded {
                    states: i,
                    frontier: 0,
                    rob_depth: 0,
                },
            );
        }
        assert_eq!(monitor.events_dropped(id), Some(100));
        assert_eq!(monitor.events_dropped_total(), 100);
        // Cursors index the full sequence, not just what's retained.
        assert_eq!(monitor.event_count(id), Some(total));
        let (events, next) = monitor.events_since(id, 0).unwrap();
        assert_eq!(next, total);
        assert_eq!(events.len(), MAX_EVENTS_PER_JOB);
        // The head keeps the log's start...
        assert!(matches!(
            events[0],
            OwnedEvent::StateExpanded { states: 0, .. }
        ));
        assert!(matches!(
            events[EVENT_HEAD_RETAIN - 1],
            OwnedEvent::StateExpanded { states, .. } if states == EVENT_HEAD_RETAIN - 1
        ));
        // ...and the tail always ends at the newest event.
        assert!(matches!(
            events.last(),
            Some(OwnedEvent::StateExpanded { states, .. }) if *states == total - 1
        ));
        // A cursor into the evicted gap resumes at the retained tail.
        let (resumed, _) = monitor.events_since(id, EVENT_HEAD_RETAIN + 10).unwrap();
        assert!(matches!(
            resumed.first(),
            Some(OwnedEvent::StateExpanded { states, .. }) if *states == EVENT_HEAD_RETAIN + 100
        ));
        // Reads past the end are empty and the cursor is stable.
        let (empty, again) = monitor.events_since(id, next).unwrap();
        assert!(empty.is_empty());
        assert_eq!(again, next);
    }

    #[test]
    fn elapsed_ms_tracks_job_lifecycle() {
        let mut svc = service();
        let (p, cfg) = fig1();
        let id = svc.submit(Job::new("fig1", p, cfg));
        // Queued jobs have not started.
        assert_eq!(svc.record(id).unwrap().elapsed_ms, None);
        svc.run_pending();
        let rec = svc.record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Done);
        assert!(rec.elapsed_ms.is_some());
        let stats = svc.stats();
        assert_eq!(stats.jobs_timed, 1);
        assert_eq!(stats.events_dropped, 0);
    }

    #[test]
    fn mode_and_status_names_round_trip() {
        for m in [JobMode::V1, JobMode::V4, JobMode::Alias, JobMode::V2] {
            assert_eq!(JobMode::parse(m.name()), Some(m));
        }
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::parse(s.name()), Some(s));
        }
        assert_eq!(JobMode::parse("v5"), None);
        assert_eq!(JobStatus::parse(""), None);
        assert!(JobStatus::Cancelled.is_terminal());
    }

    #[test]
    fn cancelling_a_queued_job_reaps_it_without_running() {
        let mut svc = service();
        let monitor = svc.monitor();
        let (p, cfg) = fig1();
        let id = svc.submit(Job::new("doomed", p, cfg));
        assert_eq!(monitor.request_cancel(id), Some(JobStatus::Queued));
        assert_eq!(svc.run_next(), Some(id));
        let rec = svc.record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Cancelled);
        assert!(rec.report.is_none());
        assert_eq!(svc.stats().jobs_cancelled, 1);
        assert_eq!(svc.stats().jobs_done, 0);
        // Cancelling again (or a terminal job) is an idempotent no-op.
        assert_eq!(monitor.request_cancel(id), Some(JobStatus::Cancelled));
        // Unknown ids answer None so the transport can report an error.
        assert_eq!(monitor.request_cancel(JobId::from_u64(999)), None);
    }

    #[test]
    fn begin_next_skips_cancelled_queue_entries() {
        let mut svc = service();
        let monitor = svc.monitor();
        let (p, cfg) = fig1();
        let dead = svc.submit(Job::new("dead", p.clone(), cfg.clone()));
        let live = svc.submit(Job::new("live", p, cfg));
        monitor.request_cancel(dead);
        let prepared = svc.begin_next().expect("live job prepared");
        assert_eq!(prepared.id(), live);
        assert_eq!(svc.status(dead), Some(JobStatus::Cancelled));
        svc.finish(prepared.run());
        assert_eq!(svc.status(live), Some(JobStatus::Done));
    }

    #[test]
    fn over_cap_state_budget_is_clamped_and_surfaced() {
        let mut svc = service();
        let cap = svc.session().options().explorer.max_states;
        let (p, cfg) = fig1();
        let spec = JobSpec {
            max_states: Some(cap * 10),
            ..JobSpec::default()
        };
        let id = svc.submit(Job::with_spec("greedy", p.clone(), cfg.clone(), spec));
        let prepared = svc.begin_next().unwrap();
        assert_eq!(prepared.options().explorer.max_states, cap);
        svc.finish(prepared.run());
        let rec = svc.record(id).unwrap();
        assert_eq!(rec.clamped_states, Some(cap as u64));
        assert_eq!(svc.stats().budget_clamped_jobs, 1);
        // An in-cap override applies verbatim, with no clamp marker,
        // and a one-state budget visibly truncates the exploration.
        let spec = JobSpec {
            max_states: Some(1),
            ..JobSpec::default()
        };
        let id = svc.submit(Job::with_spec("tiny", p, cfg, spec));
        let prepared = svc.begin_next().unwrap();
        assert_eq!(prepared.options().explorer.max_states, 1);
        svc.finish(prepared.run());
        let rec = svc.record(id).unwrap();
        assert_eq!(rec.clamped_states, None);
        let stats = rec.report.unwrap().stats;
        assert!(stats.truncated, "budget 1 must truncate ({} states)", stats.states);
        assert_eq!(svc.stats().budget_clamped_jobs, 1);
    }
}
