//! The `pitchfork` command-line tool: analyze `.sasm` assembly files for
//! speculative constant-time violations.
//!
//! ```text
//! pitchfork [--bound N] [--fwd-hazards] [--strategy NAME] [--symbolic ra,rb]
//!           [--verbose] [--cache PATH] FILE...
//! ```
//!
//! The CLI is a thin shell over [`pitchfork::AnalysisSession`]: one
//! session per invocation owns the options, the search strategy, and
//! the warm-start cache; every file is analyzed through it.

use pitchfork::{AnalysisSession, SessionBuilder, StrategyKind};
use sct_core::Reg;
use std::process::ExitCode;

struct Cli {
    bound: usize,
    fwd_hazards: bool,
    strategy: StrategyKind,
    symbolic: Vec<Reg>,
    verbose: bool,
    cache: Option<String>,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pitchfork [--bound N] [--fwd-hazards] [--strategy NAME] [--symbolic ra,rb] [--verbose] [--cache PATH] FILE..."
    );
    eprintln!();
    eprintln!("Analyze sct assembly files for speculative constant-time violations.");
    eprintln!("  --bound N        speculation bound (default 20; paper: 250 without");
    eprintln!("                   forwarding hazards, 20 with)");
    eprintln!("  --fwd-hazards    explore store-forwarding hazards (Spectre v4 mode)");
    eprintln!("  --strategy NAME  frontier order: lifo (default), fifo, deepest-rob,");
    eprintln!("                   violation-likely — same verdicts, different");
    eprintln!("                   states-to-first-witness");
    eprintln!("  --symbolic LIST  treat these registers as symbolic inputs");
    eprintln!("  --verbose        print schedules and traces for each violation");
    eprintln!("  --cache PATH     warm-start the expression arena and solver memo");
    eprintln!("                   from PATH (if it exists) and save back after the run");
    std::process::exit(2)
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        bound: 20,
        fwd_hazards: false,
        strategy: StrategyKind::Lifo,
        symbolic: Vec::new(),
        verbose: false,
        cache: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bound" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.bound = v.parse().unwrap_or_else(|_| usage());
            }
            "--fwd-hazards" => cli.fwd_hazards = true,
            "--strategy" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.strategy = StrategyKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown strategy `{v}`");
                    usage()
                });
            }
            "--cache" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.cache = Some(v);
            }
            "--symbolic" => {
                let v = args.next().unwrap_or_else(|| usage());
                for name in v.split(',') {
                    match Reg::parse(name.trim()) {
                        Some(r) => cli.symbolic.push(r),
                        None => {
                            eprintln!("unknown register `{name}`");
                            usage();
                        }
                    }
                }
            }
            "--verbose" => cli.verbose = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => cli.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if cli.files.is_empty() {
        usage();
    }
    cli
}

/// Build the session; a cache that fails to load degrades to a cold,
/// cache-less start — it never aborts an analysis.
fn build_session(cli: &Cli) -> AnalysisSession {
    let builder = || {
        let mut b = SessionBuilder::new()
            .bound(cli.bound)
            .strategy(cli.strategy)
            .symbolize(cli.symbolic.iter().copied());
        if cli.fwd_hazards {
            b = b.v4_mode(cli.bound);
        }
        b
    };
    if let Some(path) = cli.cache.as_deref() {
        match builder().cache(path).build() {
            Ok(session) => {
                match session.cache_load() {
                    Some(stats) => println!(
                        "cache: warm start from {path}: {} snapshot nodes ({} new, {} shared), {} verdicts",
                        stats.snapshot_nodes, stats.added, stats.preexisting, stats.verdicts_imported,
                    ),
                    None => println!("cache: cold start ({path} not found)"),
                }
                return session;
            }
            Err(e) => {
                // An unreadable snapshot degrades to a cold start; the
                // file is only replaced by a successful save at exit.
                eprintln!("cache: cold start ({path}: {e})");
                let mut session = builder()
                    .build()
                    .expect("cache-less session build cannot fail");
                session.attach_cache(path);
                return session;
            }
        }
    }
    builder().build().expect("cache-less session build cannot fail")
}

fn main() -> ExitCode {
    let cli = parse_args();
    let mut session = build_session(&cli);
    let mut any_violation = false;
    for file in &cli.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let asm = match sct_asm::assemble(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = session.analyze(&asm.program, &asm.config);
        any_violation |= report.has_violations();
        println!(
            "{file}: {} ({} states, {} schedules explored, strategy {}{})",
            report.verdict(),
            report.stats.states,
            report.stats.schedules,
            report.stats.strategy,
            if report.stats.truncated {
                ", truncated"
            } else {
                ""
            }
        );
        if cli.verbose {
            for v in &report.violations {
                // Map the flagged program point back to a source line.
                if let Some(line) = asm.lines.get(&v.pc) {
                    println!("  (near source line {line})");
                }
                print!("{v}");
            }
        }
    }
    if cli.cache.is_some() {
        match session.save() {
            Ok(Some(stats)) => println!(
                "cache: saved {}: {stats}",
                cli.cache.as_deref().unwrap_or_default()
            ),
            Ok(None) => {}
            Err(e) => eprintln!(
                "cache: save failed ({}: {e})",
                cli.cache.as_deref().unwrap_or_default()
            ),
        }
    }
    if any_violation {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
