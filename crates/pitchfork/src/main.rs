//! The `pitchfork` command-line tool: analyze `.sasm` assembly files for
//! speculative constant-time violations.
//!
//! ```text
//! pitchfork [--bound N] [--fwd-hazards] [--symbolic ra,rb] [--verbose] FILE...
//! ```

use pitchfork::{Detector, DetectorOptions, ExplorerOptions};
use sct_core::{Params, Reg};
use std::process::ExitCode;

struct Cli {
    bound: usize,
    fwd_hazards: bool,
    symbolic: Vec<Reg>,
    verbose: bool,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pitchfork [--bound N] [--fwd-hazards] [--symbolic ra,rb] [--verbose] FILE..."
    );
    eprintln!();
    eprintln!("Analyze sct assembly files for speculative constant-time violations.");
    eprintln!("  --bound N        speculation bound (default 20; paper: 250 without");
    eprintln!("                   forwarding hazards, 20 with)");
    eprintln!("  --fwd-hazards    explore store-forwarding hazards (Spectre v4 mode)");
    eprintln!("  --symbolic LIST  treat these registers as symbolic inputs");
    eprintln!("  --verbose        print schedules and traces for each violation");
    std::process::exit(2)
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        bound: 20,
        fwd_hazards: false,
        symbolic: Vec::new(),
        verbose: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bound" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.bound = v.parse().unwrap_or_else(|_| usage());
            }
            "--fwd-hazards" => cli.fwd_hazards = true,
            "--symbolic" => {
                let v = args.next().unwrap_or_else(|| usage());
                for name in v.split(',') {
                    match Reg::parse(name.trim()) {
                        Some(r) => cli.symbolic.push(r),
                        None => {
                            eprintln!("unknown register `{name}`");
                            usage();
                        }
                    }
                }
            }
            "--verbose" => cli.verbose = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => cli.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if cli.files.is_empty() {
        usage();
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_args();
    let options = DetectorOptions {
        explorer: ExplorerOptions {
            spec_bound: cli.bound,
            forwarding_hazards: cli.fwd_hazards,
            ..Default::default()
        },
        params: Params::paper(),
    };
    let detector = Detector::new(options);
    let mut any_violation = false;
    for file in &cli.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let asm = match sct_asm::assemble(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = if cli.symbolic.is_empty() {
            detector.analyze(&asm.program, &asm.config)
        } else {
            detector.analyze_symbolic(&asm.program, &asm.config, &cli.symbolic)
        };
        any_violation |= report.has_violations();
        println!(
            "{file}: {} ({} states, {} schedules explored{})",
            report.verdict(),
            report.stats.states,
            report.stats.schedules,
            if report.stats.truncated {
                ", truncated"
            } else {
                ""
            }
        );
        if cli.verbose {
            for v in &report.violations {
                // Map the flagged program point back to a source line.
                if let Some(line) = asm.lines.get(&v.pc) {
                    println!("  (near source line {line})");
                }
                print!("{v}");
            }
        }
    }
    if any_violation {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
