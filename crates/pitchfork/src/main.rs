//! The `pitchfork` command-line tool: analyze `.sasm` assembly files for
//! speculative constant-time violations — one-shot, as a resident
//! daemon, or as a client of one.
//!
//! ```text
//! # one-shot (classic) mode
//! pitchfork [--bound N] [--fwd-hazards] [--strategy NAME] [--symbolic ra,rb]
//!           [--verbose] [--cache PATH] [--trace PATH] FILE...
//!
//! # daemon mode: serve analyses over a Unix socket or TCP
//! pitchfork --serve SOCK [--listen HOST:PORT] [--token T] [--client-quota N]
//!           [--cache PATH] [--journal PATH] [--bound N] [--strategy NAME]
//!           [--retire-every N] [--retire-nodes N] [--memo-capacity N]
//!           [--trace PATH]
//!
//! # client verbs against a running daemon (--connect takes a socket
//! # path or HOST:PORT; --token authenticates first)
//! pitchfork submit   --connect SOCK [--mode v1|v4|alias|v2] [--bound N]
//!                    [--strategy NAME] [--symbolic ra,rb] [--max-states N]
//!                    [--deadline-ms N] [--verbose] FILE...
//! pitchfork status   --connect SOCK --job ID
//! pitchfork events   --connect SOCK --job ID
//! pitchfork cancel   --connect SOCK --job ID
//! pitchfork stats    --connect SOCK
//! pitchfork metrics  --connect SOCK [--watch SECONDS]
//! pitchfork retire   --connect SOCK
//! pitchfork shutdown --connect SOCK
//!
//! # incremental CI gate: replay unchanged entries, re-analyze the diff
//! pitchfork ci-gate --baseline DIR [--connect SOCK] [--mode M] [--bound N]
//!           [--strategy NAME] [--symbolic ra,rb] [--max-states N] FILE...
//!
//! # fleet mode: shard a corpus across workers, merge verdicts
//! pitchfork coordinate --worker ADDR [--worker ADDR ...] [--token T]
//!           [--seed CACHE] [--mode M] [--bound N] [--strategy NAME]
//!           [--symbolic ra,rb] [--max-states N] [--attempts N] FILE...
//! ```
//!
//! The one-shot CLI is a thin shell over
//! [`pitchfork::AnalysisSession`]; the daemon wraps the same session in
//! a [`pitchfork::service::SessionService`] behind
//! [`pitchfork::server::Server`], so verdicts are identical either way
//! (the CI serve-smoke job diffs them).

use pitchfork::client::Client;
use pitchfork::observe::OwnedEvent;
use pitchfork::service::{JobId, JobMode, JobSpec, RetirePolicy, ServiceStats, SessionService};
use pitchfork::{AnalysisSession, SessionBuilder, StrategyKind};
use sct_core::Reg;
use std::process::ExitCode;
use std::time::Duration;

struct Cli {
    bound: usize,
    fwd_hazards: bool,
    strategy: StrategyKind,
    threads: usize,
    symbolic: Vec<Reg>,
    verbose: bool,
    cache: Option<String>,
    trace: Option<String>,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pitchfork [--bound N] [--fwd-hazards] [--strategy NAME] [--threads N] [--symbolic ra,rb] [--verbose] [--cache PATH] [--trace PATH] FILE..."
    );
    eprintln!("       pitchfork --serve SOCK [--listen HOST:PORT] [--token T] [--client-quota N]");
    eprintln!("                 [--cache PATH] [--journal PATH] [--bound N] [--strategy NAME]");
    eprintln!("                 [--threads N] [--jobs K] [--retire-every N] [--retire-nodes N]");
    eprintln!("                 [--memo-capacity N] [--trace PATH]");
    eprintln!("       pitchfork submit --connect SOCK [--token T] [--mode v1|v4|alias|v2]");
    eprintln!("                 [--bound N] [--strategy NAME] [--threads N] [--symbolic ra,rb]");
    eprintln!("                 [--max-states N] [--deadline-ms N] [--verbose] FILE...");
    eprintln!("       pitchfork status|events|cancel --connect SOCK --job ID");
    eprintln!("       pitchfork stats|retire|shutdown --connect SOCK");
    eprintln!("       pitchfork metrics --connect SOCK [--watch SECONDS]");
    eprintln!("       pitchfork ci-gate --baseline DIR [--connect SOCK] [--mode M]");
    eprintln!("                 [--bound N] [--strategy NAME] [--threads N]");
    eprintln!("                 [--symbolic ra,rb] [--max-states N] [--deadline-ms N] FILE...");
    eprintln!("       pitchfork coordinate --worker ADDR [--worker ADDR ...] [--token T]");
    eprintln!("                 [--seed CACHE] [--mode M] [--bound N] [--strategy NAME]");
    eprintln!("                 [--symbolic ra,rb] [--max-states N] [--deadline-ms N]");
    eprintln!("                 [--attempts N] [--retry-budget N] FILE...");
    eprintln!();
    eprintln!("Analyze sct assembly files for speculative constant-time violations.");
    eprintln!("  --bound N        speculation bound (default 20; paper: 250 without");
    eprintln!("                   forwarding hazards, 20 with)");
    eprintln!("  --fwd-hazards    explore store-forwarding hazards (Spectre v4 mode)");
    eprintln!("  --strategy NAME  frontier order: lifo (default), fifo, deepest-rob,");
    eprintln!("                   violation-likely — same verdicts, different");
    eprintln!("                   states-to-first-witness");
    eprintln!("  --threads N      worker threads per exploration (default 1 = serial;");
    eprintln!("                   0 = adaptive: start serial, spill to one worker per");
    eprintln!("                   core only if the frontier grows wide enough to pay");
    eprintln!("                   for it). Verdicts, witness sets, and state counts");
    eprintln!("                   always match serial mode exactly");
    eprintln!("  --symbolic LIST  treat these registers as symbolic inputs");
    eprintln!("  --verbose        print schedules and traces for each violation");
    eprintln!("  --cache PATH     warm-start the expression arena and solver memo");
    eprintln!("                   from PATH (if it exists) and save back after the run");
    eprintln!("  --trace PATH     append structured JSONL trace records (job lifecycle,");
    eprintln!("                   violations, epoch retirements) to PATH");
    eprintln!();
    eprintln!("The metrics verb scrapes the daemon's telemetry registry (latency");
    eprintln!("histograms, per-worker utilization, job queue-wait/run totals) in");
    eprintln!("Prometheus text exposition format; --watch N re-scrapes every N");
    eprintln!("seconds and prints only what moved. Set SCT_TELEMETRY=0 to disable");
    eprintln!("metric collection entirely.");
    eprintln!();
    eprintln!("ci-gate re-analyzes a corpus against the baseline saved in --baseline");
    eprintln!("DIR: entries whose per-entry fingerprint (basic-block hashes + analysis");
    eprintln!("config) is unchanged replay their recorded verdict lines byte-identically");
    eprintln!("with zero exploration; dirty or new entries re-run against the baseline's");
    eprintln!("warm-start snapshot. Exit 0 promotes the refreshed baseline, exit 3 means");
    eprintln!("an entry flipped to insecure (the baseline is left untouched). With");
    eprintln!("--connect the diff runs daemon-side via baseline-carrying submits.");
    eprintln!();
    eprintln!("Daemon mode (--serve) keeps one session resident: submissions share the");
    eprintln!("hash-consed arena and solver memo across clients, and the epoch-retire");
    eprintln!("policy (--retire-every jobs / --retire-nodes arena nodes) snapshots and");
    eprintln!("warm-starts without restarting the process. --threads sets the default");
    eprintln!("per-job parallelism (submit --threads overrides per job); --jobs K runs");
    eprintln!("up to K jobs concurrently against the shared sharded arena.");
    eprintln!();
    eprintln!("Fleet mode: --listen puts the daemon on TCP (same protocol, same verdict");
    eprintln!("bytes), --token requires clients to authenticate with an opening hello,");
    eprintln!("and --client-quota bounds submissions per connection. `coordinate` shards");
    eprintln!("a corpus across --worker daemons largest-first, warm-starts each from");
    eprintln!("--seed, requeues shards off dead workers, and prints merged verdict lines");
    eprintln!("in manifest order (byte-identical to a one-process batch).");
    eprintln!();
    eprintln!("Robustness: --deadline-ms bounds a job's wall clock (a job over budget");
    eprintln!("ends `timed-out` with verdict UNKNOWN — never a false SECURE); --journal");
    eprintln!("PATH write-ahead-logs every submission so a restarted daemon re-runs");
    eprintln!("interrupted and queued jobs with byte-identical verdicts; a corrupt");
    eprintln!("--cache/--baseline file is quarantined to FILE.bad and the run degrades");
    eprintln!("to a cold start. Set SCT_FAULTS (e.g. conn-drop@at:3) to inject");
    eprintln!("deterministic faults for testing; unset, the hooks cost nothing.");
    std::process::exit(2)
}

fn parse_args(args: Vec<String>) -> Cli {
    let mut cli = Cli {
        bound: 20,
        fwd_hazards: false,
        strategy: StrategyKind::Lifo,
        threads: 1,
        symbolic: Vec::new(),
        verbose: false,
        cache: None,
        trace: None,
        files: Vec::new(),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bound" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.bound = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--fwd-hazards" => cli.fwd_hazards = true,
            "--strategy" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.strategy = StrategyKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown strategy `{v}`");
                    usage()
                });
            }
            "--cache" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.cache = Some(v);
            }
            "--trace" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.trace = Some(v);
            }
            "--symbolic" => {
                let v = args.next().unwrap_or_else(|| usage());
                // Repeated --symbolic flags accumulate.
                cli.symbolic.extend(parse_regs(&v));
            }
            "--verbose" => cli.verbose = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => cli.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if cli.files.is_empty() {
        usage();
    }
    cli
}

fn parse_regs(list: &str) -> Vec<Reg> {
    let mut regs = Vec::new();
    for name in list.split(',') {
        match Reg::parse(name.trim()) {
            Some(r) => regs.push(r),
            None => {
                eprintln!("unknown register `{name}`");
                usage();
            }
        }
    }
    regs
}

/// Build the session; a cache that fails to load degrades to a cold,
/// cache-less start — it never aborts an analysis.
fn build_session(
    bound: usize,
    fwd_hazards: bool,
    strategy: StrategyKind,
    threads: usize,
    symbolic: &[Reg],
    cache: Option<&str>,
) -> AnalysisSession {
    let builder = || {
        let mut b = SessionBuilder::new()
            .bound(bound)
            .strategy(strategy)
            .parallelism(threads)
            .symbolize(symbolic.iter().copied());
        if fwd_hazards {
            b = b.v4_mode(bound);
        }
        b
    };
    if let Some(path) = cache {
        match builder().cache(path).build() {
            Ok(session) => {
                match session.cache_load() {
                    Some(stats) => println!(
                        "cache: warm start from {path}: {} snapshot nodes ({} new, {} shared), {} verdicts",
                        stats.snapshot_nodes, stats.added, stats.preexisting, stats.verdicts_imported,
                    ),
                    None => println!("cache: cold start ({path} not found)"),
                }
                return session;
            }
            Err(e) => {
                // A corrupt snapshot degrades to a cold start — never a
                // wrong verdict, never an abort. Quarantine the bad file
                // (rename to PATH.bad) so the save at exit writes a
                // fresh snapshot instead of fighting the corruption, and
                // the operator keeps the evidence.
                match sct_cache::quarantine(std::path::Path::new(path)) {
                    Some(bad) => eprintln!(
                        "cache: cold start ({path}: {e}; corrupt snapshot quarantined to {})",
                        bad.display()
                    ),
                    None => eprintln!("cache: cold start ({path}: {e})"),
                }
                let mut session = builder()
                    .build()
                    .expect("cache-less session build cannot fail");
                session.attach_cache(path);
                return session;
            }
        }
    }
    builder().build().expect("cache-less session build cannot fail")
}

/// Open a `--trace PATH` JSONL writer with a manifest-style provenance
/// header (same shape as the daemon's `audit.jsonl` header: who wrote
/// the file, from what commit, on what machine). An unwritable path is
/// reported and disables tracing — it never aborts an analysis.
fn open_trace(
    path: &str,
    mode: &str,
    bound: usize,
    strategy: StrategyKind,
) -> Option<std::sync::Arc<sct_telemetry::TraceWriter>> {
    use sct_telemetry::TraceValue;
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let header = [
        ("artifact", TraceValue::Str("pitchfork-trace".to_string())),
        ("mode", TraceValue::Str(mode.to_string())),
        ("git_commit", TraceValue::Str(git_commit)),
        ("host_cpus", TraceValue::U64(host_cpus)),
        ("bound", TraceValue::U64(bound as u64)),
        ("strategy", TraceValue::Str(strategy.to_string())),
    ];
    match sct_telemetry::TraceWriter::create(std::path::Path::new(path), &header) {
        Ok(w) => Some(std::sync::Arc::new(w)),
        Err(e) => {
            eprintln!("--trace {path}: {e}");
            None
        }
    }
}

// The per-file report line lives in the library so one-shot, daemon,
// and fleet-coordinator output share it verbatim (CI diffs them).
use pitchfork::fleet::report_line;

fn run_oneshot(args: Vec<String>) -> ExitCode {
    let cli = parse_args(args);
    let mut session = build_session(
        cli.bound,
        cli.fwd_hazards,
        cli.strategy,
        cli.threads,
        &cli.symbolic,
        cli.cache.as_deref(),
    );
    let trace = cli
        .trace
        .as_deref()
        .and_then(|p| open_trace(p, "oneshot", cli.bound, cli.strategy));
    let mut any_violation = false;
    for (index, file) in cli.files.iter().enumerate() {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let asm = match sct_asm::assemble(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        // One-shot runs have no daemon job ids; number the files 1..N
        // so trace records stay joinable on the `job` key either way.
        let job = (index + 1) as u64;
        if let Some(t) = &trace {
            t.record(
                Some(job),
                "item_start",
                &[("name", sct_telemetry::TraceValue::Str(file.clone()))],
            );
        }
        let started = std::time::Instant::now();
        let report = session.analyze(&asm.program, &asm.config);
        if let Some(t) = &trace {
            use sct_telemetry::TraceValue;
            t.record(
                Some(job),
                "item_finished",
                &[
                    ("name", TraceValue::Str(file.clone())),
                    ("flagged", TraceValue::Bool(report.has_violations())),
                    ("states", TraceValue::U64(report.stats.states as u64)),
                    (
                        "elapsed_ms",
                        TraceValue::U64(started.elapsed().as_millis() as u64),
                    ),
                ],
            );
        }
        any_violation |= report.has_violations();
        println!(
            "{}",
            report_line(
                file,
                report.verdict(),
                report.stats.states,
                report.stats.schedules,
                report.stats.strategy,
                report.stats.truncated,
            )
        );
        if cli.verbose {
            for v in &report.violations {
                // Map the flagged program point back to a source line.
                if let Some(line) = asm.lines.get(&v.pc) {
                    println!("  (near source line {line})");
                }
                print!("{v}");
            }
        }
    }
    if cli.cache.is_some() {
        match session.save() {
            Ok(Some(stats)) => println!(
                "cache: saved {}: {stats}",
                cli.cache.as_deref().unwrap_or_default()
            ),
            Ok(None) => {}
            Err(e) => eprintln!(
                "cache: save failed ({}: {e})",
                cli.cache.as_deref().unwrap_or_default()
            ),
        }
    }
    if any_violation {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

// ----- daemon mode --------------------------------------------------------

fn run_serve(args: Vec<String>) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut cache: Option<String> = None;
    let mut bound = 20usize;
    let mut strategy = StrategyKind::Lifo;
    let mut threads = 1usize;
    let mut jobs = 1usize;
    let mut trace: Option<String> = None;
    let mut policy = RetirePolicy::never();
    let mut server_options = pitchfork::server::ServerOptions::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => cache = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--journal" => {
                server_options.journal =
                    Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--token" => server_options.token = Some(args.next().unwrap_or_else(|| usage())),
            "--client-quota" => {
                server_options.max_jobs_per_client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bound" => {
                bound = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage())
                    .max(1)
            }
            "--strategy" => {
                let v = args.next().unwrap_or_else(|| usage());
                strategy = StrategyKind::parse(&v).unwrap_or_else(|| usage());
            }
            "--retire-every" => {
                policy.every_jobs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--retire-nodes" => {
                policy.max_arena_nodes = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--memo-capacity" => {
                let cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                sct_symx::set_solver_memo_capacity(cap);
            }
            s if socket.is_none() && !s.starts_with('-') => socket = Some(s.to_string()),
            _ => usage(),
        }
    }
    // `--listen HOST:PORT` takes a TCP endpoint; otherwise the
    // positional SOCK path is a Unix socket, exactly as before.
    let endpoint = match (&listen, &socket) {
        (Some(addr), _) => pitchfork::transport::Endpoint::Tcp(addr.clone()),
        (None, Some(path)) => pitchfork::transport::Endpoint::Unix(path.into()),
        (None, None) => usage(),
    };
    let session = build_session(bound, false, strategy, threads, &[], cache.as_deref());
    let service = SessionService::with_policy(session, policy);
    if let Some(path) = &trace {
        if let Some(writer) = open_trace(path, "serve", bound, strategy) {
            service.monitor().set_trace(writer);
        }
    }
    let server =
        match pitchfork::server::Server::bind_endpoint(&endpoint, service, jobs, server_options) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("--serve {}: {e}", endpoint.display());
                return ExitCode::from(2);
            }
        };
    println!(
        "serving on {} (bound {bound}, strategy {strategy}, threads {threads}, jobs {jobs})",
        server.local_addr()
    );
    server.wait();
    println!("daemon stopped");
    ExitCode::SUCCESS
}

// ----- client verbs -------------------------------------------------------

struct ClientArgs {
    connect: Option<String>,
    token: Option<String>,
    job: Option<u64>,
    mode: JobMode,
    bound: Option<usize>,
    strategy: Option<StrategyKind>,
    threads: usize,
    max_states: Option<usize>,
    deadline_ms: Option<u64>,
    symbolic: Vec<Reg>,
    verbose: bool,
    files: Vec<String>,
    // coordinate-only
    workers: Vec<String>,
    seed: Option<String>,
    attempts: u32,
    retry_budget: Option<u32>,
    // ci-gate-only
    baseline: Option<String>,
    // metrics-only
    watch: Option<u64>,
}

fn parse_client_args(args: Vec<String>) -> ClientArgs {
    let mut out = ClientArgs {
        connect: None,
        token: None,
        job: None,
        mode: JobMode::V1,
        bound: None,
        strategy: None,
        threads: 0,
        max_states: None,
        deadline_ms: None,
        symbolic: Vec::new(),
        verbose: false,
        files: Vec::new(),
        workers: Vec::new(),
        seed: None,
        attempts: 3,
        retry_budget: None,
        baseline: None,
        watch: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => out.connect = Some(args.next().unwrap_or_else(|| usage())),
            "--token" => out.token = Some(args.next().unwrap_or_else(|| usage())),
            "--worker" => out.workers.push(args.next().unwrap_or_else(|| usage())),
            "--seed" => out.seed = Some(args.next().unwrap_or_else(|| usage())),
            "--baseline" => out.baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--watch" => {
                out.watch = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--attempts" => {
                out.attempts = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--retry-budget" => {
                out.retry_budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-states" => {
                out.max_states = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                out.deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--job" => {
                out.job = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--mode" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.mode = JobMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown mode `{v}`");
                    usage()
                });
            }
            "--bound" => {
                out.bound = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                out.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.strategy = Some(StrategyKind::parse(&v).unwrap_or_else(|| usage()));
            }
            "--symbolic" => {
                let v = args.next().unwrap_or_else(|| usage());
                // Repeated --symbolic flags accumulate.
                out.symbolic.extend(parse_regs(&v));
            }
            "--verbose" => out.verbose = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => out.files.push(f.to_string()),
            _ => usage(),
        }
    }
    out
}

fn connect(args: &ClientArgs) -> Client {
    let Some(addr) = args.connect.as_deref() else {
        eprintln!("missing --connect SOCK");
        usage();
    };
    let mut client = match Client::connect_addr(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("--connect {addr}: {e}");
            std::process::exit(2);
        }
    };
    if let Some(token) = &args.token {
        if let Err(e) = client.hello(token.clone()) {
            eprintln!("--connect {addr}: {e}");
            std::process::exit(2);
        }
    }
    client
}

/// Print one line, tolerating a closed stdout (`... | head` closes the
/// pipe mid-output; that must end output quietly, not panic).
fn out(line: std::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{line}");
}

macro_rules! outln {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

fn print_stats(stats: &ServiceStats) {
    outln!(
        "jobs: {} submitted, {} done, {} failed, {} cancelled, {} queued",
        stats.jobs_submitted, stats.jobs_done, stats.jobs_failed, stats.jobs_cancelled, stats.queued
    );
    outln!(
        "latency: {} ms queue-wait / {} ms run over {} timed jobs; {} events dropped",
        stats.queue_wait_ms_total, stats.run_ms_total, stats.jobs_timed, stats.events_dropped
    );
    outln!(
        "epochs_retired: {} ({} jobs since; last warm-start {} nodes, {} verdicts)",
        stats.epochs_retired,
        stats.jobs_since_retire,
        stats.last_reload_nodes,
        stats.last_reload_verdicts
    );
    outln!(
        "arena: {} nodes (epoch {})",
        stats.arena_nodes, stats.arena_epoch
    );
    outln!(
        "memo: {} entries (cap {}), {} hits / {} misses, {} evicted, {} stale",
        stats.memo_entries,
        stats.memo_capacity,
        stats.memo_hits,
        stats.memo_misses,
        stats.memo_evicted,
        stats.memo_stale_dropped
    );
    // New counters go on their own line after the historical ones — CI
    // smoke legs grep the exact text above.
    outln!(
        "robustness: {} timed out, {} replayed from journal",
        stats.jobs_timed_out, stats.jobs_replayed
    );
}

fn print_view(label: &str, view: &pitchfork::client::JobView, verbose: bool) -> bool {
    match (&view.verdict, &view.stats) {
        (Some(verdict), Some(stats)) => {
            outln!(
                "{}",
                report_line(
                    label,
                    verdict,
                    stats.states,
                    stats.schedules,
                    stats.strategy,
                    stats.truncated,
                )
            );
            outln!(
                "  memo: {} hits / {} misses; first witness at {:?} states",
                stats.solver_memo_hits, stats.solver_memo_misses, stats.first_witness_states
            );
            if let Some(ms) = view.elapsed_ms {
                outln!("  elapsed: {ms} ms");
            }
            if let Some(cap) = view.clamped_states {
                outln!("  state budget clamped to {cap} (requested more than the daemon cap)");
            }
            if verbose {
                for v in &view.violations {
                    outln!("  violation: {} near program point {}", v.observation, v.pc);
                    outln!("    schedule: {}", v.schedule);
                    for c in &v.constraints {
                        outln!("    constraint: {c}");
                    }
                }
            }
            verdict.is_insecure()
        }
        _ => {
            outln!(
                "{label}: {}{}{}",
                view.status,
                view.elapsed_ms
                    .map(|ms| format!(" ({ms} ms elapsed)"))
                    .unwrap_or_default(),
                view.error
                    .as_deref()
                    .map(|e| format!(" ({e})"))
                    .unwrap_or_default()
            );
            false
        }
    }
}

fn run_submit(args: Vec<String>) -> ExitCode {
    let args = parse_client_args(args);
    if args.files.is_empty() {
        eprintln!("submit: no files");
        usage();
    }
    let mut client = connect(&args);
    let spec = JobSpec {
        mode: args.mode,
        bound: args.bound,
        strategy: args.strategy,
        threads: args.threads,
        symbolic: args.symbolic.clone(),
        max_states: args.max_states,
        deadline_ms: args.deadline_ms,
    };
    let mut ids = Vec::new();
    for file in &args.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        match client.submit_source(file.clone(), source, spec.clone()) {
            Ok(id) => ids.push((file.clone(), id)),
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut any_violation = false;
    let mut any_failed = false;
    for (file, id) in ids {
        match client.wait(id, Duration::from_secs(120)) {
            Ok(view) => {
                any_violation |= print_view(&file, &view, args.verbose);
                any_failed |= view.error.is_some();
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if any_failed {
        ExitCode::from(2)
    } else if any_violation {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_status(args: Vec<String>) -> ExitCode {
    let args = parse_client_args(args);
    let Some(job) = args.job else {
        eprintln!("missing --job ID");
        usage();
    };
    let mut client = connect(&args);
    match client.status(JobId::from_u64(job)) {
        Ok(view) => {
            let flagged = print_view(&format!("job {job}"), &view, args.verbose);
            // Exit codes mirror `submit`: 2 for a failed job, 1 for a
            // flagged one, 0 otherwise — scripts can tell "secure"
            // from "failed" without parsing output.
            if view.status == pitchfork::service::JobStatus::Failed {
                ExitCode::from(2)
            } else if flagged {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("status: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_cancel(args: Vec<String>) -> ExitCode {
    let args = parse_client_args(args);
    let Some(job) = args.job else {
        eprintln!("missing --job ID");
        usage();
    };
    let mut client = connect(&args);
    if let Err(e) = client.cancel(JobId::from_u64(job)) {
        eprintln!("cancel: {e}");
        return ExitCode::from(2);
    }
    match client.wait(JobId::from_u64(job), Duration::from_secs(120)) {
        Ok(view) => {
            outln!("job {job}: {}", view.status);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cancel: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_events(args: Vec<String>) -> ExitCode {
    let args = parse_client_args(args);
    let Some(job) = args.job else {
        eprintln!("missing --job ID");
        usage();
    };
    let mut client = connect(&args);
    let result = client.stream_events(JobId::from_u64(job), 0, |event| match event {
        OwnedEvent::StateExpanded {
            states,
            frontier,
            rob_depth,
        } => outln!("state-expanded: {states} states, frontier {frontier}, rob {rob_depth}"),
        OwnedEvent::ViolationFound {
            states,
            pc,
            observation,
        } => outln!("violation-found: {observation} near pc {pc} after {states} states"),
        OwnedEvent::ItemFinished {
            name,
            flagged,
            states,
        } => outln!("item-finished: {name} flagged={flagged} ({states} states)"),
        OwnedEvent::EpochRetired { epoch, rehydrated } => {
            outln!("epoch-retired: epoch {epoch}, {rehydrated} nodes rehydrated")
        }
    });
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("events: {e}");
            ExitCode::from(2)
        }
    }
}

/// Render [`ServiceStats`] as Prometheus-style exposition lines, one
/// `service_*` family per field, matching the registry families that
/// [`sct_telemetry::render_prometheus`] emits after it.
fn render_service_stats(stats: &ServiceStats) -> String {
    let mut out = String::new();
    let families: [(&str, &str, u64); 19] = [
        ("service_jobs_submitted", "counter", stats.jobs_submitted),
        ("service_jobs_done", "counter", stats.jobs_done),
        ("service_jobs_failed", "counter", stats.jobs_failed),
        ("service_jobs_cancelled", "counter", stats.jobs_cancelled),
        ("service_jobs_timed_out", "counter", stats.jobs_timed_out),
        ("service_jobs_replayed", "counter", stats.jobs_replayed),
        ("service_budget_clamped_jobs", "counter", stats.budget_clamped_jobs),
        ("service_seed_nodes_added", "counter", stats.seed_nodes_added),
        ("service_seed_verdicts_imported", "counter", stats.seed_verdicts_imported),
        ("service_jobs_queued", "gauge", stats.queued),
        ("service_queue_wait_ms_total", "counter", stats.queue_wait_ms_total),
        ("service_run_ms_total", "counter", stats.run_ms_total),
        ("service_jobs_timed", "counter", stats.jobs_timed),
        ("service_events_dropped", "counter", stats.events_dropped),
        ("service_epochs_retired", "counter", stats.epochs_retired),
        ("service_arena_nodes", "gauge", stats.arena_nodes),
        ("service_memo_entries", "gauge", stats.memo_entries),
        ("service_memo_hits", "counter", stats.memo_hits),
        ("service_memo_misses", "counter", stats.memo_misses),
    ];
    for (name, kind, value) in families {
        out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
    }
    out
}

/// [`ServiceStats`] as counter/gauge snapshots (same families as
/// [`render_service_stats`]) so `metrics --watch` deltas them alongside
/// the registry metrics.
fn service_stat_snapshots(stats: &ServiceStats) -> Vec<sct_telemetry::MetricSnapshot> {
    use sct_telemetry::{MetricKind, MetricSnapshot};
    let families = [
        ("service_jobs_submitted", MetricKind::Counter, stats.jobs_submitted),
        ("service_jobs_done", MetricKind::Counter, stats.jobs_done),
        ("service_jobs_failed", MetricKind::Counter, stats.jobs_failed),
        ("service_jobs_cancelled", MetricKind::Counter, stats.jobs_cancelled),
        ("service_jobs_timed_out", MetricKind::Counter, stats.jobs_timed_out),
        ("service_jobs_replayed", MetricKind::Counter, stats.jobs_replayed),
        ("service_jobs_queued", MetricKind::Gauge, stats.queued),
        ("service_queue_wait_ms_total", MetricKind::Counter, stats.queue_wait_ms_total),
        ("service_run_ms_total", MetricKind::Counter, stats.run_ms_total),
        ("service_epochs_retired", MetricKind::Counter, stats.epochs_retired),
        ("service_arena_nodes", MetricKind::Gauge, stats.arena_nodes),
        ("service_memo_entries", MetricKind::Gauge, stats.memo_entries),
    ];
    families
        .into_iter()
        .map(|(name, kind, value)| MetricSnapshot {
            name: name.to_string(),
            kind,
            value,
            sum_ns: 0,
            max_ns: 0,
            max_job: 0,
            buckets: Vec::new(),
        })
        .collect()
}

fn run_metrics(args: Vec<String>) -> ExitCode {
    let args = parse_client_args(args);
    let mut client = connect(&args);
    let scrape = |client: &mut Client| -> Result<_, _> {
        client.metrics().map(|(stats, metrics)| {
            let mut snaps = service_stat_snapshots(&stats);
            snaps.extend(metrics.iter().cloned());
            (stats, metrics, snaps)
        })
    };
    let (stats, metrics, mut prev) = match scrape(&mut client) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("metrics: {e}");
            return ExitCode::from(2);
        }
    };
    {
        use std::io::Write as _;
        let mut text = render_service_stats(&stats);
        text.push_str(&sct_telemetry::render_prometheus(&metrics));
        // One write, tolerant of a closed stdout (`... | head`).
        let _ = std::io::stdout().write_all(text.as_bytes());
    }
    // --watch N: keep the connection open and re-scrape every N
    // seconds, printing only what moved since the previous scrape.
    let Some(every) = args.watch else {
        return ExitCode::SUCCESS;
    };
    let period = Duration::from_secs(every);
    loop {
        std::thread::sleep(period);
        let (_, _, cur) = match scrape(&mut client) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("metrics: {e}");
                return ExitCode::from(2);
            }
        };
        let delta = sct_telemetry::render_delta(&prev, &cur, every as f64);
        if delta.is_empty() {
            outln!("-- +{every}s: idle");
        } else {
            outln!("-- +{every}s:");
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(delta.as_bytes());
        }
        prev = cur;
    }
}

// ----- the incremental CI gate --------------------------------------------

/// `pitchfork ci-gate --baseline DIR FILE...`: diff-aware re-analysis
/// against a persisted baseline. Unchanged entries (by per-entry
/// fingerprint) replay their recorded verdict lines byte-identically
/// with zero exploration; dirty or new entries are re-analyzed against
/// the baseline's warm-start snapshot. Exit 0 promotes the refreshed
/// baseline; a secure→insecure flip exits 3 and leaves the baseline
/// untouched. With `--connect` the diff runs daemon-side (each entry
/// ships as a baseline-carrying submit the daemon can replay).
fn run_ci_gate(args: Vec<String>) -> ExitCode {
    use pitchfork::incremental::save_baseline;
    use pitchfork::BaselineManifest;
    let args = parse_client_args(args);
    let Some(dir) = args.baseline.as_deref() else {
        eprintln!("ci-gate: missing --baseline DIR");
        usage();
    };
    let dir = std::path::PathBuf::from(dir);
    if args.files.is_empty() {
        eprintln!("ci-gate: no files");
        usage();
    }
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("ci-gate: --baseline {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    // A missing manifest is an empty baseline: the first run analyzes
    // everything, passes (nothing to flip from), and creates it. A
    // corrupt or unreadable manifest degrades the same way — the gate
    // warns, quarantines the bad file, and runs the full corpus cold
    // (exit 0/3 on the verdicts), so a torn baseline write can slow a
    // CI run but never wedge it. The pass at the end promotes a fresh
    // baseline over the wreckage.
    let baseline = match BaselineManifest::load_dir(&dir) {
        Ok(m) => m,
        Err(e) => {
            let manifest_path = dir.join(BaselineManifest::FILE_NAME);
            match sct_cache::quarantine(&manifest_path) {
                Some(bad) => eprintln!(
                    "ci-gate: --baseline {}: {e}; corrupt manifest quarantined to {}, running full cold analysis",
                    dir.display(),
                    bad.display()
                ),
                None => eprintln!(
                    "ci-gate: --baseline {}: {e}; running full cold analysis",
                    dir.display()
                ),
            }
            BaselineManifest::empty()
        }
    };
    let bound = args.bound.unwrap_or(20);
    if args.connect.is_some() {
        return run_ci_gate_remote(&args, &dir, &baseline, bound);
    }

    let mut options = args.mode.options(bound);
    if let Some(s) = args.strategy {
        options.explorer.strategy = s;
    }
    if args.threads > 0 {
        options.explorer.threads = args.threads;
    }
    if let Some(ms) = args.max_states {
        options.explorer.max_states = ms;
    }
    // Warm-start the arena and verdict memo from the baseline's pruned
    // snapshot; an unreadable snapshot degrades to a cold start.
    let cache_path = dir.join(BaselineManifest::CACHE_NAME);
    let mut session = match SessionBuilder::new().options(options).cache(&cache_path).build() {
        Ok(s) => s,
        Err(e) => {
            match sct_cache::quarantine(&cache_path) {
                Some(bad) => eprintln!(
                    "ci-gate: cold start ({}: {e}; corrupt snapshot quarantined to {})",
                    cache_path.display(),
                    bad.display()
                ),
                None => eprintln!(
                    "ci-gate: cold start ({}: {e})",
                    cache_path.display()
                ),
            }
            let mut s = SessionBuilder::new()
                .options(options)
                .build()
                .expect("cache-less session build cannot fail");
            s.attach_cache(&cache_path);
            s
        }
    };
    let mut items = Vec::new();
    for file in &args.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let asm = match sct_asm::assemble(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        items.push(
            pitchfork::BatchItem::new(file.clone(), asm.program, asm.config)
                .symbolize(args.symbolic.iter().copied()),
        );
    }
    let report = session.analyze_incremental(items, &baseline);
    // Verdict lines to stdout — byte-identical to a batch run over the
    // same corpus (and to the baseline's own lines for replayed
    // entries); bookkeeping to stderr so scripts can diff stdout.
    for o in &report.outcomes {
        outln!("{}", o.line);
    }
    eprintln!(
        "ci-gate: {} entries — {} replayed, {} re-analyzed; {} states explored, {} skipped ({:.1}%) in {:.1?}",
        report.outcomes.len(),
        report.reused,
        report.reanalyzed,
        report.states_explored,
        report.states_skipped,
        100.0 * report.skip_ratio(),
        report.wall,
    );
    let regressed: Vec<String> = report
        .regressions()
        .iter()
        .map(|o| {
            format!(
                "REGRESSION: {} flipped {} -> {}",
                o.name,
                o.flip.expect("regressed implies a flip"),
                o.verdict,
            )
        })
        .collect();
    if !regressed.is_empty() {
        for line in &regressed {
            eprintln!("{line}");
        }
        eprintln!(
            "ci-gate: FAIL — {} regression(s); baseline not promoted",
            regressed.len()
        );
        return ExitCode::from(3);
    }
    match save_baseline(&dir, &report.manifest) {
        Ok(stats) => eprintln!("ci-gate: PASS — baseline promoted at {} ({stats})", dir.display()),
        Err(e) => {
            eprintln!("ci-gate: baseline save failed ({}: {e})", dir.display());
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// The daemon-side gate: each entry ships as a baseline-carrying
/// submit, so an unchanged fingerprint is replayed by the daemon
/// without exploring (and counted in its `incr_reuse_total`). The
/// client recomputes the same fingerprints from explicit flags; start
/// the daemon with matching defaults (bound, strategy, budgets) or
/// pass them here explicitly — a disagreement only costs a full
/// re-analysis, never a wrong verdict.
fn run_ci_gate_remote(
    args: &ClientArgs,
    dir: &std::path::Path,
    baseline: &pitchfork::BaselineManifest,
    bound: usize,
) -> ExitCode {
    use pitchfork::incremental::{block_hashes, config_tag, entry_fingerprint};
    use pitchfork::{BaselineEntry, JobBaseline};
    let mut options = args.mode.options(bound);
    if let Some(s) = args.strategy {
        options.explorer.strategy = s;
    }
    if args.threads > 0 {
        options.explorer.threads = args.threads;
    }
    if let Some(ms) = args.max_states {
        options.explorer.max_states = ms;
    }
    let tag = config_tag(&options, bound, &args.symbolic);
    let spec = JobSpec {
        mode: args.mode,
        bound: args.bound,
        strategy: args.strategy,
        threads: args.threads,
        symbolic: args.symbolic.clone(),
        max_states: args.max_states,
        deadline_ms: args.deadline_ms,
    };
    let mut client = connect(args);
    let mut jobs = Vec::new();
    let mut replay_candidates = 0usize;
    for file in &args.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let asm = match sct_asm::assemble(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let blocks = block_hashes(&asm.program);
        let fp = entry_fingerprint(&blocks, tag);
        let submit = match baseline.get(file) {
            Some(old) if old.fingerprint == fp => {
                replay_candidates += 1;
                client.submit_source_diff(
                    file.clone(),
                    src,
                    spec.clone(),
                    JobBaseline {
                        fingerprint: fp,
                        verdict: old.verdict,
                        states: old.states,
                        schedules: old.schedules,
                        strategy: old.strategy.clone(),
                        truncated: old.truncated,
                    },
                )
            }
            _ => client.submit_source(file.clone(), src, spec.clone()),
        };
        match submit {
            Ok(id) => jobs.push((file.clone(), id, fp, blocks)),
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut fresh = baseline.clone();
    let mut regressed = Vec::new();
    for (file, id, fp, blocks) in jobs {
        let view = match client.wait(id, Duration::from_secs(600)) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let (Some(verdict), Some(stats)) = (view.verdict, view.stats) else {
            eprintln!(
                "{file}: {}{}",
                view.status,
                view.error
                    .as_deref()
                    .map(|e| format!(" ({e})"))
                    .unwrap_or_default()
            );
            return ExitCode::from(2);
        };
        let line = report_line(
            &file,
            verdict,
            stats.states,
            stats.schedules,
            stats.strategy,
            stats.truncated,
        );
        outln!("{line}");
        if verdict.is_insecure() {
            if let Some(old) = baseline.get(&file) {
                if !old.verdict.is_insecure() {
                    regressed.push(format!(
                        "REGRESSION: {file} flipped {} -> {verdict}",
                        old.verdict
                    ));
                }
            }
        }
        fresh.upsert(BaselineEntry {
            name: file,
            fingerprint: fp,
            blocks,
            verdict,
            line,
            states: stats.states,
            schedules: stats.schedules,
            strategy: stats.strategy.to_string(),
            truncated: stats.truncated,
        });
    }
    eprintln!(
        "ci-gate: {} entries — {replay_candidates} replay candidates shipped with baselines",
        args.files.len(),
    );
    if !regressed.is_empty() {
        for line in &regressed {
            eprintln!("{line}");
        }
        eprintln!(
            "ci-gate: FAIL — {} regression(s); baseline not promoted",
            regressed.len()
        );
        return ExitCode::from(3);
    }
    // Promote the manifest only: the warm memo lives daemon-side in
    // remote mode, and overwriting baseline.cache with this (empty)
    // client process's memo would cost the next local run its warm
    // start.
    if let Err(e) = fresh.save_dir(dir) {
        eprintln!("ci-gate: baseline save failed ({}: {e})", dir.display());
        return ExitCode::from(2);
    }
    eprintln!("ci-gate: PASS — baseline promoted at {}", dir.display());
    ExitCode::SUCCESS
}

// ----- fleet mode ---------------------------------------------------------

fn run_coordinate(args: Vec<String>) -> ExitCode {
    let args = parse_client_args(args);
    if args.workers.is_empty() {
        eprintln!("coordinate: no --worker addresses");
        usage();
    }
    if args.files.is_empty() {
        eprintln!("coordinate: no files");
        usage();
    }
    let mut manifest = Vec::new();
    for file in &args.files {
        match std::fs::read_to_string(file) {
            Ok(source) => manifest.push(pitchfork::fleet::ManifestEntry {
                name: file.clone(),
                source,
            }),
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let seed = match args.seed.as_deref() {
        Some(path) => match std::fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) => {
                eprintln!("--seed {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let options = pitchfork::fleet::FleetOptions {
        workers: args.workers.clone(),
        token: args.token.clone(),
        seed,
        spec: JobSpec {
            mode: args.mode,
            bound: args.bound,
            strategy: args.strategy,
            threads: args.threads,
            symbolic: args.symbolic.clone(),
            max_states: args.max_states,
            deadline_ms: args.deadline_ms,
        },
        max_attempts: args.attempts.max(1),
        job_timeout: Duration::from_secs(600),
        worker_retry_budget: args
            .retry_budget
            .unwrap_or(pitchfork::fleet::FleetOptions::default().worker_retry_budget),
        retry_backoff: pitchfork::fleet::FleetOptions::default().retry_backoff,
        read_timeout: pitchfork::fleet::FleetOptions::default().read_timeout,
    };
    let report = match pitchfork::fleet::run_fleet(&manifest, &options, |line| {
        eprintln!("{line}");
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coordinate: {e}");
            return ExitCode::from(2);
        }
    };
    // Verdict lines to stdout in manifest order — byte-identical to a
    // single-process batch over the same files; failures to stderr.
    for outcome in &report.outcomes {
        if let Some(line) = &outcome.line {
            outln!("{line}");
        }
        if let Some(error) = &outcome.error {
            eprintln!("{}: {error}", outcome.name);
        }
    }
    eprintln!(
        "fleet: {} entries over {} workers, {} flagged, {} failed, {} retries",
        report.outcomes.len(),
        options.workers.len(),
        report.flagged(),
        report.failed(),
        report.retries,
    );
    // The coordinator's own registry (fleet_dispatch_total,
    // fleet_retry_total, fleet_shard_ns with max_job exemplars) makes
    // the run inspectable; stderr keeps stdout byte-comparable.
    if sct_telemetry::enabled() {
        let snaps: Vec<_> = sct_telemetry::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.name.starts_with("fleet_"))
            .collect();
        eprint!("{}", sct_telemetry::render_prometheus(&snaps));
    }
    if report.failed() > 0 {
        ExitCode::from(2)
    } else if report.flagged() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_simple_verb(args: Vec<String>, verb: &str) -> ExitCode {
    let args = parse_client_args(args);
    let mut client = connect(&args);
    let result = match verb {
        "stats" => client.stats(),
        "retire" => client.retire(),
        "shutdown" => client.shutdown(),
        _ => unreachable!("dispatcher only passes known verbs"),
    };
    match result {
        Ok(stats) => {
            print_stats(&stats);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{verb}: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            args.remove(0);
            run_serve(args)
        }
        Some("submit") => {
            args.remove(0);
            run_submit(args)
        }
        Some("status") => {
            args.remove(0);
            run_status(args)
        }
        Some("events") => {
            args.remove(0);
            run_events(args)
        }
        Some("cancel") => {
            args.remove(0);
            run_cancel(args)
        }
        Some("coordinate") => {
            args.remove(0);
            run_coordinate(args)
        }
        Some("ci-gate") => {
            args.remove(0);
            run_ci_gate(args)
        }
        Some("metrics") => {
            args.remove(0);
            run_metrics(args)
        }
        Some(verb @ ("stats" | "retire" | "shutdown")) => {
            let verb = verb.to_string();
            args.remove(0);
            run_simple_verb(args, &verb)
        }
        _ => run_oneshot(args),
    }
}
