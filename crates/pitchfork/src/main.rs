//! The `pitchfork` command-line tool: analyze `.sasm` assembly files for
//! speculative constant-time violations.
//!
//! ```text
//! pitchfork [--bound N] [--fwd-hazards] [--symbolic ra,rb] [--verbose]
//!           [--cache PATH] FILE...
//! ```

use pitchfork::{Detector, DetectorOptions, ExplorerOptions};
use sct_core::{Params, Reg};
use std::process::ExitCode;

struct Cli {
    bound: usize,
    fwd_hazards: bool,
    symbolic: Vec<Reg>,
    verbose: bool,
    cache: Option<String>,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pitchfork [--bound N] [--fwd-hazards] [--symbolic ra,rb] [--verbose] [--cache PATH] FILE..."
    );
    eprintln!();
    eprintln!("Analyze sct assembly files for speculative constant-time violations.");
    eprintln!("  --bound N        speculation bound (default 20; paper: 250 without");
    eprintln!("                   forwarding hazards, 20 with)");
    eprintln!("  --fwd-hazards    explore store-forwarding hazards (Spectre v4 mode)");
    eprintln!("  --symbolic LIST  treat these registers as symbolic inputs");
    eprintln!("  --verbose        print schedules and traces for each violation");
    eprintln!("  --cache PATH     warm-start the expression arena and solver memo");
    eprintln!("                   from PATH (if it exists) and save back after the run");
    std::process::exit(2)
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        bound: 20,
        fwd_hazards: false,
        symbolic: Vec::new(),
        verbose: false,
        cache: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bound" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.bound = v.parse().unwrap_or_else(|_| usage());
            }
            "--fwd-hazards" => cli.fwd_hazards = true,
            "--cache" => {
                let v = args.next().unwrap_or_else(|| usage());
                cli.cache = Some(v);
            }
            "--symbolic" => {
                let v = args.next().unwrap_or_else(|| usage());
                for name in v.split(',') {
                    match Reg::parse(name.trim()) {
                        Some(r) => cli.symbolic.push(r),
                        None => {
                            eprintln!("unknown register `{name}`");
                            usage();
                        }
                    }
                }
            }
            "--verbose" => cli.verbose = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => cli.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if cli.files.is_empty() {
        usage();
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_args();
    // Warm-start: hydrate the arena and verdict memo before any file is
    // analyzed. Cache failures degrade to a cold start, never abort an
    // analysis.
    if let Some(path) = cli.cache.as_deref().map(std::path::Path::new) {
        match sct_cache::load_if_exists(path) {
            Ok(Some(stats)) => println!(
                "cache: warm start from {}: {} snapshot nodes ({} new, {} shared), {} verdicts",
                path.display(),
                stats.snapshot_nodes,
                stats.added,
                stats.preexisting,
                stats.verdicts_imported,
            ),
            Ok(None) => println!("cache: cold start ({} not found)", path.display()),
            Err(e) => eprintln!("cache: cold start ({}: {e})", path.display()),
        }
    }
    let options = DetectorOptions {
        explorer: ExplorerOptions {
            spec_bound: cli.bound,
            forwarding_hazards: cli.fwd_hazards,
            ..Default::default()
        },
        params: Params::paper(),
    };
    let detector = Detector::new(options);
    let mut any_violation = false;
    for file in &cli.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let asm = match sct_asm::assemble(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = if cli.symbolic.is_empty() {
            detector.analyze(&asm.program, &asm.config)
        } else {
            detector.analyze_symbolic(&asm.program, &asm.config, &cli.symbolic)
        };
        any_violation |= report.has_violations();
        println!(
            "{file}: {} ({} states, {} schedules explored{})",
            report.verdict(),
            report.stats.states,
            report.stats.schedules,
            if report.stats.truncated {
                ", truncated"
            } else {
                ""
            }
        );
        if cli.verbose {
            for v in &report.violations {
                // Map the flagged program point back to a source line.
                if let Some(line) = asm.lines.get(&v.pc) {
                    println!("  (near source line {line})");
                }
                print!("{v}");
            }
        }
    }
    if let Some(path) = cli.cache.as_deref().map(std::path::Path::new) {
        match sct_cache::save(path) {
            Ok(stats) => println!("cache: saved {}: {stats}", path.display()),
            Err(e) => eprintln!("cache: save failed ({}: {e})", path.display()),
        }
    }
    if any_violation {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
