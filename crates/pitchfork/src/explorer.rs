//! Worst-case schedule exploration (§4.1, Definition B.18) as an
//! explicit worklist engine.
//!
//! Exploration keeps a frontier of symbolic states and a visited set
//! keyed by [`SymState::fingerprint`] (ROB contents, interned
//! register/memory expressions, path condition). Distinct schedule
//! prefixes frequently reconverge on identical states — e.g. the
//! delayed and the eager store-address resolutions of a non-hazarding
//! store, or branch guesses after rollback — and the visited set prunes
//! every such duplicate, turning the seed's exponential re-exploration
//! into work proportional to the number of *distinct* states. The
//! pruning is sound for violation detection because a state's future
//! (and therefore every future observation) depends only on the
//! fingerprinted components; only the already-emitted schedule prefix
//! differs, and that prefix is known clean or it would have been
//! reported when first reached.
//!
//! The explorer enumerates the *tool schedules* `DT(n)`:
//!
//! * instructions are fetched eagerly until the reorder buffer holds
//!   `n` (the **speculation bound**) entries;
//! * value-producing instructions execute immediately after fetch;
//! * conditional branches fork four ways: guessed-correct (executed
//!   immediately) and guessed-wrong (executed as late as possible,
//!   delaying the rollback — maximal transient execution) for each
//!   guess;
//! * store *data* resolves immediately; store *addresses* resolve
//!   immediately in v1 mode, or fork between immediate and delayed
//!   resolution when **forwarding-hazard detection** is enabled
//!   (§4.2.1's Spectre v4 mode);
//! * for every load, one schedule per prior store with a pending address
//!   resolves exactly that store first (all possible forwarding
//!   outcomes), plus one schedule that reads memory;
//! * once the buffer is full, only the oldest instruction makes
//!   progress: retire when resolved, forced (rollback-only) execution
//!   for delayed branches, address resolution for delayed stores.

use crate::machine::SymMachine;
use crate::observe::{BoxObserver, DirectSink, Event, EventSink};
use crate::report::{Report, Violation};
use crate::state::{SymState, SymStoreAddr, SymTransient};
use crate::strategy::StrategyKind;
use sct_core::{Directive, Instr, Observation, Params, Program};
use std::sync::LazyLock;
use std::time::Instant;

static STATE_EXPAND_HIST: LazyLock<&'static sct_telemetry::Histogram> =
    LazyLock::new(|| sct_telemetry::histogram(sct_telemetry::names::STATE_EXPAND));

/// Per-state expansion timing at one clock read per state: each
/// [`ExpandTimer::stamp`] records the span since the previous stamp
/// (or [`ExpandTimer::reset`] baseline) into the process-wide
/// `state_expand_ns` histogram through a thread-owned buffer that
/// publishes when the timer drops. When telemetry is disabled the
/// timer is inert and never touches the clock.
pub(crate) struct ExpandTimer {
    spans: Option<(sct_telemetry::LocalHist, Instant)>,
}

impl ExpandTimer {
    pub(crate) fn start() -> ExpandTimer {
        ExpandTimer {
            spans: sct_telemetry::enabled()
                .then(|| (sct_telemetry::LocalHist::new(*STATE_EXPAND_HIST), Instant::now())),
        }
    }

    /// Record one finished expansion; returns the span in nanoseconds
    /// (0 when telemetry is off).
    #[inline]
    pub(crate) fn stamp(&mut self) -> u64 {
        match self.spans.as_mut() {
            Some((hist, last)) => {
                let now = Instant::now();
                let ns = sct_telemetry::saturating_ns(now.duration_since(*last));
                hist.record_ns(ns);
                *last = now;
                ns
            }
            None => 0,
        }
    }

    /// Move the baseline to now without recording (excludes a
    /// steal/park gap from the next stamp).
    #[inline]
    pub(crate) fn reset(&mut self) {
        if let Some((_, last)) = self.spans.as_mut() {
            *last = Instant::now();
        }
    }
}

/// Explorer options.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerOptions {
    /// The speculation bound `n` (maximum reorder-buffer occupancy).
    pub spec_bound: usize,
    /// The frontier order (which state expands next); every strategy
    /// reaches the same verdict, but states-to-first-witness differ.
    pub strategy: StrategyKind,
    /// Explore delayed store-address resolution (Spectre v4 mode;
    /// §4.2.1 "forwarding hazard detection").
    pub forwarding_hazards: bool,
    /// **Extension beyond the paper's tool**: explore the aliasing
    /// predictor (§3.5) — for every load, additionally try forwarding
    /// from each prior data-resolved, address-*unresolved* store via
    /// `execute i : fwd j`. Only meaningful together with
    /// [`ExplorerOptions::forwarding_hazards`] (otherwise store
    /// addresses resolve eagerly and no candidate stores exist). The
    /// paper's Pitchfork skips this because of schedule explosion (§4);
    /// our budgeted explorer makes it practical on small programs and
    /// finds the Figure 2 attack automatically.
    pub alias_prediction: bool,
    /// **Extension beyond the paper's tool**: explore mistrained
    /// indirect-jump predictions — on every `jmpi` fetch, speculate to
    /// every program point (up to [`ExplorerOptions::jmpi_target_cap`])
    /// in addition to the correct target, modelling a fully
    /// attacker-controlled branch-target buffer (Spectre v2,
    /// Appendix A). The paper's Pitchfork follows correct targets only.
    pub jmpi_mistraining: bool,
    /// Cap on explored mistrained targets per `jmpi` (keeps the v2
    /// exploration bounded).
    pub jmpi_target_cap: usize,
    /// Prune states whose fingerprint was already expanded (on by
    /// default; the bench compares both settings).
    pub dedup_states: bool,
    /// Worker threads for the frontier. `1` (the default) runs the
    /// serial engine, byte-identical to every release before parallel
    /// exploration existed; `n > 1` runs the work-stealing engine of
    /// [`crate::parallel`] on `n` workers; `0` is **adaptive** — the
    /// exploration starts serial and hands its frontier to one worker
    /// per available core only once the frontier grows wide enough to
    /// feed them (so litmus-sized programs never pay parallel
    /// overhead, and a 1-core host always stays serial). Verdicts and
    /// witness *sets* match the serial engine (the determinism
    /// contract is documented at the crate level); witness *order* and
    /// event interleaving may differ.
    pub threads: usize,
    /// Seed rotating the work-stealing victim order (see
    /// [`crate::parallel`]). Affects steal timing only, never results —
    /// the equivalence proptest varies it to hammer steal/terminate
    /// races. Leave 0 unless stress-testing.
    pub steal_seed: u64,
    /// State-expansion budget; exploration truncates beyond it.
    pub max_states: usize,
    /// Stop extending a path once it has produced a violation.
    pub stop_path_on_violation: bool,
    /// Stop the whole exploration after this many violations.
    pub max_violations: usize,
    /// Wall-clock deadline in milliseconds, measured from exploration
    /// start; `None` (the default) never times out. Enforced
    /// cooperatively at the same stop points as [`crate::Explorer::
    /// with_cancel`] cancellation: when the deadline expires the search
    /// truncates (setting [`crate::ExploreStats::deadline_exceeded`]
    /// and `truncated`) and reports what it found so far — a timed-out
    /// clean run is `Unknown`, never a false `Secure`. Deliberately
    /// *not* part of the incremental-analysis config fingerprint:
    /// a deadline changes how long the search may run, not what any
    /// completed analysis means.
    pub deadline_ms: Option<u64>,
}

impl ExplorerOptions {
    /// The worker count [`ExplorerOptions::threads`] denotes: `0`
    /// resolves to the machine's available parallelism (1 when that
    /// cannot be determined), anything else is taken literally. For
    /// `threads == 0` this is the pool size the *adaptive* engine
    /// hands over to if the frontier ever grows wide enough — the
    /// exploration itself may stay serial throughout.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

impl Default for ExplorerOptions {
    fn default() -> Self {
        ExplorerOptions {
            spec_bound: 20,
            strategy: StrategyKind::Lifo,
            forwarding_hazards: false,
            alias_prediction: false,
            jmpi_mistraining: false,
            jmpi_target_cap: 32,
            dedup_states: true,
            threads: 1,
            steal_seed: 0,
            max_states: 50_000,
            stop_path_on_violation: true,
            max_violations: 64,
            deadline_ms: None,
        }
    }
}

/// A continuation: a micro-sequence of directives plus a successor
/// filter implementing Definition B.18's branch-schedule pairing.
#[derive(Clone, Debug)]
pub(crate) enum Cont {
    /// Apply all directives, keep all successors.
    Seq(Vec<Directive>),
    /// Apply all directives, keep only successors whose final step did
    /// **not** roll back (correct-guess branch schedules).
    SeqNoRollback(Vec<Directive>),
    /// Apply all directives, keep only successors whose final step
    /// **did** roll back (forced execution of delayed wrong guesses).
    SeqRollbackOnly(Vec<Directive>),
}

impl Cont {
    fn directives(&self) -> &[Directive] {
        match self {
            Cont::Seq(d) | Cont::SeqNoRollback(d) | Cont::SeqRollbackOnly(d) => d,
        }
    }
}

/// Floor on the adaptive spill width: even on a 2-core host the
/// frontier must be this wide before the pool is worth waking.
const SPILL_WIDTH_MIN: usize = 32;

/// What [`Explorer::explore_serial_core`] ended with: a finished
/// report, or (adaptive mode) a frontier wide enough to hand to the
/// parallel engine.
enum SerialOutcome {
    Done(Report),
    Spill(crate::parallel::ParallelSeed),
}

/// The worst-case schedule explorer.
pub struct Explorer<'p> {
    pub(crate) machine: SymMachine<'p>,
    pub(crate) options: ExplorerOptions,
    /// Cooperative cancellation flag (daemon `Cancel` requests): the
    /// state loop polls it and stops early with `truncated` set, the
    /// same early-exit shape as an exhausted state budget.
    pub(crate) cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl<'p> Explorer<'p> {
    /// An explorer over `program` with paper parameters.
    pub fn new(program: &'p Program, options: ExplorerOptions) -> Self {
        Explorer {
            machine: SymMachine::new(program),
            options,
            cancel: None,
        }
    }

    /// An explorer with explicit machine parameters.
    pub fn with_params(program: &'p Program, params: Params, options: ExplorerOptions) -> Self {
        Explorer {
            machine: SymMachine::with_params(program, params),
            options,
            cancel: None,
        }
    }

    /// Attach a cooperative cancellation flag: once it reads `true`,
    /// the exploration (serial or work-stealing) stops at the next
    /// state-loop iteration and returns a truncated partial report.
    pub fn with_cancel(mut self, cancel: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// `true` once an attached cancellation flag has been raised.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Acquire))
    }

    /// The wall-clock cut-off implied by
    /// [`ExplorerOptions::deadline_ms`], anchored at the instant of
    /// this call (exploration start); `None` when no deadline is set.
    pub(crate) fn deadline_from_now(&self) -> Option<Instant> {
        self.options
            .deadline_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms))
    }

    /// Explore all worst-case schedules from `initial` with a worklist.
    ///
    /// The frontier order is [`ExplorerOptions::strategy`];
    /// deduplication happens at push time: a successor whose
    /// fingerprint is already in the visited set is dropped before it
    /// occupies frontier memory, and everything enqueued is distinct,
    /// so the pop path needs no second check. Every state is
    /// fingerprinted exactly once.
    pub fn explore(&self, initial: SymState) -> Report {
        self.explore_observed(initial, &mut [])
    }

    /// [`Explorer::explore`], streaming [`Event`]s (state expansions,
    /// violations) to `observers` as they happen.
    ///
    /// With [`ExplorerOptions::threads`] at its default of 1 this is
    /// the serial worklist engine; above 1 the frontier is worked by
    /// the work-stealing pool (see [`crate::parallel`]) with the same
    /// verdict and witness-set semantics; 0 is adaptive — serial until
    /// the frontier is wide enough to feed one worker per core, then
    /// the frontier, visited set, and partial stats are handed to the
    /// pool mid-exploration.
    pub fn explore_observed(
        &self,
        initial: SymState,
        observers: &mut [BoxObserver],
    ) -> Report {
        match self.options.threads {
            1 => match self.explore_serial_core(initial, observers, None) {
                SerialOutcome::Done(report) => report,
                SerialOutcome::Spill(..) => unreachable!("no spill threshold given"),
            },
            0 => {
                let cores = self.options.effective_threads();
                if cores <= 1 {
                    return match self.explore_serial_core(initial, observers, None) {
                        SerialOutcome::Done(report) => report,
                        SerialOutcome::Spill(..) => unreachable!("no spill threshold given"),
                    };
                }
                // Serial until the frontier could feed every core a
                // few states each; small programs finish before then
                // and never pay for the pool.
                let spill_at = (cores * 4).max(SPILL_WIDTH_MIN);
                match self.explore_serial_core(initial, observers, Some(spill_at)) {
                    SerialOutcome::Done(report) => report,
                    SerialOutcome::Spill(seed) => {
                        crate::parallel::explore_parallel(self, seed, observers, cores)
                    }
                }
            }
            threads => crate::parallel::explore_parallel(
                self,
                crate::parallel::ParallelSeed::fresh(self, initial),
                observers,
                threads,
            ),
        }
    }

    /// The serial worklist engine. With `spill_at` set (the adaptive
    /// path), the loop stops as soon as the frontier reaches that
    /// width and returns everything a parallel continuation needs;
    /// stats accumulated so far (including this thread's exact
    /// lock-wait and cache-hit deltas) travel along in the seed's base
    /// report, and the parallel merge adds its own on top.
    fn explore_serial_core(
        &self,
        initial: SymState,
        observers: &mut [BoxObserver],
        spill_at: Option<usize>,
    ) -> SerialOutcome {
        let memo_before = sct_symx::solver_memo_stats();
        let tls_before = sct_symx::thread_stats();
        let mut sink = DirectSink(observers);
        let mut report = Report::default();
        report.stats.strategy = self.options.strategy.name();
        let dedup = self.options.dedup_states;
        let mut visited: std::collections::HashSet<u128> = std::collections::HashSet::new();
        if dedup {
            visited.insert(initial.fingerprint());
        }
        let mut frontier = self.options.strategy.frontier();
        frontier.push(initial);
        let mut spilled = false;
        let deadline = self.deadline_from_now();
        let mut expand_timer = ExpandTimer::start();
        while let Some(state) = frontier.pop() {
            let deadline_hit = deadline.is_some_and(|d| Instant::now() >= d);
            if deadline_hit {
                report.stats.deadline_exceeded = true;
            }
            if report.stats.states >= self.options.max_states
                || report.violations.len() >= self.options.max_violations
                || self.is_cancelled()
                || deadline_hit
            {
                report.stats.truncated = true;
                break;
            }
            report.stats.states += 1;
            sink.emit(Event::StateExpanded {
                states: report.stats.states,
                frontier: frontier.len(),
                rob_depth: state.rob.len(),
            });
            let conts = self.continuations(&state);
            if conts.is_empty() {
                report.stats.schedules += 1;
                expand_timer.stamp();
                continue;
            }
            for cont in conts {
                for succ in self.apply(&state, &cont, &mut report, &mut sink) {
                    if dedup && !visited.insert(succ.fingerprint()) {
                        report.stats.deduped += 1;
                        continue;
                    }
                    frontier.push(succ);
                }
            }
            report.stats.frontier_peak = report.stats.frontier_peak.max(frontier.len());
            expand_timer.stamp();
            if spill_at.is_some_and(|w| frontier.len() >= w) {
                spilled = true;
                break;
            }
        }
        let memo_after = sct_symx::solver_memo_stats();
        report.stats.solver_queries = (memo_after.queries - memo_before.queries) as usize;
        report.stats.solver_memo_hits = (memo_after.hits - memo_before.hits) as usize;
        report.stats.solver_memo_misses = (memo_after.misses - memo_before.misses) as usize;
        report.stats.solver_memo_evicted = (memo_after.evicted - memo_before.evicted) as usize;
        let tls = sct_symx::thread_stats().since(&tls_before);
        report.stats.memo_lock_waits = tls.memo_lock_waits as usize;
        report.stats.arena_lock_waits = tls.arena_lock_waits as usize;
        report.stats.local_cache_hits = tls.local_cache_hits() as usize;
        if !spilled {
            return SerialOutcome::Done(report);
        }
        let mut initials = Vec::with_capacity(frontier.len());
        while let Some(state) = frontier.pop() {
            initials.push(state);
        }
        SerialOutcome::Spill(crate::parallel::ParallelSeed {
            initials,
            visited,
            base: report,
            deadline,
        })
    }

    /// Apply a continuation, checking each step's new observations for
    /// secret labels. Generic over the event sink so the serial and
    /// parallel engines share one implementation of the step/violation
    /// plumbing.
    pub(crate) fn apply<S: EventSink>(
        &self,
        state: &SymState,
        cont: &Cont,
        report: &mut Report,
        sink: &mut S,
    ) -> Vec<SymState> {
        let mut frontier = vec![state.clone()];
        let directives = cont.directives();
        for (k, &d) in directives.iter().enumerate() {
            let last = k + 1 == directives.len();
            let mut next = Vec::new();
            for st in frontier {
                let succs = match self.machine.step(&st, d) {
                    Ok(s) => s,
                    // A continuation that turns out inapplicable (e.g. a
                    // forwarding variant whose store/load interaction is
                    // blocked) simply contributes no schedules.
                    Err(_) => continue,
                };
                for succ in succs {
                    report.stats.steps += 1;
                    let new_from = st.trace.len();
                    if last {
                        let rolled_back =
                            succ.trace[new_from..].contains(&Observation::Rollback);
                        match cont {
                            Cont::SeqNoRollback(_) if rolled_back => continue,
                            Cont::SeqRollbackOnly(_) if !rolled_back => continue,
                            _ => {}
                        }
                    }
                    // Scan only this step's fresh observations for leaks.
                    if let Some(p) = succ.trace[new_from..].iter().position(|o| o.is_secret())
                    {
                        let pos = new_from + p;
                        let violation = Violation {
                            observation: succ.trace[pos],
                            schedule: succ.schedule.clone(),
                            trace: succ.trace[..=pos].to_vec(),
                            pc: succ.pc,
                            constraints: succ
                                .constraints
                                .iter()
                                .map(|c| c.to_string())
                                .collect(),
                        };
                        report
                            .stats
                            .first_witness_states
                            .get_or_insert(report.stats.states);
                        report
                            .stats
                            .first_witness_depth
                            .get_or_insert(violation.schedule.len());
                        sink.emit(Event::ViolationFound {
                            violation: &violation,
                            states: report.stats.states,
                        });
                        report.violations.push(violation);
                        if self.options.stop_path_on_violation {
                            report.stats.schedules += 1;
                            continue;
                        }
                    }
                    next.push(succ);
                }
            }
            frontier = next;
        }
        frontier
    }

    /// The Definition B.18 continuations available in `state`.
    pub(crate) fn continuations(&self, state: &SymState) -> Vec<Cont> {
        let fetchable = self.machine.program.fetch(state.pc).is_some();
        if fetchable {
            let instr = self.machine.program.fetch(state.pc).expect("checked");
            let needed = match instr {
                Instr::Call { .. } => 3,
                Instr::Ret => 4,
                _ => 1,
            };
            if state.rob.len() + needed <= self.options.spec_bound {
                return self.fetch_continuations(state, instr);
            }
        }
        self.forced_continuations(state)
    }

    /// Indices of in-flight stores with pending addresses (forwarding
    /// candidates for a load about to execute).
    fn pending_addr_stores(&self, state: &SymState) -> Vec<usize> {
        state
            .rob
            .iter()
            .filter_map(|(j, t)| match t {
                SymTransient::Store {
                    addr: SymStoreAddr::Pending(_),
                    ..
                } => Some(j),
                _ => None,
            })
            .collect()
    }

    /// Indices of in-flight stores with resolved data but *unresolved*
    /// addresses — the stores an aliasing predictor (§3.5) can forward
    /// from before anyone knows whether the addresses match.
    fn alias_candidate_stores(&self, state: &SymState) -> Vec<usize> {
        state
            .rob
            .iter()
            .filter_map(|(j, t)| match t {
                SymTransient::Store {
                    addr: SymStoreAddr::Pending(_),
                    ..
                } if t.store_resolved_data().is_some() => Some(j),
                _ => None,
            })
            .collect()
    }

    fn fetch_continuations(&self, state: &SymState, instr: &Instr) -> Vec<Cont> {
        let i = state.rob.next_index();
        match instr {
            Instr::Op { .. } => vec![Cont::Seq(vec![Directive::Fetch, Directive::Execute(i)])],
            Instr::Fence { .. } => vec![Cont::Seq(vec![Directive::Fetch])],
            Instr::Load { .. } => {
                let mut out = vec![Cont::Seq(vec![Directive::Fetch, Directive::Execute(i)])];
                if self.options.forwarding_hazards {
                    for j in self.pending_addr_stores(state) {
                        out.push(Cont::Seq(vec![
                            Directive::Fetch,
                            Directive::ExecuteAddr(j),
                            Directive::Execute(i),
                        ]));
                    }
                }
                if self.options.alias_prediction {
                    // Aliasing predictor (§3.5): speculatively forward
                    // from each data-resolved store whose address is
                    // still unknown, then resolve the load (optimistic:
                    // the unresolved store address is assumed to match).
                    for j in self.alias_candidate_stores(state) {
                        out.push(Cont::Seq(vec![
                            Directive::Fetch,
                            Directive::ExecuteFwd(i, j),
                            Directive::Execute(i),
                        ]));
                    }
                }
                out
            }
            Instr::Store { .. } => {
                let immediate = Cont::Seq(vec![
                    Directive::Fetch,
                    Directive::ExecuteValue(i),
                    Directive::ExecuteAddr(i),
                ]);
                if self.options.forwarding_hazards {
                    vec![
                        Cont::Seq(vec![Directive::Fetch, Directive::ExecuteValue(i)]),
                        immediate,
                    ]
                } else {
                    vec![immediate]
                }
            }
            Instr::Br { .. } => vec![
                // Correct guess, executed immediately (keep non-rollback).
                Cont::SeqNoRollback(vec![
                    Directive::FetchBranch(true),
                    Directive::Execute(i),
                ]),
                Cont::SeqNoRollback(vec![
                    Directive::FetchBranch(false),
                    Directive::Execute(i),
                ]),
                // Wrong guess, executed as late as possible.
                Cont::Seq(vec![Directive::FetchBranch(true)]),
                Cont::Seq(vec![Directive::FetchBranch(false)]),
            ],
            Instr::Jmpi { .. } => {
                // The paper's Pitchfork follows the correct
                // indirect-jump target only (§4); with
                // `jmpi_mistraining` we additionally speculate to every
                // program point, executing the jump as late as possible
                // (the rollback-only pattern, like wrong branch guesses).
                let mut out = Vec::new();
                let correct = self.peek_jmpi_target(state);
                if let Some(target) = correct {
                    out.push(Cont::Seq(vec![
                        Directive::FetchJump(target),
                        Directive::Execute(i),
                    ]));
                }
                if self.options.jmpi_mistraining {
                    out.extend(
                        self.machine
                            .program
                            .iter()
                            .map(|(n, _)| n)
                            .filter(|&n| Some(n) != correct)
                            .take(self.options.jmpi_target_cap)
                            .map(|n| Cont::Seq(vec![Directive::FetchJump(n)])),
                    );
                }
                out
            }
            Instr::Call { .. } => {
                // Marker i, rsp-op i+1, return-address store i+2.
                let base = vec![
                    Directive::Fetch,
                    Directive::Execute(i + 1),
                    Directive::ExecuteValue(i + 2),
                ];
                let mut immediate = base.clone();
                immediate.push(Directive::ExecuteAddr(i + 2));
                if self.options.forwarding_hazards {
                    vec![Cont::Seq(base), Cont::Seq(immediate)]
                } else {
                    vec![Cont::Seq(immediate)]
                }
            }
            Instr::Ret => {
                if state.rsb.top().is_none() {
                    // Pitchfork does not model RSB underflow (§4).
                    return vec![];
                }
                // Marker i, ret-addr load i+1, rsp-op i+2, jmpi i+3.
                let mut variants: Vec<Vec<Directive>> =
                    vec![vec![Directive::Execute(i + 1)]];
                if self.options.forwarding_hazards {
                    for j in self.pending_addr_stores(state) {
                        variants.push(vec![
                            Directive::ExecuteAddr(j),
                            Directive::Execute(i + 1),
                        ]);
                    }
                }
                variants
                    .into_iter()
                    .map(|mid| {
                        let mut seq = vec![Directive::Fetch];
                        seq.extend(mid);
                        seq.push(Directive::Execute(i + 2));
                        seq.push(Directive::Execute(i + 3));
                        Cont::Seq(seq)
                    })
                    .collect()
            }
        }
    }

    /// Forced progress at the head of a full (or starved) buffer.
    fn forced_continuations(&self, state: &SymState) -> Vec<Cont> {
        let Some(min) = state.rob.min() else {
            return vec![]; // terminal: empty buffer, nothing to fetch
        };
        let head = state.rob.get(min).expect("min present");
        match head {
            // Delayed wrong-guess branch: rollback now (and only now).
            SymTransient::Br { .. } => {
                vec![Cont::SeqRollbackOnly(vec![Directive::Execute(min)])]
            }
            // Delayed mistrained indirect jump: resolve it now; the
            // rollback redirects to the architectural target.
            SymTransient::Jmpi { .. } => vec![Cont::Seq(vec![Directive::Execute(min)])],
            // Delayed store address (v4 mode): resolve, possibly hazard.
            SymTransient::Store {
                addr: SymStoreAddr::Pending(_),
                ..
            } => vec![Cont::Seq(vec![Directive::ExecuteAddr(min)])],
            // Call marker whose return-address store delayed its address.
            SymTransient::Call => {
                match state.rob.get(min + 2) {
                    Some(SymTransient::Store {
                        addr: SymStoreAddr::Pending(_),
                        ..
                    }) => vec![Cont::Seq(vec![Directive::ExecuteAddr(min + 2)])],
                    _ => vec![Cont::Seq(vec![Directive::Retire])],
                }
            }
            _ => vec![Cont::Seq(vec![Directive::Retire])],
        }
    }

    /// Resolve and concretize the indirect-jump target on a scratch
    /// state (the real fetch/execute repeats the concretization, which
    /// is deterministic).
    fn peek_jmpi_target(&self, state: &SymState) -> Option<u64> {
        let Some(Instr::Jmpi { args }) = self.machine.program.fetch(state.pc) else {
            return None;
        };
        let mut scratch = state.clone();
        let i = scratch.rob.next_index();
        scratch.rob.push(SymTransient::Jmpi {
            args: args.clone(),
            guess: 0,
        });
        let succs = self.machine.step(&scratch, Directive::Execute(i)).ok()?;
        let succ = succs.first()?;
        match succ.rob.get(i) {
            Some(SymTransient::Jump { target }) => Some(*target),
            _ => {
                // Mispredicted against the dummy guess 0: the jump was
                // re-pushed after a rollback; read the redirect target.
                Some(succ.pc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::examples::fig1;

    #[test]
    fn explorer_finds_spectre_v1_in_fig1() {
        let (p, cfg) = fig1();
        let explorer = Explorer::new(&p, ExplorerOptions::default());
        let report = explorer.explore(SymState::from_config(&cfg));
        assert!(report.has_violations(), "{report}");
        // The witness is the secret-address read of the second load.
        let v = &report.violations[0];
        assert!(v.observation.is_secret());
        assert!(!report.stats.truncated);
    }

    #[test]
    fn explorer_respects_tiny_bound() {
        // With a speculation bound of 1 the mispredicted path cannot
        // fetch the leaking loads: no violation is reachable.
        let (p, cfg) = fig1();
        let explorer = Explorer::new(
            &p,
            ExplorerOptions {
                spec_bound: 1,
                ..Default::default()
            },
        );
        let report = explorer.explore(SymState::from_config(&cfg));
        assert!(!report.has_violations(), "{report}");
    }

    #[test]
    fn bound_three_suffices_for_fig1() {
        let (p, cfg) = fig1();
        let explorer = Explorer::new(
            &p,
            ExplorerOptions {
                spec_bound: 3,
                ..Default::default()
            },
        );
        let report = explorer.explore(SymState::from_config(&cfg));
        assert!(report.has_violations());
    }

    #[test]
    fn schedule_counts_grow_with_bound() {
        let (p, cfg) = fig1();
        let count = |bound| {
            let explorer = Explorer::new(
                &p,
                ExplorerOptions {
                    spec_bound: bound,
                    stop_path_on_violation: false,
                    max_violations: usize::MAX,
                    ..Default::default()
                },
            );
            let r = explorer.explore(SymState::from_config(&cfg));
            r.stats.states
        };
        assert!(count(4) >= count(2), "more speculation, more states");
    }
}
