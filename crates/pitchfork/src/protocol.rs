//! The daemon wire protocol: line-delimited JSON, hand-rolled.
//!
//! One request or response per line; every line is a single JSON
//! object whose `"req"` / `"resp"` field names the variant. The codec
//! is written from scratch (the workspace vendors every dependency;
//! there is no serde) and hardened for untrusted input: parsing
//! truncated, oversized, deeply nested, or garbage bytes returns a
//! [`ProtocolError`] — it never panics — and the server answers such
//! lines with [`Response::Error`].
//!
//! Serialization of the analysis vocabulary is **stable**:
//! [`Verdict`], [`ExploreStats`], [`OwnedEvent`], [`ServiceStats`],
//! [`JobStatus`], and the rendered violation ([`WireViolation`],
//! carrying `sct-core`/`sct-symx` display forms) keep their field and
//! kind names fixed so daemon and client can skew by a version.
//!
//! ```
//! use pitchfork::protocol::Request;
//!
//! let line = Request::Stats.to_line();
//! assert_eq!(Request::parse(&line).unwrap(), Request::Stats);
//! assert!(Request::parse("{ garbage").is_err());
//! ```

use crate::observe::OwnedEvent;
use crate::report::{ExploreStats, Verdict, Violation};
use crate::service::{JobBaseline, JobSpec, JobStatus, ServiceStats};
use crate::strategy::StrategyKind;
use sct_core::Reg;
use sct_telemetry::{MetricKind, MetricSnapshot};
use std::fmt;

/// The longest line either side accepts (1 MiB — a corpus source is a
/// few KiB; anything bigger is garbage or abuse).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Nesting depth cap for the JSON parser (the protocol itself nests
/// three levels; the cap only exists so crafted input cannot recurse
/// the stack away).
const MAX_DEPTH: usize = 32;

// ----- JSON values --------------------------------------------------------

/// A parsed JSON value. The protocol uses integers only; fractions and
/// exponents are rejected (there is nothing they could mean here).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the only number form the protocol uses).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in written order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn str_field(&self, key: &str) -> Result<&str, ProtocolError> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            _ => Err(ProtocolError::field(key, "string")),
        }
    }

    pub(crate) fn u64_field(&self, key: &str) -> Result<u64, ProtocolError> {
        match self.get(key) {
            Some(Json::Int(n)) if *n >= 0 && *n <= u64::MAX as i128 => Ok(*n as u64),
            _ => Err(ProtocolError::field(key, "unsigned integer")),
        }
    }

    pub(crate) fn opt_u64_field(&self, key: &str) -> Result<Option<u64>, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Int(n)) if *n >= 0 && *n <= u64::MAX as i128 => Ok(Some(*n as u64)),
            _ => Err(ProtocolError::field(key, "unsigned integer or null")),
        }
    }

    pub(crate) fn bool_field(&self, key: &str) -> Result<bool, ProtocolError> {
        match self.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(ProtocolError::field(key, "boolean")),
        }
    }

    pub(crate) fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [Json], ProtocolError> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(ProtocolError::field(key, "array")),
        }
    }

    pub(crate) fn opt_str_field(&self, key: &str) -> Result<Option<&str>, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s)),
            _ => Err(ProtocolError::field(key, "string or null")),
        }
    }

    pub(crate) fn str_items(&self, key: &str) -> Result<Vec<String>, ProtocolError> {
        let mut out = Vec::new();
        for item in self.arr_field(key)? {
            match item {
                Json::Str(s) => out.push(s.clone()),
                _ => return Err(ProtocolError::field(key, "array of strings")),
            }
        }
        Ok(out)
    }

    /// Render compactly on one line (no newlines ever appear inside:
    /// strings escape control characters).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Json::write`] into a fresh string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse one JSON value from `text` (must consume the whole input
    /// apart from surrounding whitespace).
    pub fn parse(text: &str) -> Result<Json, ProtocolError> {
        if text.len() > MAX_LINE_BYTES {
            return Err(ProtocolError::new("line exceeds size limit"));
        }
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ProtocolError::new("trailing bytes after JSON value"));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ProtocolError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(ProtocolError::new(format!(
            "expected `{}` at byte {}",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ProtocolError> {
    if depth > MAX_DEPTH {
        return Err(ProtocolError::new("nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ProtocolError::new("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ProtocolError::new("expected `,` or `}` in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ProtocolError::new("expected `,` or `]` in array")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_int(bytes, pos),
        Some(&b) => Err(ProtocolError::new(format!(
            "unexpected byte {:#04x} at {}",
            b, *pos
        ))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, ProtocolError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ProtocolError::new(format!("bad literal at byte {}", *pos)))
    }
}

fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Json, ProtocolError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(ProtocolError::new("number without digits"));
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(ProtocolError::new(
            "fractional or exponent numbers are not part of the protocol",
        ));
    }
    // At most 39 digits fit i128; longer is certainly overflow.
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ProtocolError::new("invalid number bytes"))?;
    text.parse::<i128>()
        .map(Json::Int)
        .map_err(|_| ProtocolError::new("integer out of range"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ProtocolError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ProtocolError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ProtocolError::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ProtocolError::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ProtocolError::new("invalid \\u escape"))?;
                        // Surrogates are rejected rather than paired: the
                        // writer never emits them (it escapes only
                        // control characters, which are in the BMP).
                        let c = char::from_u32(code)
                            .ok_or_else(|| ProtocolError::new("\\u escape is not a scalar"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(ProtocolError::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(ProtocolError::new("raw control byte in string"))
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // boundary math cannot fail).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| ProtocolError::new("invalid UTF-8"))?;
                let c = s.chars().next().ok_or_else(|| {
                    ProtocolError::new("unterminated string")
                })?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

// ----- framing ------------------------------------------------------------

/// The outcome of one framed-line read under [`MAX_LINE_BYTES`].
#[derive(Debug)]
pub enum CappedLine {
    /// Clean EOF before any byte of a new line.
    Eof,
    /// A complete line (delimiter stripped; an unterminated final line
    /// before EOF counts too) within the size cap.
    Line(Vec<u8>),
    /// The line overflowed the cap. The stream is mid-line, so the
    /// connection cannot be resynchronized — the caller must close (or
    /// poison) it.
    Overflow,
}

/// Read one newline-delimited line without ever buffering more than
/// [`MAX_LINE_BYTES`] + 1 bytes — the single framing routine both the
/// server and the client use, so the two sides cannot drift on
/// overflow semantics.
pub fn read_line_capped(reader: &mut impl std::io::BufRead) -> std::io::Result<CappedLine> {
    use std::io::{BufRead as _, Read as _};
    let mut line = Vec::new();
    let n = reader
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(CappedLine::Eof);
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Ok(CappedLine::Line(line))
    } else if line.len() > MAX_LINE_BYTES {
        Ok(CappedLine::Overflow)
    } else {
        Ok(CappedLine::Line(line))
    }
}

// ----- seed-chunk hex -----------------------------------------------------

/// Encode bytes as lowercase hex — seed snapshot chunks travel inside
/// JSON string fields, which cannot carry raw bytes. Doubling the size
/// is fine: chunking keeps each line far under [`MAX_LINE_BYTES`].
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode a hex string produced by [`hex_encode`] (either case
/// accepted). Odd length or a non-hex digit is an error, never a
/// silent truncation.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, ProtocolError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(ProtocolError::new("odd-length hex payload"));
    }
    let digit = |b: u8| -> Result<u8, ProtocolError> {
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| ProtocolError::new(format!("invalid hex digit {:?}", b as char)))
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

// ----- errors -------------------------------------------------------------

/// Why a line failed to parse or decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    message: String,
}

impl ProtocolError {
    pub(crate) fn new(message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            message: message.into(),
        }
    }

    fn field(key: &str, wanted: &str) -> ProtocolError {
        ProtocolError::new(format!("field `{key}`: expected {wanted}"))
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

// ----- requests -----------------------------------------------------------

/// A client → daemon message. One per line; the `"req"` field names
/// the variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Authenticate the connection (fleet mode). A daemon started with
    /// `--token` rejects every other request until a `Hello` with the
    /// matching token arrives; a daemon without a token accepts the
    /// handshake as a no-op, so clients can always send it first.
    Hello {
        /// The shared secret (empty when the client has none).
        token: String,
    },
    /// Submit `.sasm` source for analysis.
    Submit {
        /// Display name for the job.
        name: String,
        /// The assembly source text.
        source: String,
        /// Analysis options.
        spec: JobSpec,
    },
    /// Submit `.sasm` source together with a baseline record from a
    /// previous run (the incremental CI-gate path): when the daemon's
    /// recomputed fingerprint matches, it replays the baseline verdict
    /// without exploring.
    ///
    /// On the wire this is a `submit` line with an extra `baseline`
    /// object — pre-v6 daemons parse it tolerantly, ignore the unknown
    /// field, and simply run the job in full.
    SubmitDiff {
        /// Display name for the job.
        name: String,
        /// The assembly source text.
        source: String,
        /// Analysis options.
        spec: JobSpec,
        /// The prior run's fingerprint + verdict + exploration stats.
        baseline: JobBaseline,
    },
    /// Cancel a job: a queued job is retired unrun; a running job's
    /// explorer observes the cooperative flag at its next state pop and
    /// stops. Either way the job ends as [`JobStatus::Cancelled`].
    Cancel {
        /// The job.
        id: u64,
    },
    /// One chunk of an `sct-cache` snapshot (hex-encoded), shipped by
    /// the fleet coordinator to warm-start a fresh worker. Chunks
    /// accumulate per connection; the `last` chunk triggers decode +
    /// hydrate into the process-wide arena and verdict memo.
    Seed {
        /// Hex-encoded snapshot bytes (chunked under the line cap).
        chunk: String,
        /// `true` on the final chunk.
        last: bool,
    },
    /// Ask for a job's status and (when done) its verdicts.
    Status {
        /// The job.
        id: u64,
    },
    /// Subscribe to a job's event stream from cursor `since`; the
    /// server sends [`Response::EventBatch`] lines until the job is
    /// done and drained.
    Events {
        /// The job.
        id: u64,
        /// Resume cursor (0 = from the beginning).
        since: u64,
    },
    /// Liveness probe: answered immediately with [`Response::Pong`]
    /// without touching the job queue. Coordinators use it to tell a
    /// hung worker (accepts connections, never answers) from a merely
    /// busy one — the reply happens on the connection thread, so a
    /// daemon whose workers are wedged still answers.
    Ping,
    /// Ask for service statistics.
    Stats,
    /// Ask for the full telemetry snapshot: service statistics plus
    /// every registered counter, gauge, and latency histogram (the
    /// payload behind `pitchfork metrics`).
    Metrics,
    /// Retire the session's arena epoch now (snapshot save →
    /// warm-start) and report the resulting statistics.
    Retire,
    /// Stop accepting connections and exit once the queue drains.
    Shutdown,
}

impl Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Hello { token } => Json::Obj(vec![
                ("req".into(), Json::Str("hello".into())),
                ("token".into(), Json::Str(token.clone())),
            ]),
            Request::Cancel { id } => Json::Obj(vec![
                ("req".into(), Json::Str("cancel".into())),
                ("id".into(), Json::Int(*id as i128)),
            ]),
            Request::Seed { chunk, last } => Json::Obj(vec![
                ("req".into(), Json::Str("seed".into())),
                ("chunk".into(), Json::Str(chunk.clone())),
                ("last".into(), Json::Bool(*last)),
            ]),
            Request::Submit { name, source, spec } => {
                Json::Obj(submit_fields(name, source, spec))
            }
            Request::SubmitDiff {
                name,
                source,
                spec,
                baseline,
            } => {
                let mut fields = submit_fields(name, source, spec);
                fields.push(("baseline".into(), baseline_to_json(baseline)));
                Json::Obj(fields)
            }
            Request::Status { id } => Json::Obj(vec![
                ("req".into(), Json::Str("status".into())),
                ("id".into(), Json::Int(*id as i128)),
            ]),
            Request::Events { id, since } => Json::Obj(vec![
                ("req".into(), Json::Str("events".into())),
                ("id".into(), Json::Int(*id as i128)),
                ("since".into(), Json::Int(*since as i128)),
            ]),
            Request::Ping => Json::Obj(vec![("req".into(), Json::Str("ping".into()))]),
            Request::Stats => Json::Obj(vec![("req".into(), Json::Str("stats".into()))]),
            Request::Metrics => Json::Obj(vec![("req".into(), Json::Str("metrics".into()))]),
            Request::Retire => Json::Obj(vec![("req".into(), Json::Str("retire".into()))]),
            Request::Shutdown => {
                Json::Obj(vec![("req".into(), Json::Str("shutdown".into()))])
            }
        }
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    /// Decode a wire line. Never panics: truncated, oversized, or
    /// garbage input yields a [`ProtocolError`].
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let json = Json::parse(line)?;
        let kind = json.str_field("req")?;
        match kind {
            "hello" => Ok(Request::Hello {
                token: json.str_field("token")?.to_string(),
            }),
            "cancel" => Ok(Request::Cancel {
                id: json.u64_field("id")?,
            }),
            "seed" => Ok(Request::Seed {
                chunk: json.str_field("chunk")?.to_string(),
                last: json.bool_field("last")?,
            }),
            "submit" => {
                let mode = JobSpec::parse_mode(json.str_field("mode")?)?;
                let strategy = match json.opt_str_field("strategy")? {
                    None => None,
                    Some(s) => Some(
                        StrategyKind::parse(s)
                            .ok_or_else(|| ProtocolError::field("strategy", "a known strategy"))?,
                    ),
                };
                let mut symbolic = Vec::new();
                if json.get("symbolic").is_some() {
                    for name in json.str_items("symbolic")? {
                        symbolic.push(Reg::parse(&name).ok_or_else(|| {
                            ProtocolError::field("symbolic", "known register names")
                        })?);
                    }
                }
                let name = json.str_field("name")?.to_string();
                let source = json.str_field("source")?.to_string();
                let spec = JobSpec {
                    mode,
                    bound: json.opt_u64_field("bound")?.map(|b| b as usize),
                    strategy,
                    // 0 (or absent, for older clients) inherits the
                    // daemon session's parallelism.
                    threads: json.opt_u64_field("threads")?.unwrap_or(0) as usize,
                    // Absent (pre-v5 clients) inherits the daemon's
                    // state budget.
                    max_states: json.opt_u64_field("max_states")?.map(|n| n as usize),
                    // Absent (pre-deadline clients) means no cut-off.
                    deadline_ms: json.opt_u64_field("deadline_ms")?,
                    symbolic,
                };
                match json.get("baseline") {
                    Some(b) => Ok(Request::SubmitDiff {
                        name,
                        source,
                        spec,
                        baseline: baseline_from_json(b)?,
                    }),
                    None => Ok(Request::Submit { name, source, spec }),
                }
            }
            "status" => Ok(Request::Status {
                id: json.u64_field("id")?,
            }),
            "events" => Ok(Request::Events {
                id: json.u64_field("id")?,
                since: json.u64_field("since")?,
            }),
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "retire" => Ok(Request::Retire),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(format!("unknown request `{other}`"))),
        }
    }
}

fn submit_fields(name: &str, source: &str, spec: &JobSpec) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("req".into(), Json::Str("submit".into())),
        ("name".into(), Json::Str(name.to_string())),
        ("source".into(), Json::Str(source.to_string())),
        ("mode".into(), Json::Str(spec.mode.name().into())),
    ];
    if let Some(b) = spec.bound {
        fields.push(("bound".into(), Json::Int(b as i128)));
    }
    if let Some(s) = spec.strategy {
        fields.push(("strategy".into(), Json::Str(s.name().into())));
    }
    if spec.threads != 0 {
        fields.push(("threads".into(), Json::Int(spec.threads as i128)));
    }
    if let Some(ms) = spec.max_states {
        fields.push(("max_states".into(), Json::Int(ms as i128)));
    }
    if let Some(ms) = spec.deadline_ms {
        fields.push(("deadline_ms".into(), Json::Int(ms as i128)));
    }
    if !spec.symbolic.is_empty() {
        fields.push((
            "symbolic".into(),
            Json::Arr(spec.symbolic.iter().map(|r| Json::Str(r.name())).collect()),
        ));
    }
    fields
}

fn baseline_to_json(b: &JobBaseline) -> Json {
    Json::Obj(vec![
        ("fp".into(), Json::Int(b.fingerprint as i128)),
        ("verdict".into(), verdict_to_json(&b.verdict)),
        ("states".into(), Json::Int(b.states as i128)),
        ("schedules".into(), Json::Int(b.schedules as i128)),
        ("strategy".into(), Json::Str(b.strategy.clone())),
        ("truncated".into(), Json::Bool(b.truncated)),
    ])
}

// The baseline object itself parses strictly: a submit carrying a
// malformed baseline is rejected rather than silently run in full, so
// client-side encoding bugs surface immediately.
fn baseline_from_json(json: &Json) -> Result<JobBaseline, ProtocolError> {
    let verdict = json
        .get("verdict")
        .ok_or_else(|| ProtocolError::field("baseline.verdict", "a verdict object"))?;
    Ok(JobBaseline {
        fingerprint: json.u64_field("fp")?,
        verdict: verdict_from_json(verdict)?,
        states: json.u64_field("states")? as usize,
        schedules: json.u64_field("schedules")? as usize,
        strategy: json.str_field("strategy")?.to_string(),
        truncated: json.bool_field("truncated")?,
    })
}

impl JobSpec {
    fn parse_mode(name: &str) -> Result<crate::service::JobMode, ProtocolError> {
        crate::service::JobMode::parse(name)
            .ok_or_else(|| ProtocolError::field("mode", "one of v1, v4, alias, v2"))
    }
}

// ----- responses ----------------------------------------------------------

/// A violation in wire form: the witness path rendered to the stable
/// display strings of `sct-core` (observation, schedule, trace) and
/// `sct-symx` (path constraints).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireViolation {
    /// Program point of the leak.
    pub pc: u64,
    /// The secret-labeled observation, rendered.
    pub observation: String,
    /// The worst-case schedule prefix, rendered.
    pub schedule: String,
    /// The observation trace, rendered per entry.
    pub trace: Vec<String>,
    /// Path constraints active at the leak, rendered.
    pub constraints: Vec<String>,
}

impl From<&Violation> for WireViolation {
    fn from(v: &Violation) -> WireViolation {
        WireViolation {
            pc: v.pc,
            observation: v.observation.to_string(),
            schedule: v.schedule.to_string(),
            trace: v.trace.iter().map(|o| o.to_string()).collect(),
            constraints: v.constraints.clone(),
        }
    }
}

/// A daemon → client message. One per line; the `"resp"` field names
/// the variant.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A submission was accepted (or immediately failed — query its
    /// status) under this job id.
    Accepted {
        /// The assigned job id.
        id: u64,
    },
    /// A job's status, and its verdicts once done.
    Verdicts {
        /// The job.
        id: u64,
        /// Lifecycle state.
        status: JobStatus,
        /// The typed verdict (`None` until done).
        verdict: Option<Verdict>,
        /// Exploration statistics (`None` until done).
        stats: Option<ExploreStats>,
        /// The witnesses, rendered (empty until done or when secure).
        violations: Vec<WireViolation>,
        /// The failure message for [`JobStatus::Failed`] jobs.
        error: Option<String>,
        /// Wall-clock milliseconds the job has been (or was) running
        /// (`None` while queued, from older daemons, or for
        /// failed-at-submission jobs).
        elapsed_ms: Option<u64>,
        /// When the submitted per-job state budget exceeded the
        /// daemon's cap, the budget actually applied (`None` when no
        /// clamp happened or from older daemons).
        clamped_states: Option<u64>,
    },
    /// A slice of a job's event stream.
    EventBatch {
        /// The job.
        id: u64,
        /// Events from the requested cursor on.
        events: Vec<OwnedEvent>,
        /// Cursor to resume from.
        next: u64,
        /// `true` when the job is terminal and the log is drained —
        /// the last batch of the subscription.
        done: bool,
        /// Events this job has lost to the daemon's retention cap so
        /// far (0 normally; absent on older daemons).
        dropped: u64,
    },
    /// Service statistics.
    Stats {
        /// The counters.
        stats: ServiceStats,
    },
    /// The full telemetry snapshot: service statistics plus every
    /// registered metric.
    Metrics {
        /// The service counters (same payload as [`Response::Stats`]).
        stats: ServiceStats,
        /// Every registered counter, gauge, and histogram.
        metrics: Vec<MetricSnapshot>,
    },
    /// A snapshot seed was hydrated into the worker's arena and memo
    /// (the answer to the final [`Request::Seed`] chunk; intermediate
    /// chunks answer with `nodes == 0 && verdicts == 0`).
    Seeded {
        /// Arena nodes added by the hydration.
        nodes: u64,
        /// Solver verdicts imported into the memo.
        verdicts: u64,
    },
    /// The daemon is alive (the answer to [`Request::Ping`]), with a
    /// coarse load signal.
    Pong {
        /// Jobs currently executing.
        in_flight: u64,
        /// Jobs waiting in the queue.
        queued: u64,
    },
    /// The request could not be served (parse failure, unknown job,
    /// internal error). The connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn verdict_to_json(v: &Verdict) -> Json {
    match v {
        Verdict::Secure => Json::Obj(vec![("kind".into(), Json::Str("secure".into()))]),
        Verdict::Insecure { witnesses } => Json::Obj(vec![
            ("kind".into(), Json::Str("insecure".into())),
            ("witnesses".into(), Json::Int(*witnesses as i128)),
        ]),
        Verdict::Unknown { explored } => Json::Obj(vec![
            ("kind".into(), Json::Str("unknown".into())),
            ("explored".into(), Json::Int(*explored as i128)),
        ]),
    }
}

fn verdict_from_json(json: &Json) -> Result<Verdict, ProtocolError> {
    match json.str_field("kind")? {
        "secure" => Ok(Verdict::Secure),
        "insecure" => Ok(Verdict::Insecure {
            witnesses: json.u64_field("witnesses")? as usize,
        }),
        "unknown" => Ok(Verdict::Unknown {
            explored: json.u64_field("explored")? as usize,
        }),
        other => Err(ProtocolError::new(format!("unknown verdict `{other}`"))),
    }
}

fn opt_usize_json(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::Int(n as i128),
        None => Json::Null,
    }
}

fn explore_stats_to_json(s: &ExploreStats) -> Json {
    Json::Obj(vec![
        ("strategy".into(), Json::Str(s.strategy.into())),
        (
            "first_witness_states".into(),
            opt_usize_json(s.first_witness_states),
        ),
        (
            "first_witness_depth".into(),
            opt_usize_json(s.first_witness_depth),
        ),
        ("states".into(), Json::Int(s.states as i128)),
        ("deduped".into(), Json::Int(s.deduped as i128)),
        ("frontier_peak".into(), Json::Int(s.frontier_peak as i128)),
        ("schedules".into(), Json::Int(s.schedules as i128)),
        ("steps".into(), Json::Int(s.steps as i128)),
        ("solver_queries".into(), Json::Int(s.solver_queries as i128)),
        (
            "solver_memo_hits".into(),
            Json::Int(s.solver_memo_hits as i128),
        ),
        (
            "solver_memo_misses".into(),
            Json::Int(s.solver_memo_misses as i128),
        ),
        (
            "solver_memo_evicted".into(),
            Json::Int(s.solver_memo_evicted as i128),
        ),
        ("threads".into(), Json::Int(s.threads as i128)),
        (
            "arena_lock_waits".into(),
            Json::Int(s.arena_lock_waits as i128),
        ),
        (
            "memo_lock_waits".into(),
            Json::Int(s.memo_lock_waits as i128),
        ),
        ("steals".into(), Json::Int(s.steals as i128)),
        ("steal_fails".into(), Json::Int(s.steal_fails as i128)),
        (
            "local_cache_hits".into(),
            Json::Int(s.local_cache_hits as i128),
        ),
        ("truncated".into(), Json::Bool(s.truncated)),
        ("deadline_exceeded".into(), Json::Bool(s.deadline_exceeded)),
    ])
}

fn explore_stats_from_json(json: &Json) -> Result<ExploreStats, ProtocolError> {
    // The strategy string must map back to a `&'static str`; unknown
    // names (a newer daemon) degrade to the default rather than erroring
    // a whole verdict line away.
    let strategy = StrategyKind::parse(json.str_field("strategy")?)
        .map(StrategyKind::name)
        .unwrap_or("lifo");
    Ok(ExploreStats {
        strategy,
        first_witness_states: json
            .opt_u64_field("first_witness_states")?
            .map(|n| n as usize),
        first_witness_depth: json
            .opt_u64_field("first_witness_depth")?
            .map(|n| n as usize),
        states: json.u64_field("states")? as usize,
        deduped: json.u64_field("deduped")? as usize,
        frontier_peak: json.u64_field("frontier_peak")? as usize,
        schedules: json.u64_field("schedules")? as usize,
        steps: json.u64_field("steps")? as usize,
        solver_queries: json.u64_field("solver_queries")? as usize,
        solver_memo_hits: json.u64_field("solver_memo_hits")? as usize,
        solver_memo_misses: json.u64_field("solver_memo_misses")? as usize,
        solver_memo_evicted: json.u64_field("solver_memo_evicted")? as usize,
        // Added after the v1 wire format: tolerate their absence (an
        // older daemon) and default to the serial engine's values.
        threads: json.opt_u64_field("threads")?.unwrap_or(1) as usize,
        arena_lock_waits: json.opt_u64_field("arena_lock_waits")?.unwrap_or(0) as usize,
        memo_lock_waits: json.opt_u64_field("memo_lock_waits")?.unwrap_or(0) as usize,
        steals: json.opt_u64_field("steals")?.unwrap_or(0) as usize,
        steal_fails: json.opt_u64_field("steal_fails")?.unwrap_or(0) as usize,
        local_cache_hits: json.opt_u64_field("local_cache_hits")?.unwrap_or(0) as usize,
        truncated: json.bool_field("truncated")?,
        // Post-deadline wire format: absent from older daemons.
        deadline_exceeded: matches!(json.get("deadline_exceeded"), Some(Json::Bool(true))),
    })
}

fn event_to_json(e: &OwnedEvent) -> Json {
    match e {
        OwnedEvent::StateExpanded {
            states,
            frontier,
            rob_depth,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("state-expanded".into())),
            ("states".into(), Json::Int(*states as i128)),
            ("frontier".into(), Json::Int(*frontier as i128)),
            ("rob_depth".into(), Json::Int(*rob_depth as i128)),
        ]),
        OwnedEvent::ViolationFound {
            states,
            pc,
            observation,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("violation-found".into())),
            ("states".into(), Json::Int(*states as i128)),
            ("pc".into(), Json::Int(*pc as i128)),
            ("observation".into(), Json::Str(observation.clone())),
        ]),
        OwnedEvent::ItemFinished {
            name,
            flagged,
            states,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str("item-finished".into())),
            ("name".into(), Json::Str(name.clone())),
            ("flagged".into(), Json::Bool(*flagged)),
            ("states".into(), Json::Int(*states as i128)),
        ]),
        OwnedEvent::EpochRetired { epoch, rehydrated } => Json::Obj(vec![
            ("kind".into(), Json::Str("epoch-retired".into())),
            ("epoch".into(), Json::Int(*epoch as i128)),
            ("rehydrated".into(), Json::Int(*rehydrated as i128)),
        ]),
    }
}

fn event_from_json(json: &Json) -> Result<OwnedEvent, ProtocolError> {
    match json.str_field("kind")? {
        "state-expanded" => Ok(OwnedEvent::StateExpanded {
            states: json.u64_field("states")? as usize,
            frontier: json.u64_field("frontier")? as usize,
            rob_depth: json.u64_field("rob_depth")? as usize,
        }),
        "violation-found" => Ok(OwnedEvent::ViolationFound {
            states: json.u64_field("states")? as usize,
            pc: json.u64_field("pc")?,
            observation: json.str_field("observation")?.to_string(),
        }),
        "item-finished" => Ok(OwnedEvent::ItemFinished {
            name: json.str_field("name")?.to_string(),
            flagged: json.bool_field("flagged")?,
            states: json.u64_field("states")? as usize,
        }),
        "epoch-retired" => Ok(OwnedEvent::EpochRetired {
            epoch: json.u64_field("epoch")?,
            rehydrated: json.u64_field("rehydrated")? as usize,
        }),
        other => Err(ProtocolError::new(format!("unknown event `{other}`"))),
    }
}

fn violation_to_json(v: &WireViolation) -> Json {
    Json::Obj(vec![
        ("pc".into(), Json::Int(v.pc as i128)),
        ("observation".into(), Json::Str(v.observation.clone())),
        ("schedule".into(), Json::Str(v.schedule.clone())),
        (
            "trace".into(),
            Json::Arr(v.trace.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "constraints".into(),
            Json::Arr(v.constraints.iter().cloned().map(Json::Str).collect()),
        ),
    ])
}

fn violation_from_json(json: &Json) -> Result<WireViolation, ProtocolError> {
    Ok(WireViolation {
        pc: json.u64_field("pc")?,
        observation: json.str_field("observation")?.to_string(),
        schedule: json.str_field("schedule")?.to_string(),
        trace: json.str_items("trace")?,
        constraints: json.str_items("constraints")?,
    })
}

/// The original (v1) `ServiceStats` wire fields, in stable order.
/// Required on parse; fields added later are listed in
/// `SERVICE_STAT_FIELDS_V2` and tolerated when absent, so a new client
/// can read an old daemon's stats line.
const SERVICE_STAT_FIELDS: [&str; 16] = [
    "jobs_submitted",
    "jobs_done",
    "jobs_failed",
    "queued",
    "epochs_retired",
    "jobs_since_retire",
    "arena_nodes",
    "arena_epoch",
    "memo_entries",
    "memo_capacity",
    "memo_hits",
    "memo_misses",
    "memo_evicted",
    "memo_stale_dropped",
    "last_reload_nodes",
    "last_reload_verdicts",
];

/// Fields added with concurrent job execution (parse defaults to 0).
const SERVICE_STAT_FIELDS_V2: [&str; 3] = ["in_flight", "arena_lock_waits", "memo_lock_waits"];

/// Fields added with the work-stealing engine — per-job-exact steal
/// and thread-cache counters (parse defaults to 0, same tolerance as
/// the v2 set).
const SERVICE_STAT_FIELDS_V3: [&str; 3] = ["steals", "steal_fails", "local_cache_hits"];

/// Fields added with telemetry — job-latency roll-ups and the event
/// retention-drop counter (parse defaults to 0, same tolerance as the
/// v2/v3 sets).
const SERVICE_STAT_FIELDS_V4: [&str; 4] = [
    "queue_wait_ms_total",
    "run_ms_total",
    "jobs_timed",
    "events_dropped",
];

/// Fields added with fleet mode — cancellation, budget clamping, and
/// snapshot seeding counters (parse defaults to 0, same tolerance as
/// the v2–v4 sets).
const SERVICE_STAT_FIELDS_V5: [&str; 4] = [
    "jobs_cancelled",
    "budget_clamped_jobs",
    "seed_nodes_added",
    "seed_verdicts_imported",
];

/// Fields added with the robustness work — per-job deadlines and the
/// daemon's write-ahead job journal (parse defaults to 0, same
/// tolerance as the v2–v5 sets).
const SERVICE_STAT_FIELDS_V6: [&str; 2] = ["jobs_timed_out", "jobs_replayed"];

fn service_stats_values(s: &ServiceStats) -> [u64; 16] {
    [
        s.jobs_submitted,
        s.jobs_done,
        s.jobs_failed,
        s.queued,
        s.epochs_retired,
        s.jobs_since_retire,
        s.arena_nodes,
        s.arena_epoch,
        s.memo_entries,
        s.memo_capacity,
        s.memo_hits,
        s.memo_misses,
        s.memo_evicted,
        s.memo_stale_dropped,
        s.last_reload_nodes,
        s.last_reload_verdicts,
    ]
}

fn service_stats_to_json(s: &ServiceStats) -> Json {
    let mut fields: Vec<(String, Json)> = SERVICE_STAT_FIELDS
        .iter()
        .zip(service_stats_values(s))
        .map(|(k, v)| ((*k).to_string(), Json::Int(v as i128)))
        .collect();
    for (k, v) in SERVICE_STAT_FIELDS_V2
        .iter()
        .zip([s.in_flight, s.arena_lock_waits, s.memo_lock_waits])
    {
        fields.push(((*k).to_string(), Json::Int(v as i128)));
    }
    for (k, v) in SERVICE_STAT_FIELDS_V3
        .iter()
        .zip([s.steals, s.steal_fails, s.local_cache_hits])
    {
        fields.push(((*k).to_string(), Json::Int(v as i128)));
    }
    for (k, v) in SERVICE_STAT_FIELDS_V4.iter().zip([
        s.queue_wait_ms_total,
        s.run_ms_total,
        s.jobs_timed,
        s.events_dropped,
    ]) {
        fields.push(((*k).to_string(), Json::Int(v as i128)));
    }
    for (k, v) in SERVICE_STAT_FIELDS_V5.iter().zip([
        s.jobs_cancelled,
        s.budget_clamped_jobs,
        s.seed_nodes_added,
        s.seed_verdicts_imported,
    ]) {
        fields.push(((*k).to_string(), Json::Int(v as i128)));
    }
    for (k, v) in SERVICE_STAT_FIELDS_V6
        .iter()
        .zip([s.jobs_timed_out, s.jobs_replayed])
    {
        fields.push(((*k).to_string(), Json::Int(v as i128)));
    }
    Json::Obj(fields)
}

fn service_stats_from_json(json: &Json) -> Result<ServiceStats, ProtocolError> {
    let mut v = [0u64; 16];
    for (slot, key) in v.iter_mut().zip(SERVICE_STAT_FIELDS) {
        *slot = json.u64_field(key)?;
    }
    let mut v2 = [0u64; 3];
    for (slot, key) in v2.iter_mut().zip(SERVICE_STAT_FIELDS_V2) {
        *slot = json.opt_u64_field(key)?.unwrap_or(0);
    }
    let mut v3 = [0u64; 3];
    for (slot, key) in v3.iter_mut().zip(SERVICE_STAT_FIELDS_V3) {
        *slot = json.opt_u64_field(key)?.unwrap_or(0);
    }
    let mut v4 = [0u64; 4];
    for (slot, key) in v4.iter_mut().zip(SERVICE_STAT_FIELDS_V4) {
        *slot = json.opt_u64_field(key)?.unwrap_or(0);
    }
    let mut v5 = [0u64; 4];
    for (slot, key) in v5.iter_mut().zip(SERVICE_STAT_FIELDS_V5) {
        *slot = json.opt_u64_field(key)?.unwrap_or(0);
    }
    let mut v6 = [0u64; 2];
    for (slot, key) in v6.iter_mut().zip(SERVICE_STAT_FIELDS_V6) {
        *slot = json.opt_u64_field(key)?.unwrap_or(0);
    }
    Ok(ServiceStats {
        jobs_submitted: v[0],
        jobs_done: v[1],
        jobs_failed: v[2],
        queued: v[3],
        epochs_retired: v[4],
        jobs_since_retire: v[5],
        arena_nodes: v[6],
        arena_epoch: v[7],
        memo_entries: v[8],
        memo_capacity: v[9],
        memo_hits: v[10],
        memo_misses: v[11],
        memo_evicted: v[12],
        memo_stale_dropped: v[13],
        last_reload_nodes: v[14],
        last_reload_verdicts: v[15],
        in_flight: v2[0],
        arena_lock_waits: v2[1],
        memo_lock_waits: v2[2],
        steals: v3[0],
        steal_fails: v3[1],
        local_cache_hits: v3[2],
        queue_wait_ms_total: v4[0],
        run_ms_total: v4[1],
        jobs_timed: v4[2],
        events_dropped: v4[3],
        jobs_cancelled: v5[0],
        budget_clamped_jobs: v5[1],
        seed_nodes_added: v5[2],
        seed_verdicts_imported: v5[3],
        jobs_timed_out: v6[0],
        jobs_replayed: v6[1],
    })
}

/// One metric in wire form: flat scalar fields plus the bucket array
/// for histograms. Tolerant on parse — `sum_ns` / `max_ns` / `buckets`
/// default to empty (counters and gauges never carry them, and a
/// shorter bucket array from an older build still decodes).
fn metric_to_json(m: &MetricSnapshot) -> Json {
    let mut fields = vec![
        ("name".into(), Json::Str(m.name.clone())),
        ("kind".into(), Json::Str(m.kind.name().into())),
        ("value".into(), Json::Int(m.value as i128)),
    ];
    if m.kind == MetricKind::Histogram {
        fields.push(("sum_ns".into(), Json::Int(m.sum_ns as i128)));
        fields.push(("max_ns".into(), Json::Int(m.max_ns as i128)));
        if m.max_job != 0 {
            fields.push(("max_job".into(), Json::Int(m.max_job as i128)));
        }
        fields.push((
            "buckets".into(),
            Json::Arr(m.buckets.iter().map(|&n| Json::Int(n as i128)).collect()),
        ));
    }
    Json::Obj(fields)
}

fn metric_from_json(json: &Json) -> Result<MetricSnapshot, ProtocolError> {
    let kind = MetricKind::parse(json.str_field("kind")?)
        .ok_or_else(|| ProtocolError::field("kind", "counter, gauge, or histogram"))?;
    let mut buckets = Vec::new();
    match json.get("buckets") {
        None | Some(Json::Null) => {}
        Some(Json::Arr(items)) => {
            for item in items {
                match item {
                    Json::Int(n) if *n >= 0 && *n <= u64::MAX as i128 => {
                        buckets.push(*n as u64)
                    }
                    _ => {
                        return Err(ProtocolError::field(
                            "buckets",
                            "array of unsigned integers",
                        ))
                    }
                }
            }
        }
        Some(_) => return Err(ProtocolError::field("buckets", "array or null")),
    }
    Ok(MetricSnapshot {
        name: json.str_field("name")?.to_string(),
        kind,
        value: json.u64_field("value")?,
        sum_ns: json.opt_u64_field("sum_ns")?.unwrap_or(0),
        max_ns: json.opt_u64_field("max_ns")?.unwrap_or(0),
        // Exemplar job id; absent on pre-fleet daemons.
        max_job: json.opt_u64_field("max_job")?.unwrap_or(0),
        buckets,
    })
}

impl Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Accepted { id } => Json::Obj(vec![
                ("resp".into(), Json::Str("accepted".into())),
                ("id".into(), Json::Int(*id as i128)),
            ]),
            Response::Verdicts {
                id,
                status,
                verdict,
                stats,
                violations,
                error,
                elapsed_ms,
                clamped_states,
            } => {
                let mut fields = vec![
                    ("resp".into(), Json::Str("verdicts".into())),
                    ("id".into(), Json::Int(*id as i128)),
                    ("status".into(), Json::Str(status.name().into())),
                ];
                if let Some(v) = verdict {
                    fields.push(("verdict".into(), verdict_to_json(v)));
                }
                if let Some(s) = stats {
                    fields.push(("stats".into(), explore_stats_to_json(s)));
                }
                if !violations.is_empty() {
                    fields.push((
                        "violations".into(),
                        Json::Arr(violations.iter().map(violation_to_json).collect()),
                    ));
                }
                if let Some(e) = error {
                    fields.push(("error".into(), Json::Str(e.clone())));
                }
                if let Some(ms) = elapsed_ms {
                    fields.push(("elapsed_ms".into(), Json::Int(*ms as i128)));
                }
                if let Some(cs) = clamped_states {
                    fields.push(("clamped_states".into(), Json::Int(*cs as i128)));
                }
                Json::Obj(fields)
            }
            Response::EventBatch {
                id,
                events,
                next,
                done,
                dropped,
            } => Json::Obj(vec![
                ("resp".into(), Json::Str("events".into())),
                ("id".into(), Json::Int(*id as i128)),
                (
                    "events".into(),
                    Json::Arr(events.iter().map(event_to_json).collect()),
                ),
                ("next".into(), Json::Int(*next as i128)),
                ("done".into(), Json::Bool(*done)),
                ("dropped".into(), Json::Int(*dropped as i128)),
            ]),
            Response::Stats { stats } => Json::Obj(vec![
                ("resp".into(), Json::Str("stats".into())),
                ("stats".into(), service_stats_to_json(stats)),
            ]),
            Response::Metrics { stats, metrics } => Json::Obj(vec![
                ("resp".into(), Json::Str("metrics".into())),
                ("stats".into(), service_stats_to_json(stats)),
                (
                    "metrics".into(),
                    Json::Arr(metrics.iter().map(metric_to_json).collect()),
                ),
            ]),
            Response::Seeded { nodes, verdicts } => Json::Obj(vec![
                ("resp".into(), Json::Str("seeded".into())),
                ("nodes".into(), Json::Int(*nodes as i128)),
                ("verdicts".into(), Json::Int(*verdicts as i128)),
            ]),
            Response::Pong { in_flight, queued } => Json::Obj(vec![
                ("resp".into(), Json::Str("pong".into())),
                ("in_flight".into(), Json::Int(*in_flight as i128)),
                ("queued".into(), Json::Int(*queued as i128)),
            ]),
            Response::Error { message } => Json::Obj(vec![
                ("resp".into(), Json::Str("error".into())),
                ("message".into(), Json::Str(message.clone())),
            ]),
        }
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    /// Decode a wire line. Never panics; garbage yields a
    /// [`ProtocolError`].
    pub fn parse(line: &str) -> Result<Response, ProtocolError> {
        let json = Json::parse(line)?;
        match json.str_field("resp")? {
            "accepted" => Ok(Response::Accepted {
                id: json.u64_field("id")?,
            }),
            "verdicts" => {
                let status = JobStatus::parse(json.str_field("status")?)
                    .ok_or_else(|| ProtocolError::field("status", "a job status"))?;
                let verdict = match json.get("verdict") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(verdict_from_json(v)?),
                };
                let stats = match json.get("stats") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(explore_stats_from_json(s)?),
                };
                let violations = match json.get("violations") {
                    None => Vec::new(),
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(violation_from_json)
                        .collect::<Result<_, _>>()?,
                    Some(_) => return Err(ProtocolError::field("violations", "array")),
                };
                Ok(Response::Verdicts {
                    id: json.u64_field("id")?,
                    status,
                    verdict,
                    stats,
                    violations,
                    error: json.opt_str_field("error")?.map(String::from),
                    // Tolerant: absent on daemons predating telemetry.
                    elapsed_ms: json.opt_u64_field("elapsed_ms")?,
                    // Tolerant: absent on daemons predating fleet mode.
                    clamped_states: json.opt_u64_field("clamped_states")?,
                })
            }
            "events" => {
                let events = json
                    .arr_field("events")?
                    .iter()
                    .map(event_from_json)
                    .collect::<Result<_, _>>()?;
                Ok(Response::EventBatch {
                    id: json.u64_field("id")?,
                    events,
                    next: json.u64_field("next")?,
                    done: json.bool_field("done")?,
                    // Tolerant: absent on daemons predating retention.
                    dropped: json.opt_u64_field("dropped")?.unwrap_or(0),
                })
            }
            "stats" => Ok(Response::Stats {
                stats: service_stats_from_json(
                    json.get("stats")
                        .ok_or_else(|| ProtocolError::field("stats", "object"))?,
                )?,
            }),
            "metrics" => {
                let metrics = json
                    .arr_field("metrics")?
                    .iter()
                    .map(metric_from_json)
                    .collect::<Result<_, _>>()?;
                Ok(Response::Metrics {
                    stats: service_stats_from_json(
                        json.get("stats")
                            .ok_or_else(|| ProtocolError::field("stats", "object"))?,
                    )?,
                    metrics,
                })
            }
            "seeded" => Ok(Response::Seeded {
                nodes: json.u64_field("nodes")?,
                verdicts: json.u64_field("verdicts")?,
            }),
            "pong" => Ok(Response::Pong {
                in_flight: json.u64_field("in_flight")?,
                queued: json.u64_field("queued")?,
            }),
            "error" => Ok(Response::Error {
                message: json.str_field("message")?.to_string(),
            }),
            other => Err(ProtocolError::new(format!("unknown response `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::JobMode;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                token: "s3cret\"token".into(),
            },
            Request::Submit {
                name: "fig1".into(),
                source: ".entry L1\nL1:\n    ra = add rb, 0x4\n".into(),
                spec: JobSpec {
                    mode: JobMode::V4,
                    bound: Some(20),
                    strategy: Some(StrategyKind::DeepestRob),
                    threads: 4,
                    max_states: Some(10_000),
                    deadline_ms: Some(2_500),
                    symbolic: vec![sct_core::reg::names::RA],
                },
            },
            Request::Cancel { id: 7 },
            Request::Ping,
            Request::Seed {
                chunk: "53435443".into(),
                last: true,
            },
            Request::Status { id: 7 },
            Request::Events { id: 7, since: 42 },
            Request::Stats,
            Request::Metrics,
            Request::Retire,
            Request::Shutdown,
            Request::SubmitDiff {
                name: "fig1".into(),
                source: ".entry L1\nL1:\n    ra = add rb, 0x4\n".into(),
                spec: JobSpec {
                    mode: JobMode::V1,
                    bound: Some(16),
                    strategy: Some(StrategyKind::Fifo),
                    threads: 0,
                    max_states: Some(50_000),
                    deadline_ms: None,
                    symbolic: vec![sct_core::reg::names::RA],
                },
                baseline: JobBaseline {
                    fingerprint: u64::MAX - 5,
                    verdict: Verdict::Insecure { witnesses: 2 },
                    states: 412,
                    schedules: 31,
                    strategy: "bfs".into(),
                    truncated: false,
                },
            },
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn submit_diff_wire_form_is_a_submit_line() {
        // Pre-v6 compatibility: the diff submit is a plain `submit`
        // line plus a `baseline` object an old daemon ignores. Strip
        // the extra field and the line must parse as a plain submit.
        let req = Request::SubmitDiff {
            name: "gate".into(),
            source: ".entry L1\nL1:\n    ret\n".into(),
            spec: JobSpec {
                mode: JobMode::V1,
                bound: None,
                strategy: None,
                threads: 0,
                max_states: None,
                deadline_ms: None,
                symbolic: vec![],
            },
            baseline: JobBaseline {
                fingerprint: 99,
                verdict: Verdict::Secure,
                states: 10,
                schedules: 1,
                strategy: "bfs".into(),
                truncated: false,
            },
        };
        let line = req.to_line();
        assert!(line.contains("\"req\":\"submit\""), "{line}");
        match Request::parse(&line).unwrap() {
            Request::SubmitDiff { baseline, .. } => {
                assert_eq!(baseline.fingerprint, 99);
                assert_eq!(baseline.verdict, Verdict::Secure);
            }
            other => panic!("expected SubmitDiff, got {other:?}"),
        }
        // A malformed baseline object is rejected outright rather than
        // silently downgraded to a full run.
        let bad = line.replace("\"fp\":99", "\"fp\":\"nope\"");
        assert!(Request::parse(&bad).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted { id: 3 },
            Response::Verdicts {
                id: 3,
                status: JobStatus::Done,
                verdict: Some(Verdict::Insecure { witnesses: 2 }),
                stats: Some(ExploreStats {
                    first_witness_states: Some(5),
                    first_witness_depth: Some(9),
                    states: 40,
                    truncated: false,
                    ..ExploreStats::default()
                }),
                violations: vec![WireViolation {
                    pc: 3,
                    observation: "read 0x66sec".into(),
                    schedule: "fetch; exec 1".into(),
                    trace: vec!["read 0x40".into(), "read 0x66sec".into()],
                    constraints: vec!["(gt 0x4 idx)".into()],
                }],
                error: None,
                elapsed_ms: Some(125),
                clamped_states: None,
            },
            Response::Verdicts {
                id: 9,
                status: JobStatus::Cancelled,
                verdict: None,
                stats: None,
                violations: vec![],
                error: None,
                elapsed_ms: Some(12),
                clamped_states: Some(50_000),
            },
            Response::Verdicts {
                id: 11,
                status: JobStatus::TimedOut,
                verdict: Some(Verdict::Unknown { explored: 900 }),
                stats: Some(ExploreStats {
                    states: 900,
                    truncated: true,
                    deadline_exceeded: true,
                    ..ExploreStats::default()
                }),
                violations: vec![],
                error: None,
                elapsed_ms: Some(2_501),
                clamped_states: None,
            },
            Response::Seeded {
                nodes: 1_200,
                verdicts: 87,
            },
            Response::Pong {
                in_flight: 2,
                queued: 5,
            },
            Response::EventBatch {
                id: 3,
                events: vec![
                    OwnedEvent::StateExpanded {
                        states: 1,
                        frontier: 2,
                        rob_depth: 3,
                    },
                    OwnedEvent::ViolationFound {
                        states: 4,
                        pc: 3,
                        observation: "read 0x66sec".into(),
                    },
                    OwnedEvent::ItemFinished {
                        name: "fig1".into(),
                        flagged: true,
                        states: 40,
                    },
                    OwnedEvent::EpochRetired {
                        epoch: 1,
                        rehydrated: 100,
                    },
                ],
                next: 4,
                done: true,
                dropped: 17,
            },
            Response::Stats {
                stats: ServiceStats {
                    jobs_submitted: 5,
                    jobs_done: 4,
                    memo_capacity: 1 << 20,
                    queue_wait_ms_total: 12,
                    run_ms_total: 340,
                    jobs_timed: 4,
                    events_dropped: 9,
                    ..ServiceStats::default()
                },
            },
            Response::Metrics {
                stats: ServiceStats {
                    jobs_submitted: 2,
                    jobs_done: 2,
                    ..ServiceStats::default()
                },
                metrics: vec![
                    MetricSnapshot {
                        name: "job_events_dropped".into(),
                        kind: MetricKind::Counter,
                        value: 3,
                        sum_ns: 0,
                        max_ns: 0,
                        max_job: 0,
                        buckets: vec![],
                    },
                    MetricSnapshot {
                        name: "solver_check_hit_ns".into(),
                        kind: MetricKind::Histogram,
                        value: 6,
                        sum_ns: 4_096,
                        max_ns: 1_024,
                        max_job: 14,
                        buckets: vec![0, 1, 2, 3],
                    },
                ],
            },
            Response::Error {
                message: "protocol error: unexpected end of input".into(),
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn pre_v4_lines_still_parse() {
        // A stats object with only the v1 fields (an old daemon): the
        // v2/v3/v4 additions default to zero.
        let mut fields: Vec<(String, Json)> =
            vec![("resp".to_string(), Json::Str("stats".into()))];
        let inner: Vec<(String, Json)> = SERVICE_STAT_FIELDS
            .iter()
            .map(|k| ((*k).to_string(), Json::Int(7)))
            .collect();
        fields.push(("stats".to_string(), Json::Obj(inner)));
        let line = Json::Obj(fields).to_line();
        let Response::Stats { stats } = Response::parse(&line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.jobs_submitted, 7);
        assert_eq!(stats.queue_wait_ms_total, 0);
        assert_eq!(stats.jobs_timed, 0);
        assert_eq!(stats.events_dropped, 0);

        // An event batch without `dropped` and a verdicts line without
        // `elapsed_ms` (both pre-telemetry daemons).
        let batch = r#"{"resp":"events","id":1,"events":[],"next":0,"done":true}"#;
        let Response::EventBatch { dropped, .. } = Response::parse(batch).unwrap() else {
            panic!("expected events");
        };
        assert_eq!(dropped, 0);
        let verdicts = r#"{"resp":"verdicts","id":1,"status":"queued"}"#;
        let Response::Verdicts { elapsed_ms, .. } = Response::parse(verdicts).unwrap() else {
            panic!("expected verdicts");
        };
        assert_eq!(elapsed_ms, None);
    }

    #[test]
    fn pre_v5_lines_still_parse() {
        // A submit from a pre-fleet client carries no max_states; the
        // daemon must read it as "inherit the server default".
        let submit = r#"{"req":"submit","name":"fig1","source":"x","mode":"v1","threads":1}"#;
        let Request::Submit { spec, .. } = Request::parse(submit).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(spec.max_states, None);

        // A verdicts line from a pre-fleet daemon has no clamped_states.
        let verdicts = r#"{"resp":"verdicts","id":1,"status":"done"}"#;
        let Response::Verdicts { clamped_states, .. } = Response::parse(verdicts).unwrap()
        else {
            panic!("expected verdicts");
        };
        assert_eq!(clamped_states, None);

        // A metric without max_job (pre-exemplar daemon) reads as
        // "no exemplar recorded".
        let stats: Vec<(String, Json)> = SERVICE_STAT_FIELDS
            .iter()
            .map(|k| ((*k).to_string(), Json::Int(0)))
            .collect();
        let metrics = Json::Obj(vec![
            ("resp".to_string(), Json::Str("metrics".into())),
            ("stats".to_string(), Json::Obj(stats.clone())),
            (
                "metrics".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".to_string(), Json::Str("job_run_ns".into())),
                    ("kind".to_string(), Json::Str("histogram".into())),
                    ("value".to_string(), Json::Int(2)),
                    ("sum_ns".to_string(), Json::Int(64)),
                    ("max_ns".to_string(), Json::Int(48)),
                ])]),
            ),
        ])
        .to_line();
        let Response::Metrics { metrics, .. } = Response::parse(&metrics).unwrap() else {
            panic!("expected metrics");
        };
        assert_eq!(metrics[0].max_job, 0);

        // Stats with only v1–v4 fields: the v5 additions default to 0.
        let mut fields: Vec<(String, Json)> =
            vec![("resp".to_string(), Json::Str("stats".into()))];
        let inner: Vec<(String, Json)> = SERVICE_STAT_FIELDS
            .iter()
            .chain(SERVICE_STAT_FIELDS_V2.iter())
            .chain(SERVICE_STAT_FIELDS_V3.iter())
            .chain(SERVICE_STAT_FIELDS_V4.iter())
            .map(|k| ((*k).to_string(), Json::Int(3)))
            .collect();
        fields.push(("stats".to_string(), Json::Obj(inner)));
        let Response::Stats { stats } = Response::parse(&Json::Obj(fields).to_line()).unwrap()
        else {
            panic!("expected stats");
        };
        assert_eq!(stats.jobs_cancelled, 0);
        assert_eq!(stats.budget_clamped_jobs, 0);
        assert_eq!(stats.seed_nodes_added, 0);
        assert_eq!(stats.seed_verdicts_imported, 0);
    }

    #[test]
    fn metric_snapshots_reject_garbage() {
        for garbage in [
            r#"{"resp":"metrics"}"#,
            r#"{"resp":"metrics","metrics":[]}"#,
            r#"{"resp":"metrics","stats":{},"metrics":[]}"#,
            r#"{"resp":"metrics","stats":null,"metrics":[{"name":"x","kind":"counter","value":1}]}"#,
        ] {
            assert!(Response::parse(garbage).is_err(), "{garbage:?}");
        }
        // Unknown metric kinds and negative buckets are errors, not
        // panics or silent misreads.
        let stats: Vec<(String, Json)> = SERVICE_STAT_FIELDS
            .iter()
            .map(|k| ((*k).to_string(), Json::Int(0)))
            .collect();
        let mk = |metric: Json| {
            Json::Obj(vec![
                ("resp".to_string(), Json::Str("metrics".into())),
                ("stats".to_string(), Json::Obj(stats.clone())),
                ("metrics".to_string(), Json::Arr(vec![metric])),
            ])
            .to_line()
        };
        let bad_kind = mk(Json::Obj(vec![
            ("name".to_string(), Json::Str("x".into())),
            ("kind".to_string(), Json::Str("speedometer".into())),
            ("value".to_string(), Json::Int(1)),
        ]));
        assert!(Response::parse(&bad_kind).is_err());
        let bad_bucket = mk(Json::Obj(vec![
            ("name".to_string(), Json::Str("x".into())),
            ("kind".to_string(), Json::Str("histogram".into())),
            ("value".to_string(), Json::Int(1)),
            ("buckets".to_string(), Json::Arr(vec![Json::Int(-3)])),
        ]));
        assert!(Response::parse(&bad_bucket).is_err());
    }

    #[test]
    fn strings_with_newlines_stay_on_one_line() {
        let req = Request::Submit {
            name: "quote\"back\\slash".into(),
            source: "line1\nline2\ttabbed\r\n".into(),
            spec: JobSpec::default(),
        };
        let line = req.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for garbage in [
            "",
            "{",
            "}",
            "{}",
            "null",
            "[1,2,3]",
            "{\"req\":}",
            "{\"req\":\"submit\"}",
            "{\"req\":\"nope\"}",
            "{\"req\":\"status\",\"id\":-4}",
            "{\"req\":\"status\",\"id\":1.5}",
            "{\"req\":\"status\",\"id\":99999999999999999999999999999999999999999}",
            "{\"req\":\"events\",\"id\":1}",
            "\u{0}\u{1}\u{2}",
            "{\"req\":\"stats\"} trailing",
            "{\"req\":\"stats\",}",
            "{\"req\" \"stats\"}",
            "{\"req\":\"st\\qats\"}",
            "{\"req\":\"st\\u12\"}",
        ] {
            assert!(Request::parse(garbage).is_err(), "{garbage:?}");
            assert!(Response::parse(garbage).is_err(), "{garbage:?}");
        }
    }

    #[test]
    fn seed_hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex_decode(&hex).unwrap(), bytes);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(hex_decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut line = String::from("{\"req\":");
        line.push_str(&"[".repeat(10_000));
        assert!(Request::parse(&line).is_err());
    }

    #[test]
    fn truncations_of_a_valid_line_never_parse_to_nonsense() {
        let line = Request::Submit {
            name: "fig1".into(),
            source: "start:\n    rb = load [0x40, ra]\n".into(),
            spec: JobSpec::default(),
        }
        .to_line();
        for cut in 0..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            // Every strict prefix must fail (a JSON object only closes
            // at the final brace).
            assert!(
                Request::parse(&line[..cut]).is_err(),
                "prefix of length {cut} parsed"
            );
        }
    }
}
