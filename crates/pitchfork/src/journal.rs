//! Crash-safe write-ahead job journal for the daemon
//! (`pitchfork --serve --journal PATH`).
//!
//! The daemon appends one line-JSON record per job lifecycle step:
//!
//! ```text
//! {"ev":"submitted","id":3,"line":"{\"req\":\"submit\",...}"}
//! {"ev":"started","id":3}
//! {"ev":"finished","id":3,"status":"done"}
//! ```
//!
//! The `submitted` record embeds the job's **complete wire submit
//! line** (the same bytes a client sent, including any baseline
//! object), so replay needs no second serialization format and
//! inherits the wire protocol's forward/backward tolerance. `started`
//! marks the job as having begun execution — a journal whose last
//! word on a job is `started` identifies a run the process died
//! under. `finished` retires the record whatever the terminal status
//! (done, failed, cancelled, timed-out): terminal jobs are never
//! re-run.
//!
//! On restart, [`Journal::replay`] scans the file and returns every
//! job that was submitted but never finished — queued jobs the daemon
//! died holding and started jobs it died running — in submission (id)
//! order. The server re-submits them as fresh jobs and rewrites the
//! journal compacted (only the replayed jobs' `submitted` records),
//! so the file never grows without bound across restarts. Because a
//! re-run starts from the same submit line, its verdict is
//! byte-identical to what the uninterrupted run would have produced
//! (the exploration is deterministic for a fixed spec).
//!
//! Torn tails are expected, not errors: a process dying mid-append
//! leaves a final line that is not valid JSON (and a torn `submitted`
//! line means the client never got its `Accepted` answer, so dropping
//! the job is the correct contract). Replay skips any unparseable
//! line and keeps scanning. Appends go through one `write_all` per
//! line with the newline included, so concurrent writers cannot
//! interleave partial records; the `partial-write` fault point of
//! [`sct_faults`] deliberately truncates an append to exercise the
//! torn-tail path.

use crate::protocol::{Json, ProtocolError, Request};
use crate::service::{JobBaseline, JobSpec};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// A job recovered from the journal: everything needed to re-submit
/// it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayJob {
    /// The id the job had in the previous daemon life (for logging;
    /// the re-submission gets a fresh id).
    pub old_id: u64,
    /// Job name.
    pub name: String,
    /// Assembly source text.
    pub source: String,
    /// The full job spec (mode, bound, strategy, threads, budget,
    /// deadline, symbolic registers).
    pub spec: JobSpec,
    /// Baseline for diff-aware submissions, when the original carried
    /// one.
    pub baseline: Option<JobBaseline>,
    /// `true` when the previous daemon died *while running* this job
    /// (a `started` record with no `finished`); `false` when it died
    /// with the job still queued.
    pub interrupted: bool,
}

/// An append-only handle on the journal file. One daemon owns it for
/// its whole life; appends are serialized by the caller (the server
/// wraps it in a mutex).
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Scan an existing journal and return the jobs that were
    /// submitted but never finished, in submission order. A missing
    /// file is an empty replay (first boot). Unparseable lines — torn
    /// tails from a crash mid-append — are skipped.
    pub fn replay(path: &Path) -> io::Result<Vec<ReplayJob>> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        // id → (submit record, started?) for jobs not yet finished.
        let mut live: BTreeMap<u64, (ReplayJob, bool)> = BTreeMap::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_record(&line) {
                Ok(Record::Submitted(job)) => {
                    live.insert(job.old_id, (*job, false));
                }
                Ok(Record::Started(id)) => {
                    if let Some((_, started)) = live.get_mut(&id) {
                        *started = true;
                    }
                }
                Ok(Record::Finished(id)) => {
                    live.remove(&id);
                }
                // Torn tail or foreign garbage: skip, keep scanning.
                Err(_) => {}
            }
        }
        Ok(live
            .into_values()
            .map(|(mut job, started)| {
                job.interrupted = started;
                job
            })
            .collect())
    }

    /// Open the journal for appending, truncating whatever was there —
    /// the caller has already replayed the old contents and re-submits
    /// live jobs under fresh records, which compacts the file.
    pub fn create(path: &Path) -> io::Result<Journal> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record a submission: `id` plus the job's complete wire submit
    /// line (exactly what [`Request::Submit`]/`SubmitDiff` encode to).
    pub fn submitted(&mut self, id: u64, submit_line: &str) -> io::Result<()> {
        self.append(Json::Obj(vec![
            ("ev".into(), Json::Str("submitted".into())),
            ("id".into(), Json::Int(id as i128)),
            ("line".into(), Json::Str(submit_line.to_string())),
        ]))
    }

    /// Record that a job began executing.
    pub fn started(&mut self, id: u64) -> io::Result<()> {
        self.append(Json::Obj(vec![
            ("ev".into(), Json::Str("started".into())),
            ("id".into(), Json::Int(id as i128)),
        ]))
    }

    /// Record a job reaching a terminal status (`done`, `failed`,
    /// `cancelled`, `timed-out`). Whatever the status, the job is
    /// settled and will not be replayed.
    pub fn finished(&mut self, id: u64, status: &str) -> io::Result<()> {
        self.append(Json::Obj(vec![
            ("ev".into(), Json::Str("finished".into())),
            ("id".into(), Json::Int(id as i128)),
            ("status".into(), Json::Str(status.to_string())),
        ]))
    }

    /// Append one record as a single `write_all` (line + newline in
    /// one syscall, so records from a crash-interrupted writer are
    /// torn, never interleaved). The `partial-write` fault point
    /// truncates the buffer to its first half to simulate exactly that
    /// crash.
    fn append(&mut self, record: Json) -> io::Result<()> {
        let mut line = record.to_line();
        line.push('\n');
        let bytes = line.as_bytes();
        if sct_faults::enabled() && sct_faults::should_fire(sct_faults::FaultPoint::PartialWrite) {
            let half = &bytes[..bytes.len() / 2];
            self.file.write_all(half)?;
            return self.file.flush();
        }
        self.file.write_all(bytes)?;
        self.file.flush()
    }
}

enum Record {
    Submitted(Box<ReplayJob>),
    Started(u64),
    Finished(u64),
}

fn parse_record(line: &str) -> Result<Record, ProtocolError> {
    let json = Json::parse(line)?;
    let id = json.u64_field("id")?;
    match json.str_field("ev")? {
        "submitted" => {
            let submit_line = json.str_field("line")?;
            match Request::parse(submit_line)? {
                Request::Submit { name, source, spec } => Ok(Record::Submitted(Box::new(ReplayJob {
                    old_id: id,
                    name,
                    source,
                    spec,
                    baseline: None,
                    interrupted: false,
                }))),
                Request::SubmitDiff {
                    name,
                    source,
                    spec,
                    baseline,
                } => Ok(Record::Submitted(Box::new(ReplayJob {
                    old_id: id,
                    name,
                    source,
                    spec,
                    baseline: Some(baseline),
                    interrupted: false,
                }))),
                _ => Err(ProtocolError::new("journal line is not a submit")),
            }
        }
        "started" => Ok(Record::Started(id)),
        "finished" => Ok(Record::Finished(id)),
        other => Err(ProtocolError::new(format!("unknown journal event `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::JobMode;

    fn spec() -> JobSpec {
        JobSpec {
            mode: JobMode::V1,
            bound: Some(12),
            strategy: None,
            threads: 0,
            max_states: Some(5_000),
            deadline_ms: Some(30_000),
            symbolic: vec![sct_core::reg::names::RA],
        }
    }

    fn submit_line(name: &str) -> String {
        Request::Submit {
            name: name.into(),
            source: ".entry L1\nL1:\n    ret\n".into(),
            spec: spec(),
        }
        .to_line()
    }

    #[test]
    fn unfinished_jobs_replay_in_id_order() {
        let dir = std::env::temp_dir().join(format!("sct-journal-{}", std::process::id()));
        let path = dir.join("order.journal");
        let mut j = Journal::create(&path).unwrap();
        j.submitted(1, &submit_line("a")).unwrap();
        j.submitted(2, &submit_line("b")).unwrap();
        j.submitted(3, &submit_line("c")).unwrap();
        j.started(1).unwrap();
        j.finished(1, "done").unwrap();
        j.started(2).unwrap();
        // Job 2 started but never finished; job 3 never started.
        drop(j);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].old_id, 2);
        assert!(replay[0].interrupted);
        assert_eq!(replay[1].old_id, 3);
        assert!(!replay[1].interrupted);
        assert_eq!(replay[1].name, "c");
        assert_eq!(replay[1].spec, spec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("sct-journal-torn-{}", std::process::id()));
        let path = dir.join("torn.journal");
        let mut j = Journal::create(&path).unwrap();
        j.submitted(1, &submit_line("whole")).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        let torn = Json::Obj(vec![
            ("ev".into(), Json::Str("submitted".into())),
            ("id".into(), Json::Int(2)),
            ("line".into(), Json::Str(submit_line("torn"))),
        ])
        .to_line();
        f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        drop(f);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].name, "whole");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty_replay() {
        let path = std::env::temp_dir().join("sct-journal-definitely-missing.journal");
        let _ = std::fs::remove_file(&path);
        assert!(Journal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn baseline_submissions_round_trip() {
        use crate::report::Verdict;
        let dir = std::env::temp_dir().join(format!("sct-journal-base-{}", std::process::id()));
        let path = dir.join("base.journal");
        let line = Request::SubmitDiff {
            name: "gate".into(),
            source: ".entry L1\nL1:\n    ret\n".into(),
            spec: spec(),
            baseline: JobBaseline {
                fingerprint: 77,
                verdict: Verdict::Secure,
                states: 9,
                schedules: 2,
                strategy: "bfs".into(),
                truncated: false,
            },
        }
        .to_line();
        let mut j = Journal::create(&path).unwrap();
        j.submitted(5, &line).unwrap();
        drop(j);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.len(), 1);
        let b = replay[0].baseline.as_ref().expect("baseline survives");
        assert_eq!(b.fingerprint, 77);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
