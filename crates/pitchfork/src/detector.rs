//! The classic single-program detector API.
//!
//! **Compatibility wrapper** — [`Detector`] survives for existing
//! callers and delegates to [`crate::AnalysisSession`]; new code should
//! build a session ([`crate::SessionBuilder`]), which adds strategy
//! selection, observers, caching, and the epoch lifecycle.
//! [`DetectorOptions`] remains the canonical options bundle either way.

use crate::explorer::ExplorerOptions;
use crate::report::Report;
use crate::session::AnalysisSession;
use crate::strategy::StrategyKind;
use sct_core::{Config, Params, Program, Reg};

/// Detector options: explorer options plus machine parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectorOptions {
    /// Worst-case schedule exploration options.
    pub explorer: ExplorerOptions,
    /// Machine parameters (addressing, stack, RSB policy).
    pub params: Params,
}

impl DetectorOptions {
    /// The paper's Spectre v1/v1.1 configuration (§4.2.1): no
    /// forwarding-hazard exploration, deep speculation bound.
    pub fn v1_mode(spec_bound: usize) -> Self {
        DetectorOptions {
            explorer: ExplorerOptions {
                spec_bound,
                forwarding_hazards: false,
                ..Default::default()
            },
            params: Params::paper(),
        }
    }

    /// The paper's Spectre v4 configuration (§4.2.1): forwarding-hazard
    /// exploration with a reduced bound to keep analysis tractable.
    pub fn v4_mode(spec_bound: usize) -> Self {
        DetectorOptions {
            explorer: ExplorerOptions {
                spec_bound,
                forwarding_hazards: true,
                ..Default::default()
            },
            params: Params::paper(),
        }
    }

    /// **Extension**: aliasing-predictor exploration (§3.5) on top of
    /// v4 mode — finds the paper's Figure 2 hypothetical attack, which
    /// the original Pitchfork could not explore (§4).
    pub fn alias_mode(spec_bound: usize) -> Self {
        DetectorOptions {
            explorer: ExplorerOptions {
                spec_bound,
                forwarding_hazards: true,
                alias_prediction: true,
                ..Default::default()
            },
            params: Params::paper(),
        }
    }

    /// **Extension**: Spectre v2 exploration — mistrained indirect-jump
    /// targets (Appendix A's attacker-influenced branch-target
    /// predictor), which the original Pitchfork does not model (§4).
    pub fn v2_mode(spec_bound: usize) -> Self {
        DetectorOptions {
            explorer: ExplorerOptions {
                spec_bound,
                jmpi_mistraining: true,
                ..Default::default()
            },
            params: Params::paper(),
        }
    }

    /// The same options with state deduplication toggled — duplicate
    /// states are pruned by default; turning it off reproduces the
    /// duplicate-blind exploration the equivalence tests and the
    /// throughput bench compare against.
    pub fn dedup(mut self, dedup_states: bool) -> Self {
        self.explorer.dedup_states = dedup_states;
        self
    }

    /// The same options with a different frontier order.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.explorer.strategy = strategy;
        self
    }
}

/// The Pitchfork detector: generates worst-case schedules and
/// symbolically executes the program under each, flagging secret-labeled
/// observations.
///
/// # Examples
///
/// ```
/// use pitchfork::{Detector, DetectorOptions};
/// use sct_core::examples::fig1;
///
/// let (program, config) = fig1();
/// let report = Detector::new(DetectorOptions::default()).analyze(&program, &config);
/// assert!(report.has_violations());
/// ```
#[derive(Clone, Copy, Debug, Default)]
#[deprecated(note = "use AnalysisSession / SessionService")]
pub struct Detector {
    options: DetectorOptions,
}

#[allow(deprecated)]
impl Detector {
    /// A detector with the given options.
    pub fn new(options: DetectorOptions) -> Self {
        Detector { options }
    }

    /// Analyze a program from a concrete initial configuration
    /// (delegates to a transient [`AnalysisSession`]).
    pub fn analyze(&self, program: &Program, config: &Config) -> Report {
        AnalysisSession::with_options(self.options).analyze_symbolic(program, config, &[])
    }

    /// Analyze with the given registers replaced by fresh symbolic
    /// inputs (labels taken from the concrete configuration), covering
    /// all public input values instead of the one in `config`.
    pub fn analyze_symbolic(
        &self,
        program: &Program,
        config: &Config,
        symbolic_regs: &[Reg],
    ) -> Report {
        AnalysisSession::with_options(self.options).analyze_symbolic(
            program,
            config,
            symbolic_regs,
        )
    }
}

// The wrapper's own coverage keeps speaking the deprecated API — that
// is the point of the tests.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sct_core::examples::fig1;
    use sct_core::reg::names::RA;

    #[test]
    fn default_detector_flags_fig1() {
        let (p, cfg) = fig1();
        let report = Detector::new(DetectorOptions::default()).analyze(&p, &cfg);
        assert!(report.has_violations());
    }

    #[test]
    fn symbolic_index_also_flags_fig1() {
        // Even from an in-bounds concrete index, symbolizing `ra` lets
        // the mispredicted out-of-bounds path carry a symbolic index.
        let (p, mut cfg) = fig1();
        cfg.regs.write(RA, sct_core::Val::public(1));
        let d = Detector::new(DetectorOptions::default());
        let report = d.analyze_symbolic(&p, &cfg, &[RA]);
        assert!(report.has_violations(), "{report}");
    }

    #[test]
    fn v1_and_v4_modes_differ_in_forwarding() {
        assert!(!DetectorOptions::v1_mode(250).explorer.forwarding_hazards);
        assert!(DetectorOptions::v4_mode(20).explorer.forwarding_hazards);
    }
}
