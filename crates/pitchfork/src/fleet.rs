//! The corpus-sharding **fleet coordinator**: drive a set of daemon
//! workers (Unix-socket or TCP, see [`crate::transport`]) through one
//! corpus manifest and merge their verdicts back into manifest order.
//!
//! The coordinator is deliberately dumb about analysis and careful
//! about scheduling:
//!
//! * **Size-aware sharding.** Entries are handed out largest-first
//!   (greedy LPT on source size, the only cost signal available before
//!   running): whichever worker frees up takes the biggest remaining
//!   entry, so one slow giant does not serialize the tail of the run.
//! * **Warm starts.** Each worker is optionally seeded with an
//!   `sct-cache` snapshot ([`crate::client::Client::seed`]) before its
//!   first entry, so a fresh fleet begins with the accumulated arena
//!   and verdict memo of previous runs.
//! * **Failure containment.** A worker that dies mid-entry has the
//!   entry requeued for the survivors (bounded by
//!   [`FleetOptions::max_attempts`]); the worker thread tries one
//!   reconnect and retires if the daemon is really gone. Only a
//!   deterministic job failure (the daemon ran the entry and reported
//!   `failed`, e.g. an assemble error) is terminal without retry —
//!   it would fail identically everywhere.
//! * **Determinism.** Workers run entries with the caller's
//!   [`JobSpec`] verbatim; with the default serial per-job threads the
//!   merged [`EntryOutcome::line`]s are byte-identical to a
//!   single-process batch over the same manifest (the fleet-smoke CI
//!   leg diffs them), whatever the sharding.
//!
//! Per-worker dispatch/retry counters and shard-latency histograms
//! (tagged with the daemon job id of the slowest shard) land in the
//! coordinator's own [`sct_telemetry`] registry under the
//! `fleet_*{worker="i"}` families.

use crate::client::{Client, ClientError};
use crate::service::JobSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One corpus entry: a display name (the path a batch run would print)
/// and the `.sasm` source to analyze.
#[derive(Clone, Debug)]
pub struct ManifestEntry {
    /// The name verdict lines lead with (typically the file path).
    pub name: String,
    /// Assembly source text.
    pub source: String,
}

/// How to run the fleet.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Worker daemon addresses — `HOST:PORT` or Unix socket paths
    /// ([`crate::transport::Endpoint::parse`] rules). Must be
    /// non-empty.
    pub workers: Vec<String>,
    /// Shared authentication token; sent as the opening `hello` on
    /// every connection when set (tokenless daemons accept it as a
    /// no-op).
    pub token: Option<String>,
    /// Encoded `sct-cache` snapshot shipped to each worker before its
    /// first entry (warm start). `None` = cold workers.
    pub seed: Option<Vec<u8>>,
    /// The job spec every entry is submitted with (mode, bound,
    /// strategy, per-job threads, symbolic registers, state budget).
    pub spec: JobSpec,
    /// Submission attempts per entry before it is recorded as failed
    /// (first try included). Minimum 1.
    pub max_attempts: u32,
    /// How long to wait for one entry's terminal status before
    /// treating the worker as wedged and requeueing.
    pub job_timeout: Duration,
    /// Transport-level failures one worker may burn across the whole
    /// run — failed dispatches and failed reconnects both count —
    /// before the thread retires and leaves its queue share to the
    /// survivors. Bounds how long a flapping daemon (reachable, but
    /// dropping every job) can keep reclaiming requeued entries.
    /// Minimum 1.
    pub worker_retry_budget: u32,
    /// Base delay of the per-worker retry backoff: doubles per
    /// consecutive failure (capped at 32×) with ±50% deterministic
    /// jitter, so workers recovering from a shared daemon restart
    /// don't reconnect in lockstep. Reset by any successful entry.
    pub retry_backoff: Duration,
    /// Per-read socket timeout on every worker connection. A daemon
    /// that accepts but never answers (wedged accept loop, half-dead
    /// host) surfaces as a timed-out read — requeued under the normal
    /// retry budget — instead of blocking its coordinator thread
    /// forever. Status polls round-trip in milliseconds on a healthy
    /// daemon whatever the job length, so this only needs to cover
    /// network latency, not analysis time. `None` disables the bound
    /// (the pre-timeout behaviour).
    pub read_timeout: Option<Duration>,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            workers: Vec::new(),
            token: None,
            seed: None,
            spec: JobSpec::default(),
            max_attempts: 3,
            job_timeout: Duration::from_secs(600),
            worker_retry_budget: 8,
            retry_backoff: Duration::from_millis(200),
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// The delay before a worker's next attempt after `consecutive`
/// failures in a row: exponential (`base * 2^(consecutive-1)`, capped
/// at 32× base) scaled by a deterministic xorshift jitter in
/// `[0.5, 1.5)` keyed on the worker id and its failure count — no RNG
/// dependency, reproducible in tests, and no two workers share a
/// schedule.
fn backoff_delay(base: Duration, consecutive: u32, wid: usize, salt: u32) -> Duration {
    let exp = 1u32 << consecutive.saturating_sub(1).min(5);
    let mut x = (wid as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((salt as u64) << 17 | 0x243F);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    base.saturating_mul(exp)
        .mul_f64(0.5 + (x % 1024) as f64 / 1024.0)
}

/// What happened to one manifest entry.
#[derive(Clone, Debug)]
pub struct EntryOutcome {
    /// The entry's manifest name.
    pub name: String,
    /// The merged verdict line (exactly what a batch run prints), when
    /// the entry completed.
    pub line: Option<String>,
    /// Whether the verdict was insecure.
    pub flagged: bool,
    /// Terminal failure message (job failed deterministically, or the
    /// entry exhausted its attempts / outlived every worker).
    pub error: Option<String>,
    /// Submission attempts consumed.
    pub attempts: u32,
    /// Index (into [`FleetOptions::workers`]) of the worker that
    /// completed the entry.
    pub worker: Option<usize>,
}

/// The merged result of a fleet run: one outcome per manifest entry,
/// in manifest order.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-entry outcomes, index-aligned with the input manifest.
    pub outcomes: Vec<EntryOutcome>,
    /// Entries requeued after a worker error (sum over workers of the
    /// `fleet_retry_total` counters).
    pub retries: u64,
}

impl FleetReport {
    /// Entries whose verdict was insecure.
    pub fn flagged(&self) -> usize {
        self.outcomes.iter().filter(|o| o.flagged).count()
    }

    /// Entries that ended in a terminal failure.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }
}

/// Why a fleet run could not start.
#[derive(Debug)]
pub enum FleetError {
    /// [`FleetOptions::workers`] was empty.
    NoWorkers,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoWorkers => write!(f, "no workers configured"),
        }
    }
}

impl std::error::Error for FleetError {}

/// The per-file report line, shared verbatim by one-shot, daemon, and
/// fleet output so CI can diff the three.
pub fn report_line(
    file: &str,
    verdict: impl std::fmt::Display,
    states: usize,
    schedules: usize,
    strategy: &str,
    truncated: bool,
) -> String {
    format!(
        "{file}: {verdict} ({states} states, {schedules} schedules explored, strategy {strategy}{})",
        if truncated { ", truncated" } else { "" }
    )
}

/// A queued (or requeued) entry: manifest index plus attempts so far.
#[derive(Clone, Copy, Debug)]
struct Queued {
    index: usize,
    attempts: u32,
}

/// Shared run state the worker threads operate on.
struct SharedRun<'a> {
    manifest: &'a [ManifestEntry],
    options: &'a FleetOptions,
    queue: Mutex<Vec<Queued>>,
    results: Mutex<Vec<Option<EntryOutcome>>>,
    retries: AtomicU64,
    progress: &'a (dyn Fn(String) + Sync),
}

impl SharedRun<'_> {
    /// Pop the largest remaining entry (greedy LPT on source bytes).
    fn pop_largest(&self) -> Option<Queued> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let at = queue
            .iter()
            .enumerate()
            .max_by_key(|(_, q)| self.manifest[q.index].source.len())?
            .0;
        Some(queue.swap_remove(at))
    }

    fn requeue(&self, item: Queued) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push(item);
    }

    fn record(&self, index: usize, outcome: EntryOutcome) {
        let mut results = self.results.lock().unwrap_or_else(|e| e.into_inner());
        results[index] = Some(outcome);
    }

    /// Every manifest entry has a recorded outcome.
    fn complete(&self) -> bool {
        self.results
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .all(|slot| slot.is_some())
    }

    fn say(&self, line: String) {
        (self.progress)(line);
    }
}

/// Connect to `addr`, bound its reads, authenticate, health-check,
/// and (on a first connect) ship the warm-start snapshot.
fn prepare_worker(
    shared: &SharedRun<'_>,
    wid: usize,
    addr: &str,
    first: bool,
) -> Result<Client, ClientError> {
    let client = Client::connect_addr(addr)?;
    // Bound reads before the first request: a worker that accepts the
    // connection and then never answers anything must not wedge this
    // thread on its very first hello.
    if let Some(timeout) = shared.options.read_timeout {
        client.set_read_timeout(Some(timeout))?;
    }
    let mut client = client;
    if let Some(token) = &shared.options.token {
        client.hello(token.clone())?;
    }
    // Heartbeat on reconnect: answered on the daemon's connection
    // thread, so a pong proves the daemon is alive (maybe busy) rather
    // than wedged; a read timeout here burns the retry budget. First
    // connects skip it — their first real request surfaces the same
    // failures through the budgeted dispatch path, and skipping keeps
    // the flap-versus-dead distinction visible in the retry counter.
    if !first {
        client.ping()?;
    }
    if first {
        if let Some(snapshot) = &shared.options.seed {
            let (nodes, verdicts) = client.seed(snapshot)?;
            shared.say(format!(
                "worker {wid} ({addr}): seeded {nodes} nodes, {verdicts} verdicts"
            ));
        }
    }
    Ok(client)
}

/// Run one entry to a terminal status on an established connection.
fn run_entry(
    client: &mut Client,
    entry: &ManifestEntry,
    spec: &JobSpec,
    timeout: Duration,
) -> Result<crate::client::JobView, ClientError> {
    let id = client.submit_source(entry.name.clone(), entry.source.clone(), spec.clone())?;
    client.wait(id, timeout)
}

/// One worker thread: pull largest-remaining entries until the queue
/// drains or the daemon is unreachable.
fn worker_loop(shared: &SharedRun<'_>, wid: usize, addr: &str) {
    let telemetry = sct_telemetry::enabled();
    let budget = shared.options.worker_retry_budget.max(1);
    let base = shared.options.retry_backoff;
    // Transport failures burned so far (the budget's numerator) and
    // the current failure streak (the backoff exponent; a success
    // resets it).
    let mut spent: u32 = 0;
    let mut streak: u32 = 0;
    // First connections burn the same retry budget as mid-run
    // failures: a daemon that is down (or answers the health ping
    // with silence) at startup gets bounded, backed-off retries —
    // not an instant retirement that strands its queue share.
    let mut client = loop {
        match prepare_worker(shared, wid, addr, true) {
            Ok(c) => break c,
            Err(e) => {
                shared.say(format!("worker {wid} ({addr}): unreachable ({e})"));
                spent += 1;
                streak += 1;
                if spent >= budget {
                    shared.say(format!(
                        "worker {wid} ({addr}): retry budget exhausted ({budget})"
                    ));
                    return;
                }
                std::thread::sleep(backoff_delay(base, streak, wid, spent));
            }
        }
    };
    loop {
        let Some(mut item) = shared.pop_largest() else {
            // An empty queue is not the end of the run: a peer may
            // still hold an in-flight entry that dies and gets
            // requeued. Exit only once every entry has an outcome
            // (a dying worker always records or requeues its entry
            // first, so this converges).
            if shared.complete() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let entry = &shared.manifest[item.index];
        item.attempts += 1;
        if telemetry {
            sct_telemetry::counter(&sct_telemetry::names::fleet_dispatch(wid)).inc();
        }
        shared.say(format!(
            "worker {wid} ({addr}): {} (attempt {})",
            entry.name, item.attempts
        ));
        let started = Instant::now();
        match run_entry(&mut client, entry, &shared.options.spec, shared.options.job_timeout) {
            Ok(view) => {
                if telemetry {
                    sct_telemetry::histogram(&sct_telemetry::names::fleet_shard(wid))
                        .observe_ns_tagged(
                            sct_telemetry::saturating_ns(started.elapsed()),
                            view.id.as_u64(),
                        );
                }
                // A deterministically failed job (assemble error, ...)
                // fails identically on every worker: terminal, no retry.
                // Anything else terminal-but-incomplete (failed without
                // a message, an externally cancelled job) is terminal
                // too — retrying a cancelled entry would resurrect work
                // someone asked to stop.
                let outcome = match (&view.verdict, &view.stats) {
                    (Some(verdict), Some(stats)) => EntryOutcome {
                        name: entry.name.clone(),
                        line: Some(report_line(
                            &entry.name,
                            verdict,
                            stats.states,
                            stats.schedules,
                            stats.strategy,
                            stats.truncated,
                        )),
                        flagged: verdict.is_insecure(),
                        error: None,
                        attempts: item.attempts,
                        worker: Some(wid),
                    },
                    _ => EntryOutcome {
                        name: entry.name.clone(),
                        line: None,
                        flagged: false,
                        error: Some(view.error.unwrap_or_else(|| {
                            format!("job ended {} without a report", view.status)
                        })),
                        attempts: item.attempts,
                        worker: Some(wid),
                    },
                };
                shared.record(item.index, outcome);
                streak = 0;
            }
            Err(e) => {
                shared.retries.fetch_add(1, Ordering::Relaxed);
                spent += 1;
                streak += 1;
                if telemetry {
                    sct_telemetry::counter(&sct_telemetry::names::fleet_retry(wid)).inc();
                }
                if item.attempts >= shared.options.max_attempts.max(1) {
                    shared.say(format!(
                        "worker {wid} ({addr}): {} failed after {} attempts ({e})",
                        entry.name, item.attempts
                    ));
                    shared.record(
                        item.index,
                        EntryOutcome {
                            name: entry.name.clone(),
                            line: None,
                            flagged: false,
                            error: Some(format!("{} attempts exhausted: {e}", item.attempts)),
                            attempts: item.attempts,
                            worker: None,
                        },
                    );
                } else {
                    shared.say(format!(
                        "worker {wid} ({addr}): requeueing {} ({e})",
                        entry.name
                    ));
                    shared.requeue(item);
                }
                // Reconnect under the worker's retry budget, backing
                // off exponentially (with jitter) per consecutive
                // failure so a recovering daemon isn't hammered in
                // lockstep. A worker that exhausts the budget — or
                // whose daemon stays dead through it — retires, and
                // the requeued entries go to the survivors.
                loop {
                    if spent >= budget {
                        shared.say(format!(
                            "worker {wid} ({addr}): retry budget exhausted ({budget})"
                        ));
                        return;
                    }
                    let delay = backoff_delay(base, streak, wid, spent);
                    shared.say(format!(
                        "worker {wid} ({addr}): backing off {delay:?} (failure {spent}/{budget})"
                    ));
                    std::thread::sleep(delay);
                    match prepare_worker(shared, wid, addr, false) {
                        Ok(c) => {
                            client = c;
                            break;
                        }
                        Err(e) => {
                            shared.say(format!("worker {wid} ({addr}): reconnect failed ({e})"));
                            spent += 1;
                            streak += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Shard `manifest` across [`FleetOptions::workers`] and merge the
/// verdicts. `progress` receives human-readable per-worker lines as
/// the run advances (callers typically forward them to stderr);
/// verdict lines come back in the report, in manifest order.
pub fn run_fleet(
    manifest: &[ManifestEntry],
    options: &FleetOptions,
    progress: impl Fn(String) + Sync,
) -> Result<FleetReport, FleetError> {
    if options.workers.is_empty() {
        return Err(FleetError::NoWorkers);
    }
    let shared = SharedRun {
        manifest,
        options,
        queue: Mutex::new(
            (0..manifest.len())
                .map(|index| Queued { index, attempts: 0 })
                .collect(),
        ),
        results: Mutex::new(vec![None; manifest.len()]),
        retries: AtomicU64::new(0),
        progress: &progress,
    };
    std::thread::scope(|scope| {
        for (wid, addr) in options.workers.iter().enumerate() {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared, wid, addr.as_str()));
        }
    });
    let results = shared
        .results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let outcomes = results
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            // Entries left unrecorded mean every worker retired while
            // work remained.
            slot.unwrap_or_else(|| EntryOutcome {
                name: manifest[index].name.clone(),
                line: None,
                flagged: false,
                error: Some("no live workers left for this entry".to_string()),
                attempts: 0,
                worker: None,
            })
        })
        .collect();
    Ok(FleetReport {
        outcomes,
        retries: shared.retries.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_worker_list_is_an_error() {
        let err = run_fleet(&[], &FleetOptions::default(), |_| {});
        assert!(matches!(err, Err(FleetError::NoWorkers)));
    }

    #[test]
    fn unreachable_workers_leave_entries_unserved() {
        let manifest = [ManifestEntry {
            name: "a.sasm".to_string(),
            source: "start:\n    fence\n".to_string(),
        }];
        let options = FleetOptions {
            workers: vec!["/nonexistent/fleet-test.sock".to_string()],
            // First connects retry under the budget now; keep the
            // test fast with a tiny budget and backoff.
            worker_retry_budget: 2,
            retry_backoff: Duration::from_millis(1),
            ..FleetOptions::default()
        };
        let lines = Mutex::new(Vec::new());
        let report = run_fleet(&manifest, &options, |l| {
            lines.lock().unwrap().push(l);
        })
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.failed(), 1);
        assert!(report.outcomes[0].error.as_deref().unwrap().contains("no live workers"));
        let lines = lines.into_inner().unwrap();
        assert!(
            lines.iter().any(|l| l.contains("unreachable")),
            "progress missing the unreachable notice: {lines:?}"
        );
    }

    #[test]
    fn largest_entries_are_dealt_first() {
        let manifest: Vec<ManifestEntry> = [("small", 4), ("big", 64), ("medium", 16)]
            .into_iter()
            .map(|(name, lines)| ManifestEntry {
                name: name.to_string(),
                source: "    fence\n".repeat(lines),
            })
            .collect();
        let options = FleetOptions::default();
        let shared = SharedRun {
            manifest: &manifest,
            options: &options,
            queue: Mutex::new(
                (0..manifest.len())
                    .map(|index| Queued { index, attempts: 0 })
                    .collect(),
            ),
            results: Mutex::new(vec![None; manifest.len()]),
            retries: AtomicU64::new(0),
            progress: &|_| {},
        };
        let order: Vec<&str> = std::iter::from_fn(|| shared.pop_largest())
            .map(|q| manifest[q.index].name.as_str())
            .collect();
        assert_eq!(order, ["big", "medium", "small"]);
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let base = Duration::from_millis(200);
        for wid in 0..4 {
            let mut prev_nominal = 0u128;
            for streak in 1..=8u32 {
                let d = backoff_delay(base, streak, wid, streak);
                let nominal = base.as_millis() << (streak - 1).min(5);
                // Jitter stays within ±50% of the nominal delay.
                assert!(
                    d.as_millis() >= nominal / 2 && d.as_millis() < nominal + nominal / 2,
                    "worker {wid} streak {streak}: {d:?} outside [{}, {}) ms",
                    nominal / 2,
                    nominal + nominal / 2,
                );
                // The nominal schedule is monotone and caps at 32x.
                assert!(nominal >= prev_nominal);
                assert!(nominal <= base.as_millis() * 32);
                prev_nominal = nominal;
            }
        }
        // Deterministic: same inputs, same delay.
        assert_eq!(backoff_delay(base, 3, 1, 5), backoff_delay(base, 3, 1, 5));
        // Distinct workers on the same streak don't share a schedule.
        assert_ne!(backoff_delay(base, 3, 0, 5), backoff_delay(base, 3, 1, 5));
    }

    #[test]
    fn retry_budget_retires_a_flapping_worker() {
        // A daemon that accepts connections and then hangs up before
        // answering: every dispatch fails, the connection "recovers",
        // and without a budget the worker would reclaim its requeued
        // entry forever. The budget must retire it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flapping = std::thread::spawn(move || {
            // Accept-and-drop until the coordinator gives up.
            while let Ok((stream, _)) = listener.accept() {
                drop(stream);
            }
        });
        let manifest = [ManifestEntry {
            name: "a.sasm".to_string(),
            source: ".entry l\nl:\n    fence\n    ret\n".to_string(),
        }];
        let options = FleetOptions {
            workers: vec![addr.to_string()],
            max_attempts: u32::MAX, // never fail the entry; only the budget can end this
            worker_retry_budget: 3,
            retry_backoff: Duration::from_millis(1),
            ..FleetOptions::default()
        };
        let lines = Mutex::new(Vec::new());
        let report = run_fleet(&manifest, &options, |l| {
            lines.lock().unwrap().push(l);
        })
        .unwrap();
        drop(flapping); // detached; the listener dies with the test process
        assert_eq!(report.failed(), 1);
        let lines = lines.into_inner().unwrap();
        assert!(
            lines.iter().any(|l| l.contains("retry budget exhausted")),
            "progress missing the budget notice: {lines:?}"
        );
        assert!(report.retries >= 1);
    }

    #[test]
    fn silent_worker_times_out_instead_of_hanging() {
        // A daemon that accepts the connection and then never writes a
        // byte. Without a read timeout the coordinator thread blocks in
        // its first read forever; with one, the read errors, the retry
        // budget burns down, and the run terminates.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            loop {
                match done_rx.try_recv() {
                    Ok(()) | Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
                    Err(std::sync::mpsc::TryRecvError::Empty) => {}
                }
                if let Ok((stream, _)) = listener.accept() {
                    held.push(stream); // keep it open, never answer
                }
            }
        });
        let manifest = [ManifestEntry {
            name: "a.sasm".to_string(),
            source: ".entry l\nl:\n    fence\n    ret\n".to_string(),
        }];
        let options = FleetOptions {
            workers: vec![addr.to_string()],
            max_attempts: u32::MAX,
            worker_retry_budget: 2,
            retry_backoff: Duration::from_millis(1),
            read_timeout: Some(Duration::from_millis(100)),
            ..FleetOptions::default()
        };
        let started = Instant::now();
        let report = run_fleet(&manifest, &options, |_| {}).unwrap();
        let _ = done_tx.send(());
        assert_eq!(report.failed(), 1);
        // Bounded by (budget) reads of 100 ms plus tiny backoffs — far
        // under the 600 s job timeout a hang would consume.
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "silent worker stalled the coordinator for {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn report_line_matches_the_batch_format() {
        assert_eq!(
            report_line("x.sasm", "SECURE", 12, 3, "lifo", false),
            "x.sasm: SECURE (12 states, 3 schedules explored, strategy lifo)"
        );
        assert_eq!(
            report_line("x.sasm", "SECURE", 12, 3, "lifo", true),
            "x.sasm: SECURE (12 states, 3 schedules explored, strategy lifo, truncated)"
        );
    }
}
