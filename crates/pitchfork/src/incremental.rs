//! Incremental re-analysis: program-region fingerprints, persisted
//! baselines, and the diff planner behind `pitchfork ci-gate`.
//!
//! A CI gate re-checks the same corpus on every commit, but a commit
//! touches one or two entries — re-exploring the other twenty from
//! scratch is pure waste. This module makes the re-run proportional to
//! the diff:
//!
//! * [`block_hashes`] / [`config_tag`] / [`entry_fingerprint`] — a
//!   stable fingerprint per corpus entry, built from each basic block's
//!   instruction text plus the analysis configuration (bound, mode,
//!   strategy, budgets, symbolized registers). Re-parsing an unchanged
//!   file reproduces the fingerprint bit-for-bit; editing a single
//!   instruction changes its block's hash and therefore the entry
//!   fingerprint.
//! * [`BaselineManifest`] — fingerprints and verdict summaries from a
//!   previous run, persisted as line-oriented JSON next to the pruned
//!   warm-start snapshot ([`save_baseline`] writes both).
//! * [`plan_entry`] — the diff planner: classify each entry as
//!   [`EntryPlan::Unchanged`] (replay the baseline verdict, zero
//!   exploration), [`EntryPlan::Dirty`] (re-explore against the warm
//!   memo), or [`EntryPlan::New`].
//!
//! [`crate::AnalysisSession::analyze_incremental`] drives the planner
//! over a batch and produces an [`IncrementalReport`]; the `ci-gate`
//! CLI verb turns that report into an exit code (any entry flipping
//! from non-insecure to insecure fails the gate).

use crate::detector::DetectorOptions;
use crate::protocol::Json;
use crate::report::Verdict;
use sct_core::{Instr, Pc, Program, Reg};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

// ----- FNV-1a 64 ----------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ----- Region fingerprints ------------------------------------------------

/// Hash every basic block of `program`: `(leader pc, FNV-1a 64 over the
/// block's `(pc, instruction text)` sequence)`, sorted by leader.
///
/// Leaders are the entry point, every branch/call target, and every
/// program point with a static in-degree other than one; a block runs
/// from its leader along explicit successor points until the next
/// leader or a terminator. The partition only has to be *stable* (the
/// same program always hashes the same way) and *sensitive* (any
/// single-instruction edit lands in some block's hash) — it is not used
/// for codegen, so unreachable instructions simply become their own
/// single-instruction blocks.
pub fn block_hashes(program: &Program) -> Vec<(Pc, u64)> {
    let mut preds: BTreeMap<Pc, usize> = BTreeMap::new();
    let mut leaders: BTreeSet<Pc> = BTreeSet::new();
    leaders.insert(program.entry);
    for (_, instr) in program.iter() {
        let succs: Vec<Pc> = match instr {
            Instr::Br { tru, fls, .. } => {
                leaders.insert(*tru);
                leaders.insert(*fls);
                vec![*tru, *fls]
            }
            Instr::Call { callee, ret } => {
                leaders.insert(*callee);
                leaders.insert(*ret);
                vec![*callee, *ret]
            }
            _ => instr.next().into_iter().collect(),
        };
        for s in succs {
            *preds.entry(s).or_insert(0) += 1;
        }
    }
    for (pc, _) in program.iter() {
        if preds.get(&pc).copied().unwrap_or(0) != 1 {
            leaders.insert(pc);
        }
    }

    let mut visited: BTreeSet<Pc> = BTreeSet::new();
    let mut blocks = Vec::new();
    for &leader in &leaders {
        if program.fetch(leader).is_none() || visited.contains(&leader) {
            continue;
        }
        let mut hash = Fnv::new();
        let mut pc = leader;
        while let Some(instr) = program.fetch(pc) {
            visited.insert(pc);
            hash.write_u64(pc);
            hash.write(instr.to_string().as_bytes());
            match instr.next() {
                Some(n)
                    if !leaders.contains(&n)
                        && !visited.contains(&n)
                        && program.fetch(n).is_some() =>
                {
                    pc = n;
                }
                _ => break,
            }
        }
        blocks.push((leader, hash.finish()));
    }
    // Anything not swept above (straight-line cycles unreachable from
    // any leader) still has to land in the fingerprint: one block per
    // orphan instruction.
    for (pc, instr) in program.iter() {
        if !visited.contains(&pc) {
            let mut hash = Fnv::new();
            hash.write_u64(pc);
            hash.write(instr.to_string().as_bytes());
            blocks.push((pc, hash.finish()));
        }
    }
    blocks.sort_unstable_by_key(|&(pc, _)| pc);
    blocks
}

/// Hash the parts of the analysis configuration that can change a
/// verdict: bound, mode flags, budgets, strategy, machine parameters,
/// and the symbolized-register set. Worker-thread count and the
/// steal-timing seed are deliberately excluded — they never change
/// verdicts (the parallel engine's determinism contract).
pub fn config_tag(options: &DetectorOptions, bound: usize, symbolic: &[Reg]) -> u64 {
    let e = &options.explorer;
    let mut h = Fnv::new();
    h.write_u64(bound as u64);
    h.write(&[
        e.forwarding_hazards as u8,
        e.alias_prediction as u8,
        e.jmpi_mistraining as u8,
        e.dedup_states as u8,
        e.stop_path_on_violation as u8,
    ]);
    h.write_u64(e.jmpi_target_cap as u64);
    h.write_u64(e.max_states as u64);
    h.write_u64(e.max_violations as u64);
    h.write(e.strategy.name().as_bytes());
    h.write(format!("{:?}", options.params).as_bytes());
    for r in symbolic {
        h.write_u64(r.0 as u64);
    }
    h.finish()
}

/// Combine a program's block hashes with its configuration tag into the
/// per-entry fingerprint the baseline manifest is keyed by.
pub fn entry_fingerprint(blocks: &[(Pc, u64)], tag: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(tag);
    h.write_u64(blocks.len() as u64);
    for &(pc, hash) in blocks {
        h.write_u64(pc);
        h.write_u64(hash);
    }
    h.finish()
}

// ----- The baseline manifest ----------------------------------------------

/// One entry of a [`BaselineManifest`]: the fingerprint a verdict was
/// computed under, the per-block hashes (so a re-run can say *how much*
/// changed), and the verdict summary needed to replay the entry without
/// exploring anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The corpus entry / file name the fingerprint belongs to.
    pub name: String,
    /// [`entry_fingerprint`] of the program + configuration.
    pub fingerprint: u64,
    /// [`block_hashes`] of the program (sorted by leader pc).
    pub blocks: Vec<(Pc, u64)>,
    /// The baseline verdict.
    pub verdict: Verdict,
    /// The exact per-file report line the baseline run printed
    /// (replayed byte-identically for unchanged entries).
    pub line: String,
    /// States the baseline exploration expanded (what a replay skips).
    pub states: usize,
    /// Complete schedules the baseline exploration ran.
    pub schedules: usize,
    /// The frontier order the baseline ran under.
    pub strategy: String,
    /// Whether the baseline exploration hit its budget.
    pub truncated: bool,
}

/// Why a baseline manifest could not be read.
#[derive(Debug)]
pub enum BaselineError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A line failed to parse or was missing a required field.
    Parse(String),
    /// The file's format version is not ours (stale baselines are
    /// rebuilt, not migrated).
    Version(u64),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "baseline io error: {e}"),
            BaselineError::Parse(e) => write!(f, "baseline parse error: {e}"),
            BaselineError::Version(v) => write!(f, "baseline version {v} not supported"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}

/// Fingerprints and verdict summaries from a previous run, persisted as
/// line-oriented JSON (a header line, then one object per entry) so the
/// gate's inputs stay greppable and diffable in CI artifacts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineManifest {
    entries: Vec<BaselineEntry>,
}

/// Manifest format version (bumped on incompatible layout changes; an
/// unknown version is rejected and the baseline rebuilt from scratch).
pub const BASELINE_VERSION: u64 = 1;

impl BaselineManifest {
    /// File name of the manifest inside a `--baseline` directory.
    pub const FILE_NAME: &'static str = "baseline.manifest";
    /// File name of the pruned warm-start snapshot next to it.
    pub const CACHE_NAME: &'static str = "baseline.cache";

    /// An empty manifest (every entry will plan as [`EntryPlan::New`]).
    pub fn empty() -> Self {
        BaselineManifest::default()
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[BaselineEntry] {
        &self.entries
    }

    /// The entry for `name`, if the baseline has one.
    pub fn get(&self, name: &str) -> Option<&BaselineEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Insert or replace the entry for `entry.name`.
    pub fn upsert(&mut self, entry: BaselineEntry) {
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Render to the line-oriented JSON format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        Json::Obj(vec![
            ("manifest".into(), Json::Str("pitchfork-baseline".into())),
            ("version".into(), Json::Int(BASELINE_VERSION as i128)),
            ("entries".into(), Json::Int(self.entries.len() as i128)),
        ])
        .write(&mut out);
        out.push('\n');
        for e in &self.entries {
            let (kind, witnesses, explored) = match e.verdict {
                Verdict::Secure => ("secure", 0, 0),
                Verdict::Insecure { witnesses } => ("insecure", witnesses, 0),
                Verdict::Unknown { explored } => ("unknown", 0, explored),
            };
            let blocks = e
                .blocks
                .iter()
                .map(|&(pc, h)| {
                    Json::Arr(vec![Json::Int(pc as i128), Json::Int(h as i128)])
                })
                .collect();
            Json::Obj(vec![
                ("entry".into(), Json::Str(e.name.clone())),
                ("fp".into(), Json::Int(e.fingerprint as i128)),
                ("blocks".into(), Json::Arr(blocks)),
                ("verdict".into(), Json::Str(kind.into())),
                ("witnesses".into(), Json::Int(witnesses as i128)),
                ("explored".into(), Json::Int(explored as i128)),
                ("line".into(), Json::Str(e.line.clone())),
                ("states".into(), Json::Int(e.states as i128)),
                ("schedules".into(), Json::Int(e.schedules as i128)),
                ("strategy".into(), Json::Str(e.strategy.clone())),
                ("truncated".into(), Json::Bool(e.truncated)),
            ])
            .write(&mut out);
            out.push('\n');
        }
        out
    }

    /// Parse the line-oriented JSON format (tolerant of unknown object
    /// fields, like the wire protocol).
    pub fn from_text(text: &str) -> Result<BaselineManifest, BaselineError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = match lines.next() {
            Some(l) => Json::parse(l).map_err(|e| BaselineError::Parse(e.to_string()))?,
            None => return Ok(BaselineManifest::empty()),
        };
        if header.str_field("manifest").ok() != Some("pitchfork-baseline") {
            return Err(BaselineError::Parse("missing manifest header".into()));
        }
        let version = header
            .u64_field("version")
            .map_err(|e| BaselineError::Parse(e.to_string()))?;
        if version != BASELINE_VERSION {
            return Err(BaselineError::Version(version));
        }
        let mut manifest = BaselineManifest::empty();
        for line in lines {
            let json = Json::parse(line).map_err(|e| BaselineError::Parse(e.to_string()))?;
            let field = |k: &str| -> Result<u64, BaselineError> {
                json.u64_field(k)
                    .map_err(|e| BaselineError::Parse(e.to_string()))
            };
            let verdict = match json
                .str_field("verdict")
                .map_err(|e| BaselineError::Parse(e.to_string()))?
            {
                "secure" => Verdict::Secure,
                "insecure" => Verdict::Insecure {
                    witnesses: field("witnesses")? as usize,
                },
                "unknown" => Verdict::Unknown {
                    explored: field("explored")? as usize,
                },
                other => {
                    return Err(BaselineError::Parse(format!("unknown verdict {other:?}")))
                }
            };
            let mut blocks = Vec::new();
            for item in json
                .arr_field("blocks")
                .map_err(|e| BaselineError::Parse(e.to_string()))?
            {
                match item {
                    Json::Arr(pair) => match pair.as_slice() {
                        [Json::Int(pc), Json::Int(h)]
                            if *pc >= 0
                                && *pc <= u64::MAX as i128
                                && *h >= 0
                                && *h <= u64::MAX as i128 =>
                        {
                            blocks.push((*pc as Pc, *h as u64));
                        }
                        _ => {
                            return Err(BaselineError::Parse(
                                "block hash must be a [pc, hash] pair".into(),
                            ))
                        }
                    },
                    _ => {
                        return Err(BaselineError::Parse(
                            "block hash must be a [pc, hash] pair".into(),
                        ))
                    }
                }
            }
            let str_of = |k: &str| -> Result<String, BaselineError> {
                json.str_field(k)
                    .map(str::to_string)
                    .map_err(|e| BaselineError::Parse(e.to_string()))
            };
            manifest.upsert(BaselineEntry {
                name: str_of("entry")?,
                fingerprint: field("fp")?,
                blocks,
                verdict,
                line: str_of("line")?,
                states: field("states")? as usize,
                schedules: field("schedules")? as usize,
                strategy: str_of("strategy")?,
                truncated: json
                    .bool_field("truncated")
                    .map_err(|e| BaselineError::Parse(e.to_string()))?,
            });
        }
        Ok(manifest)
    }

    /// Read a manifest from `dir/`[`BaselineManifest::FILE_NAME`]; a
    /// missing file is an empty baseline (the cold-start case), a
    /// malformed or version-skewed one is an error.
    pub fn load_dir(dir: &Path) -> Result<BaselineManifest, BaselineError> {
        match std::fs::read_to_string(dir.join(Self::FILE_NAME)) {
            Ok(text) => Self::from_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(e.into()),
        }
    }

    /// Write the manifest to `dir/`[`BaselineManifest::FILE_NAME`]
    /// (creating `dir` as needed).
    pub fn save_dir(&self, dir: &Path) -> Result<(), BaselineError> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(Self::FILE_NAME), self.to_text())?;
        Ok(())
    }
}

/// Persist a baseline directory: the manifest plus the
/// reachability-pruned warm-start snapshot ([`sct_cache::save_rooted`]
/// keyed by the verdict memo), bumping the
/// [`sct_telemetry::names::INCR_PRUNE_NODES`] counter with what pruning
/// dropped. Returns the snapshot's [`sct_cache::SaveStats`].
pub fn save_baseline(
    dir: &Path,
    manifest: &BaselineManifest,
) -> Result<sct_cache::SaveStats, BaselineError> {
    manifest.save_dir(dir)?;
    let stats = sct_cache::save_rooted(&dir.join(BaselineManifest::CACHE_NAME), &[])
        .map_err(|e| BaselineError::Parse(e.to_string()))?;
    if sct_telemetry::enabled() {
        sct_telemetry::counter(sct_telemetry::names::INCR_PRUNE_NODES)
            .add(stats.pruned_nodes as u64);
    }
    Ok(stats)
}

// ----- The diff planner ---------------------------------------------------

/// What the diff planner decided for one entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryPlan {
    /// Fingerprint matches the baseline: replay the recorded verdict,
    /// explore nothing.
    Unchanged,
    /// The baseline knows the entry but the fingerprint moved:
    /// re-explore against the warm memo.
    Dirty {
        /// Blocks whose hash differs from (or is absent in) the
        /// baseline, plus baseline blocks that disappeared.
        changed_blocks: usize,
    },
    /// The baseline has never seen this entry.
    New,
}

impl fmt::Display for EntryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryPlan::Unchanged => write!(f, "unchanged"),
            EntryPlan::Dirty { changed_blocks } => {
                write!(f, "dirty ({changed_blocks} blocks changed)")
            }
            EntryPlan::New => write!(f, "new"),
        }
    }
}

/// Classify one entry against the baseline.
pub fn plan_entry(
    baseline: &BaselineManifest,
    name: &str,
    fingerprint: u64,
    blocks: &[(Pc, u64)],
) -> EntryPlan {
    let old = match baseline.get(name) {
        Some(e) => e,
        None => return EntryPlan::New,
    };
    if old.fingerprint == fingerprint {
        return EntryPlan::Unchanged;
    }
    let old_blocks: BTreeMap<Pc, u64> = old.blocks.iter().copied().collect();
    let new_blocks: BTreeMap<Pc, u64> = blocks.iter().copied().collect();
    let changed = new_blocks
        .iter()
        .filter(|(pc, h)| old_blocks.get(pc) != Some(h))
        .count()
        + old_blocks
            .keys()
            .filter(|pc| !new_blocks.contains_key(pc))
            .count();
    EntryPlan::Dirty {
        // A pure config change moves the fingerprint with zero block
        // edits; round up so "dirty" always reports at least one.
        changed_blocks: changed.max(1),
    }
}

// ----- Incremental run results --------------------------------------------

/// One entry's outcome in an incremental run.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The entry's name.
    pub name: String,
    /// What the planner decided.
    pub plan: EntryPlan,
    /// The (replayed or freshly computed) verdict.
    pub verdict: Verdict,
    /// The per-file report line — byte-identical to the baseline's for
    /// replayed entries.
    pub line: String,
    /// States expanded *this run* (0 for replays).
    pub states: usize,
    /// The baseline verdict this entry moved away from, when the entry
    /// was dirty and the verdicts disagree.
    pub flip: Option<Verdict>,
}

impl IncrementalOutcome {
    /// `true` when this entry regressed: it was not insecure in the
    /// baseline and is insecure now — the condition that fails the CI
    /// gate.
    pub fn regressed(&self) -> bool {
        self.verdict.is_insecure() && self.flip.is_some_and(|old| !old.is_insecure())
    }
}

/// The result of [`crate::AnalysisSession::analyze_incremental`].
#[derive(Clone, Debug)]
pub struct IncrementalReport {
    /// Per-entry outcomes, in input order.
    pub outcomes: Vec<IncrementalOutcome>,
    /// Entries replayed from the baseline (zero exploration).
    pub reused: usize,
    /// Entries re-explored (dirty or new).
    pub reanalyzed: usize,
    /// States expanded this run (re-explored entries only).
    pub states_explored: usize,
    /// States the baseline spent on the entries this run replayed —
    /// the exploration the diff planner skipped.
    pub states_skipped: usize,
    /// The refreshed manifest (replayed entries carried over, dirty and
    /// new entries updated) — what [`save_baseline`] persists when the
    /// gate passes.
    pub manifest: BaselineManifest,
    /// Wall-clock time for the whole incremental run.
    pub wall: std::time::Duration,
}

impl IncrementalReport {
    /// Outcomes that fail the gate (see
    /// [`IncrementalOutcome::regressed`]).
    pub fn regressions(&self) -> Vec<&IncrementalOutcome> {
        self.outcomes.iter().filter(|o| o.regressed()).collect()
    }

    /// Fraction of the full run's states the planner skipped:
    /// `skipped / (skipped + explored)`, 0 when nothing was known.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.states_skipped + self.states_explored;
        if total == 0 {
            0.0
        } else {
            self.states_skipped as f64 / total as f64
        }
    }
}

impl fmt::Display for IncrementalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "incremental: {} entries — {} replayed, {} re-analyzed; {} states explored, {} skipped ({:.1}%) in {:.1?}",
            self.outcomes.len(),
            self.reused,
            self.reanalyzed,
            self.states_explored,
            self.states_skipped,
            100.0 * self.skip_ratio(),
            self.wall,
        )?;
        for o in &self.outcomes {
            writeln!(f, "{}", o.line)?;
        }
        for o in self.regressions() {
            writeln!(
                f,
                "REGRESSION: {} flipped {} -> {}",
                o.name,
                o.flip.expect("regressed implies a flip"),
                o.verdict,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_asm::assemble;
    use sct_core::examples::fig1;

    fn fig1_blocks() -> (Program, Vec<(Pc, u64)>) {
        let (p, _) = fig1();
        let blocks = block_hashes(&p);
        (p, blocks)
    }

    const SOURCE: &str = "\
.entry start
.reg ra = 9
start:
    br gt(4, ra), then, out
then:
    rb = load [0x40, ra]
    rc = load [0x50, rb]
out:
    ret
";

    #[test]
    fn fingerprint_stable_under_reparse() {
        let p1 = assemble(SOURCE).expect("assembles").program;
        let p2 = assemble(SOURCE).expect("assembles again").program;
        assert_eq!(block_hashes(&p1), block_hashes(&p2));
        let opts = DetectorOptions::v1_mode(16);
        let tag = config_tag(&opts, 16, &[]);
        assert_eq!(
            entry_fingerprint(&block_hashes(&p1), tag),
            entry_fingerprint(&block_hashes(&p2), tag),
        );
    }

    #[test]
    fn fingerprint_moves_on_single_instruction_edit() {
        let base = assemble(SOURCE).expect("assembles").program;
        let edited = assemble(&SOURCE.replace("gt(4, ra)", "gt(5, ra)"))
            .expect("assembles")
            .program;
        let tag = config_tag(&DetectorOptions::v1_mode(16), 16, &[]);
        assert_ne!(
            entry_fingerprint(&block_hashes(&base), tag),
            entry_fingerprint(&block_hashes(&edited), tag),
        );
        // Exactly one region moved.
        let before: BTreeMap<Pc, u64> = block_hashes(&base).into_iter().collect();
        let after: BTreeMap<Pc, u64> = block_hashes(&edited).into_iter().collect();
        let changed = after
            .iter()
            .filter(|(pc, h)| before.get(pc) != Some(h))
            .count();
        assert_eq!(changed, 1, "{before:?} vs {after:?}");
    }

    #[test]
    fn config_tag_tracks_bound_mode_and_symbolics() {
        let v1 = DetectorOptions::v1_mode(16);
        let v4 = DetectorOptions::v4_mode(16);
        assert_ne!(config_tag(&v1, 16, &[]), config_tag(&v1, 20, &[]));
        assert_ne!(config_tag(&v1, 16, &[]), config_tag(&v4, 16, &[]));
        assert_ne!(
            config_tag(&v1, 16, &[]),
            config_tag(&v1, 16, &[sct_core::reg::names::RA]),
        );
        // Thread count must NOT move the fingerprint.
        let mut threaded = v1;
        threaded.explorer.threads = 8;
        assert_eq!(config_tag(&v1, 16, &[]), config_tag(&threaded, 16, &[]));
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let (p, blocks) = fig1_blocks();
        let tag = config_tag(&DetectorOptions::v1_mode(16), 16, &[]);
        let mut m = BaselineManifest::empty();
        m.upsert(BaselineEntry {
            name: "fig1".into(),
            fingerprint: entry_fingerprint(&blocks, tag),
            blocks: blocks.clone(),
            verdict: Verdict::Insecure { witnesses: 2 },
            line: "fig1: VIOLATION (10 states, 4 schedules explored, strategy lifo)".into(),
            states: 10,
            schedules: 4,
            strategy: "lifo".into(),
            truncated: false,
        });
        m.upsert(BaselineEntry {
            name: "other".into(),
            fingerprint: 7,
            blocks: vec![(0, 1)],
            verdict: Verdict::Unknown { explored: 99 },
            line: "other: unknown (budget exhausted) (...)".into(),
            states: 99,
            schedules: 1,
            strategy: "fifo".into(),
            truncated: true,
        });
        let parsed = BaselineManifest::from_text(&m.to_text()).expect("round trip");
        assert_eq!(parsed, m);
        assert_eq!(parsed.get("fig1").unwrap().blocks, blocks);
        let _ = p;
    }

    #[test]
    fn manifest_rejects_version_skew_and_garbage() {
        let skew = "{\"manifest\":\"pitchfork-baseline\",\"version\":2,\"entries\":0}\n";
        assert!(matches!(
            BaselineManifest::from_text(skew),
            Err(BaselineError::Version(2)),
        ));
        assert!(BaselineManifest::from_text("not json\n").is_err());
        assert!(BaselineManifest::from_text("").unwrap().entries().is_empty());
    }

    #[test]
    fn planner_classifies_unchanged_dirty_and_new() {
        let (_, blocks) = fig1_blocks();
        let tag = config_tag(&DetectorOptions::v1_mode(16), 16, &[]);
        let fp = entry_fingerprint(&blocks, tag);
        let mut m = BaselineManifest::empty();
        m.upsert(BaselineEntry {
            name: "fig1".into(),
            fingerprint: fp,
            blocks: blocks.clone(),
            verdict: Verdict::Secure,
            line: String::new(),
            states: 1,
            schedules: 1,
            strategy: "lifo".into(),
            truncated: false,
        });
        assert_eq!(plan_entry(&m, "fig1", fp, &blocks), EntryPlan::Unchanged);
        assert_eq!(plan_entry(&m, "missing", fp, &blocks), EntryPlan::New);
        let mut edited = blocks.clone();
        edited[0].1 ^= 1;
        let fp2 = entry_fingerprint(&edited, tag);
        assert_eq!(
            plan_entry(&m, "fig1", fp2, &edited),
            EntryPlan::Dirty { changed_blocks: 1 },
        );
        // A config-only change still reads as dirty with one block.
        let fp3 = entry_fingerprint(&blocks, tag ^ 1);
        assert_eq!(
            plan_entry(&m, "fig1", fp3, &blocks),
            EntryPlan::Dirty { changed_blocks: 1 },
        );
    }

    #[test]
    fn regression_is_a_flip_to_insecure() {
        let insecure = IncrementalOutcome {
            name: "x".into(),
            plan: EntryPlan::Dirty { changed_blocks: 1 },
            verdict: Verdict::Insecure { witnesses: 1 },
            line: String::new(),
            states: 5,
            flip: Some(Verdict::Secure),
        };
        assert!(insecure.regressed());
        let fixed = IncrementalOutcome {
            verdict: Verdict::Secure,
            flip: Some(Verdict::Insecure { witnesses: 1 }),
            ..insecure.clone()
        };
        assert!(!fixed.regressed());
        let still_insecure = IncrementalOutcome {
            flip: None,
            ..insecure.clone()
        };
        assert!(!still_insecure.regressed());
    }
}
