//! The textual corpus: `.sasm` sources shipped with the crate, as both
//! CLI fixtures and end-to-end assembler tests.

use crate::harness::Expectation;
use sct_asm::{assemble, Assembled};

/// A corpus entry: a named assembly source with expected verdicts.
pub struct CorpusEntry {
    /// File stem (e.g. `spectre_v1`).
    pub name: &'static str,
    /// The assembly source text.
    pub source: &'static str,
    /// Expected verdicts.
    pub expect: Expectation,
}

/// All shipped `.sasm` sources with their expectations.
pub fn entries() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "spectre_v1",
            source: include_str!("../corpus/spectre_v1.sasm"),
            expect: Expectation::V1,
        },
        CorpusEntry {
            name: "spectre_v1_fenced",
            source: include_str!("../corpus/spectre_v1_fenced.sasm"),
            expect: Expectation::SAFE,
        },
        CorpusEntry {
            name: "spectre_v1p1",
            source: include_str!("../corpus/spectre_v1p1.sasm"),
            expect: Expectation::V1,
        },
        CorpusEntry {
            name: "spectre_v4",
            source: include_str!("../corpus/spectre_v4.sasm"),
            expect: Expectation::V4_ONLY,
        },
        CorpusEntry {
            name: "ct_select",
            source: include_str!("../corpus/ct_select.sasm"),
            expect: Expectation::SAFE,
        },
    ]
}

/// Assemble a corpus entry.
///
/// # Panics
///
/// Panics if the shipped source does not assemble (a packaging bug).
pub fn assemble_entry(entry: &CorpusEntry) -> Assembled {
    assemble(entry.source)
        .unwrap_or_else(|e| panic!("corpus entry `{}` does not assemble: {e}", entry.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_case, LitmusCase};

    #[test]
    fn corpus_assembles_and_matches_expectations() {
        for entry in entries() {
            let asm = assemble_entry(&entry);
            let case = LitmusCase {
                name: entry.name,
                description: "corpus entry",
                program: asm.program,
                config: asm.config,
                expect: entry.expect,
                bound: 16,
            };
            let got = run_case(&case);
            assert_eq!(
                got.sequentially_clean, entry.expect.sequentially_clean,
                "{}: sequential",
                entry.name
            );
            assert_eq!(got.v1_violation, entry.expect.v1_violation, "{}: v1", entry.name);
            assert_eq!(got.v4_violation, entry.expect.v4_violation, "{}: v4", entry.name);
        }
    }

    #[test]
    fn corpus_round_trips_through_the_disassembler() {
        for entry in entries() {
            let asm = assemble_entry(&entry);
            let text = sct_asm::disassemble_with(&asm.program, Some(&asm.config));
            let again = sct_asm::assemble(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_eq!(again.program, asm.program, "{}", entry.name);
            assert_eq!(again.config, asm.config, "{}", entry.name);
        }
    }
}
