//! The textual corpus: `.sasm` sources shipped with the crate, as both
//! CLI fixtures and end-to-end assembler tests.
//!
//! Beyond the original five sources, the corpus carries every remaining
//! Kocher-style variant of [`crate::kocher`] and the paper's figure
//! gadgets in text form, so the `pitchfork` CLI and
//! [`pitchfork::BatchAnalyzer`] exercise the same programs the builder
//! suites do. Figure gadgets that need an extension mode (the Figure 2
//! aliasing predictor, the Figure 11 Spectre v2 jump) are expected SAFE
//! here: the corpus harness runs the paper's v1/v4 modes only.

use crate::harness::Expectation;
use sct_asm::{assemble, Assembled};

/// A corpus entry: a named assembly source with expected verdicts.
pub struct CorpusEntry {
    /// File stem (e.g. `spectre_v1`).
    pub name: &'static str,
    /// The assembly source text.
    pub source: &'static str,
    /// Expected verdicts.
    pub expect: Expectation,
    /// Speculation bound sufficient to expose the case's behaviour.
    pub bound: usize,
}

/// A case that leaks even sequentially (`kocher_04`'s insufficient
/// masking keeps the original Kocher flavour).
const SEQ_LEAK: Expectation = Expectation {
    sequentially_clean: false,
    v1_violation: true,
    v4_violation: true,
};

/// All shipped `.sasm` sources with their expectations.
pub fn entries() -> Vec<CorpusEntry> {
    fn entry(
        name: &'static str,
        source: &'static str,
        expect: Expectation,
        bound: usize,
    ) -> CorpusEntry {
        CorpusEntry {
            name,
            source,
            expect,
            bound,
        }
    }
    vec![
        entry(
            "spectre_v1",
            include_str!("../corpus/spectre_v1.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "spectre_v1_fenced",
            include_str!("../corpus/spectre_v1_fenced.sasm"),
            Expectation::SAFE,
            16,
        ),
        entry(
            "spectre_v1p1",
            include_str!("../corpus/spectre_v1p1.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "spectre_v4",
            include_str!("../corpus/spectre_v4.sasm"),
            Expectation::V4_ONLY,
            16,
        ),
        entry(
            "ct_select",
            include_str!("../corpus/ct_select.sasm"),
            Expectation::SAFE,
            16,
        ),
        // The remaining Kocher variants (kocher_01/kocher_06 ship above
        // as spectre_v1 / spectre_v1_fenced).
        entry(
            "kocher_02",
            include_str!("../corpus/kocher_02.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_03",
            include_str!("../corpus/kocher_03.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_04",
            include_str!("../corpus/kocher_04.sasm"),
            SEQ_LEAK,
            16,
        ),
        entry(
            "kocher_05",
            include_str!("../corpus/kocher_05.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_07",
            include_str!("../corpus/kocher_07.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_08",
            include_str!("../corpus/kocher_08.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_09",
            include_str!("../corpus/kocher_09.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_10",
            include_str!("../corpus/kocher_10.sasm"),
            Expectation::SAFE,
            16,
        ),
        entry(
            "kocher_11",
            include_str!("../corpus/kocher_11.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_12",
            include_str!("../corpus/kocher_12.sasm"),
            Expectation::SAFE,
            16,
        ),
        entry(
            "kocher_13",
            include_str!("../corpus/kocher_13.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_14",
            include_str!("../corpus/kocher_14.sasm"),
            Expectation::V1,
            16,
        ),
        entry(
            "kocher_15",
            include_str!("../corpus/kocher_15.sasm"),
            Expectation::V1,
            20,
        ),
        // The paper's figure gadgets.
        entry(
            "fig2_alias",
            include_str!("../corpus/fig2_alias.sasm"),
            Expectation::SAFE,
            20,
        ),
        entry(
            "fig6_v1p1_store",
            include_str!("../corpus/fig6_v1p1_store.sasm"),
            Expectation::V1,
            20,
        ),
        entry(
            "fig8_fence",
            include_str!("../corpus/fig8_fence.sasm"),
            Expectation::SAFE,
            20,
        ),
        entry(
            "fig11_spectre_v2",
            include_str!("../corpus/fig11_spectre_v2.sasm"),
            Expectation::SAFE,
            20,
        ),
        entry(
            "fig13_retpoline",
            include_str!("../corpus/fig13_retpoline.sasm"),
            Expectation::SAFE,
            20,
        ),
    ]
}

/// Assemble a corpus entry.
///
/// # Panics
///
/// Panics if the shipped source does not assemble (a packaging bug).
pub fn assemble_entry(entry: &CorpusEntry) -> Assembled {
    assemble(entry.source)
        .unwrap_or_else(|e| panic!("corpus entry `{}` does not assemble: {e}", entry.name))
}

/// The whole textual corpus as [`crate::harness::LitmusCase`]s, for
/// batch runs over exactly what the CLI sees.
pub fn cases() -> Vec<crate::harness::LitmusCase> {
    entries()
        .into_iter()
        .map(|entry| {
            let asm = assemble_entry(&entry);
            crate::harness::LitmusCase {
                name: entry.name,
                description: "textual corpus entry",
                program: asm.program,
                config: asm.config,
                expect: entry.expect,
                bound: entry.bound,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_case, LitmusCase};

    #[test]
    fn corpus_assembles_and_matches_expectations() {
        for entry in entries() {
            let asm = assemble_entry(&entry);
            let case = LitmusCase {
                name: entry.name,
                description: "corpus entry",
                program: asm.program,
                config: asm.config,
                expect: entry.expect,
                bound: entry.bound,
            };
            let got = run_case(&case);
            assert_eq!(
                got.sequentially_clean, entry.expect.sequentially_clean,
                "{}: sequential",
                entry.name
            );
            assert_eq!(got.v1_violation, entry.expect.v1_violation, "{}: v1", entry.name);
            assert_eq!(got.v4_violation, entry.expect.v4_violation, "{}: v4", entry.name);
        }
    }

    #[test]
    fn corpus_round_trips_through_the_disassembler() {
        for entry in entries() {
            let asm = assemble_entry(&entry);
            let text = sct_asm::disassemble_with(&asm.program, Some(&asm.config));
            let again = sct_asm::assemble(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_eq!(again.program, asm.program, "{}", entry.name);
            assert_eq!(again.config, asm.config, "{}", entry.name);
        }
    }

    #[test]
    fn corpus_covers_the_kocher_suite_and_figure_gadgets() {
        let names: Vec<&str> = entries().iter().map(|e| e.name).collect();
        for k in [
            "kocher_02",
            "kocher_05",
            "kocher_12",
            "kocher_15",
            "fig2_alias",
            "fig13_retpoline",
        ] {
            assert!(names.contains(&k), "corpus is missing {k}");
        }
        assert!(names.len() >= 23);
    }
}
