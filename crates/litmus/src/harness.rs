//! The litmus harness: named cases with expected verdicts, and a runner
//! that checks them against the sequential semantics and both Pitchfork
//! modes.

use pitchfork::{BatchAnalyzer, BatchItem, BatchReport, DetectorOptions};
use sct_core::sched::sequential::run_sequential;
use sct_core::{Config, Params, Program};
use std::fmt;

/// What a litmus case is expected to exhibit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Expectation {
    /// The canonical sequential execution leaks no secret observation
    /// (i.e. the case is sequentially constant-time). All our cases are,
    /// by construction — the violations are speculative-only.
    pub sequentially_clean: bool,
    /// Pitchfork flags the case in v1/v1.1 mode (no forwarding hazards).
    pub v1_violation: bool,
    /// Pitchfork flags the case in v4 mode (with forwarding hazards).
    pub v4_violation: bool,
}

impl Expectation {
    /// Speculatively safe everywhere.
    pub const SAFE: Expectation = Expectation {
        sequentially_clean: true,
        v1_violation: false,
        v4_violation: false,
    };

    /// Flagged in both modes (v1-style leak; v4 mode subsumes it).
    pub const V1: Expectation = Expectation {
        sequentially_clean: true,
        v1_violation: true,
        v4_violation: true,
    };

    /// Flagged only when forwarding-hazard detection is on (v4-style).
    pub const V4_ONLY: Expectation = Expectation {
        sequentially_clean: true,
        v1_violation: false,
        v4_violation: true,
    };
}

/// A named litmus case.
pub struct LitmusCase {
    /// Short identifier (e.g. `kocher_01`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
    /// Expected verdicts.
    pub expect: Expectation,
    /// Speculation bound sufficient to expose the case's behaviour.
    pub bound: usize,
}

/// The observed verdicts for a case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CaseResult {
    /// Sequential trace carried no secret observation.
    pub sequentially_clean: bool,
    /// v1-mode Pitchfork verdict.
    pub v1_violation: bool,
    /// v4-mode Pitchfork verdict.
    pub v4_violation: bool,
}

impl fmt::Display for CaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq-clean={} v1={} v4={}",
            self.sequentially_clean, self.v1_violation, self.v4_violation
        )
    }
}

/// Run a case through the sequential semantics and both detector modes.
pub fn run_case(case: &LitmusCase) -> CaseResult {
    let seq = run_sequential(
        &case.program,
        case.config.clone(),
        Params::paper(),
        200_000,
    )
    .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", case.name));
    let v1 = pitchfork::Detector::new(pitchfork::DetectorOptions::v1_mode(case.bound))
        .analyze(&case.program, &case.config);
    let v4 = pitchfork::Detector::new(pitchfork::DetectorOptions::v4_mode(case.bound))
        .analyze(&case.program, &case.config);
    CaseResult {
        sequentially_clean: seq.outcome.trace.is_public(),
        v1_violation: v1.has_violations(),
        v4_violation: v4.has_violations(),
    }
}

/// The whole suite as batch items, preserving each case's speculation
/// bound.
pub fn batch_items(cases: &[LitmusCase]) -> Vec<BatchItem> {
    cases
        .iter()
        .map(|c| BatchItem::with_bound(c.name, c.program.clone(), c.config.clone(), c.bound))
        .collect()
}

/// [`batch_items`] with `regs` symbolized in every item: the analysis
/// covers all attacker-controlled values of those registers, which
/// makes branch conditions and addresses symbolic and therefore drives
/// the constraint solver (and its verdict memo) — concrete litmus runs
/// constant-fold every condition and never query it.
pub fn symbolic_batch_items(cases: &[LitmusCase], regs: &[sct_core::Reg]) -> Vec<BatchItem> {
    batch_items(cases)
        .into_iter()
        .map(|item| item.symbolize(regs.iter().copied()))
        .collect()
}

/// Batch verdicts for a suite: one shared-arena pass per detector mode.
pub struct CorpusVerdicts {
    /// The v1-mode (no forwarding hazards) batch.
    pub v1: BatchReport,
    /// The v4-mode (forwarding hazards) batch.
    pub v4: BatchReport,
}

impl CorpusVerdicts {
    /// The observed verdicts for one named case (sequential cleanliness
    /// is not covered by the batches; see [`run_case`]).
    pub fn violations(&self, name: &str) -> Option<(bool, bool)> {
        let v1 = self.v1.outcome(name)?.report.has_violations();
        let v4 = self.v4.outcome(name)?.report.has_violations();
        Some((v1, v4))
    }
}

/// Run a whole suite through [`BatchAnalyzer`] — one pass per mode,
/// every case sharing the expression arena. Equivalent, case for case,
/// to [`run_case`]'s per-case detector verdicts (the batch suite test
/// checks exactly that), but reports corpus-wide statistics.
pub fn run_corpus(cases: &[LitmusCase]) -> CorpusVerdicts {
    let items = batch_items(cases);
    // The 16 is a placeholder: every item carries `Some(case.bound)`,
    // which overrides the batch-wide bound per program.
    CorpusVerdicts {
        v1: BatchAnalyzer::new(DetectorOptions::v1_mode(16)).analyze_all(items.clone()),
        v4: BatchAnalyzer::new(DetectorOptions::v4_mode(16)).analyze_all(items),
    }
}

/// A warm-started corpus run: the concrete per-mode verdicts plus a
/// symbolic-index v1 pass (the pass that exercises the constraint
/// solver and its persisted verdict memo).
pub struct CachedCorpusRun {
    /// The concrete v1/v4 batch verdicts, as in [`run_corpus`].
    pub verdicts: CorpusVerdicts,
    /// A v1-mode pass with the attacker index register (`ra`)
    /// symbolized in every case.
    pub v1_symbolic: BatchReport,
}

/// [`run_corpus`], warm-started from (and saved back to) a `sct-cache`
/// snapshot file: the expression arena and the solver-verdict memo are
/// hydrated from `cache` before the first batch, and the state after
/// all passes — the concrete v1/v4 batches plus a symbolic-`ra` v1
/// batch — is persisted for the next invocation. The v1 report's
/// [`pitchfork::BatchReport::cache_load`] says what the warm start
/// transferred.
pub fn run_corpus_cached(
    cases: &[LitmusCase],
    cache: &std::path::Path,
) -> Result<CachedCorpusRun, sct_cache::CacheError> {
    let items = batch_items(cases);
    let analyzer = BatchAnalyzer::new(DetectorOptions::v1_mode(16)).with_cache(cache)?;
    let run = CachedCorpusRun {
        verdicts: CorpusVerdicts {
            v1: analyzer.analyze_all(items.clone()),
            v4: BatchAnalyzer::new(DetectorOptions::v4_mode(16)).analyze_all(items),
        },
        v1_symbolic: BatchAnalyzer::new(DetectorOptions::v1_mode(16)).analyze_all(
            symbolic_batch_items(cases, &[sct_core::reg::names::RA]),
        ),
    };
    // Saving goes through the analyzer so every pass's state (the
    // arena and memo are process-wide) lands in the snapshot.
    analyzer.save_cache()?;
    Ok(run)
}

/// Check a case against its expectation, panicking with context on
/// mismatch (used by the test suites).
pub fn assert_case(case: &LitmusCase) {
    let got = run_case(case);
    let want = case.expect;
    assert_eq!(
        got.sequentially_clean, want.sequentially_clean,
        "{}: sequential cleanliness mismatch ({})",
        case.name, case.description
    );
    assert_eq!(
        got.v1_violation, want.v1_violation,
        "{}: v1-mode verdict mismatch ({}): got {got}",
        case.name, case.description
    );
    assert_eq!(
        got.v4_violation, want.v4_violation,
        "{}: v4-mode verdict mismatch ({}): got {got}",
        case.name, case.description
    );
}
