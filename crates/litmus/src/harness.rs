//! The litmus harness: named cases with expected verdicts, and a runner
//! that checks them against the sequential semantics and both Pitchfork
//! modes.
//!
//! All corpus passes are driven through [`pitchfork::AnalysisSession`]
//! — the harness never wires solver, cache, or epoch state by hand.

use pitchfork::{AnalysisSession, BatchItem, BatchReport, DetectorOptions, StrategyKind};
use sct_core::sched::sequential::run_sequential;
use sct_core::{Config, Params, Program, Reg};
use std::fmt;

/// What a litmus case is expected to exhibit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Expectation {
    /// The canonical sequential execution leaks no secret observation
    /// (i.e. the case is sequentially constant-time). All our cases are,
    /// by construction — the violations are speculative-only.
    pub sequentially_clean: bool,
    /// Pitchfork flags the case in v1/v1.1 mode (no forwarding hazards).
    pub v1_violation: bool,
    /// Pitchfork flags the case in v4 mode (with forwarding hazards).
    pub v4_violation: bool,
}

impl Expectation {
    /// Speculatively safe everywhere.
    pub const SAFE: Expectation = Expectation {
        sequentially_clean: true,
        v1_violation: false,
        v4_violation: false,
    };

    /// Flagged in both modes (v1-style leak; v4 mode subsumes it).
    pub const V1: Expectation = Expectation {
        sequentially_clean: true,
        v1_violation: true,
        v4_violation: true,
    };

    /// Flagged only when forwarding-hazard detection is on (v4-style).
    pub const V4_ONLY: Expectation = Expectation {
        sequentially_clean: true,
        v1_violation: false,
        v4_violation: true,
    };
}

/// A named litmus case.
pub struct LitmusCase {
    /// Short identifier (e.g. `kocher_01`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
    /// Expected verdicts.
    pub expect: Expectation,
    /// Speculation bound sufficient to expose the case's behaviour.
    pub bound: usize,
}

/// The observed verdicts for a case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CaseResult {
    /// Sequential trace carried no secret observation.
    pub sequentially_clean: bool,
    /// v1-mode Pitchfork verdict.
    pub v1_violation: bool,
    /// v4-mode Pitchfork verdict.
    pub v4_violation: bool,
}

impl fmt::Display for CaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq-clean={} v1={} v4={}",
            self.sequentially_clean, self.v1_violation, self.v4_violation
        )
    }
}

/// Run a case through the sequential semantics and both detector modes
/// under the given frontier order.
pub fn run_case_with_strategy(case: &LitmusCase, strategy: StrategyKind) -> CaseResult {
    let seq = run_sequential(
        &case.program,
        case.config.clone(),
        Params::paper(),
        200_000,
    )
    .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", case.name));
    let mut session = AnalysisSession::builder()
        .v1_mode(case.bound)
        .strategy(strategy)
        .build()
        .expect("uncached session");
    let v1 = session.analyze(&case.program, &case.config);
    session.set_options(DetectorOptions::v4_mode(case.bound));
    let v4 = session.analyze(&case.program, &case.config);
    CaseResult {
        sequentially_clean: seq.outcome.trace.is_public(),
        v1_violation: v1.has_violations(),
        v4_violation: v4.has_violations(),
    }
}

/// [`run_case_with_strategy`] under the default (LIFO) order.
pub fn run_case(case: &LitmusCase) -> CaseResult {
    run_case_with_strategy(case, StrategyKind::Lifo)
}

/// The whole suite as batch items, preserving each case's speculation
/// bound.
pub fn batch_items(cases: &[LitmusCase]) -> Vec<BatchItem> {
    cases
        .iter()
        .map(|c| BatchItem::with_bound(c.name, c.program.clone(), c.config.clone(), c.bound))
        .collect()
}

/// [`batch_items`] with `regs` symbolized in every item: the analysis
/// covers all attacker-controlled values of those registers, which
/// makes branch conditions and addresses symbolic and therefore drives
/// the constraint solver (and its verdict memo) — concrete litmus runs
/// constant-fold every condition and never query it.
pub fn symbolic_batch_items(cases: &[LitmusCase], regs: &[Reg]) -> Vec<BatchItem> {
    batch_items(cases)
        .into_iter()
        .map(|item| item.symbolize(regs.iter().copied()))
        .collect()
}

/// The attacker-controlled input registers of one case: every register
/// the program *reads before writing* (in program-point order) whose
/// initial value is public — i.e. the registers an attacker calling the
/// gadget actually chooses. Secret-labeled registers are excluded:
/// symbolizing those would model a different threat, not a wider
/// attacker.
pub fn attacker_regs(case: &LitmusCase) -> Vec<Reg> {
    let mut written: std::collections::BTreeSet<Reg> = std::collections::BTreeSet::new();
    let mut inputs: Vec<Reg> = Vec::new();
    for (_, instr) in case.program.iter() {
        for r in instr.reads() {
            if !written.contains(&r) && !inputs.contains(&r) {
                inputs.push(r);
            }
        }
        if let Some(dst) = instr.writes() {
            written.insert(dst);
        }
    }
    inputs.retain(|&r| {
        r != Reg::RSP && r != Reg::RTMP && case.config.regs.read(r).label.is_public()
    });
    inputs
}

/// The suite as batch items with **per-case** attacker register sets
/// symbolized ([`attacker_regs`]) — the full symbolic-input coverage
/// pass, against which the historical `ra`-only pass is the baseline.
pub fn sweep_batch_items(cases: &[LitmusCase]) -> Vec<BatchItem> {
    cases
        .iter()
        .zip(batch_items(cases))
        .map(|(case, item)| item.symbolize(attacker_regs(case)))
        .collect()
}

/// Batch verdicts for a suite: one shared-arena pass per detector mode.
pub struct CorpusVerdicts {
    /// The v1-mode (no forwarding hazards) batch.
    pub v1: BatchReport,
    /// The v4-mode (forwarding hazards) batch.
    pub v4: BatchReport,
}

impl CorpusVerdicts {
    /// The observed verdicts for one named case (sequential cleanliness
    /// is not covered by the batches; see [`run_case`]).
    pub fn violations(&self, name: &str) -> Option<(bool, bool)> {
        let v1 = self.v1.outcome(name)?.report.has_violations();
        let v4 = self.v4.outcome(name)?.report.has_violations();
        Some((v1, v4))
    }
}

/// Run a whole suite through one [`AnalysisSession`] — one batch per
/// mode, every case sharing the expression arena, the frontier ordered
/// by `strategy`. Equivalent, case for case, to [`run_case`]'s
/// per-case detector verdicts (the batch suite test checks exactly
/// that), but reports corpus-wide statistics.
pub fn run_corpus_with_strategy(cases: &[LitmusCase], strategy: StrategyKind) -> CorpusVerdicts {
    // threads = 1 is the serial engine, byte-identical by contract.
    run_corpus_parallel(cases, strategy, 1)
}

/// [`run_corpus_with_strategy`] under the default (LIFO) order.
pub fn run_corpus(cases: &[LitmusCase]) -> CorpusVerdicts {
    run_corpus_with_strategy(cases, StrategyKind::Lifo)
}

/// [`run_corpus_with_strategy`] on a multi-threaded frontier: same
/// batches, same per-case bounds, each exploration worked by `threads`
/// workers. The parallel-equivalence suite pins this against the
/// serial run, per case and per mode, for every strategy.
pub fn run_corpus_parallel(
    cases: &[LitmusCase],
    strategy: StrategyKind,
    threads: usize,
) -> CorpusVerdicts {
    let items = batch_items(cases);
    // The 16 is a placeholder: every item carries `Some(case.bound)`,
    // which overrides the batch-wide bound per program.
    let mut session = AnalysisSession::builder()
        .v1_mode(16)
        .strategy(strategy)
        .parallelism(threads)
        .build()
        .expect("uncached session");
    let v1 = session.run_batch(items.clone());
    session.set_options(DetectorOptions::v4_mode(16));
    let v4 = session.run_batch(items);
    CorpusVerdicts { v1, v4 }
}

/// The symbolic-input coverage comparison: the historical `ra`-only
/// pass against the per-case [`attacker_regs`] sweep, both in v1 mode
/// through the same session (so the sweep reuses arena structure and
/// memoized verdicts the baseline just built).
pub struct SymbolicSweep {
    /// The baseline pass (only `ra` symbolized, every case).
    pub ra_only: BatchReport,
    /// The sweep pass (per-case attacker register sets).
    pub per_case: BatchReport,
}

impl SymbolicSweep {
    /// Cases whose violation verdict differs between baseline and
    /// sweep: `(name, baseline flagged, sweep flagged)`. A wider
    /// attacker can only add behaviours, so entries here are leaks the
    /// `ra`-only pass missed (or cases where `ra` is not even an input
    /// and the baseline over-symbolized).
    pub fn verdict_flips(&self) -> Vec<(&str, bool, bool)> {
        self.per_case
            .outcomes
            .iter()
            .filter_map(|sweep| {
                let base = self.ra_only.outcome(&sweep.name)?;
                let (b, s) = (
                    base.report.has_violations(),
                    sweep.report.has_violations(),
                );
                (b != s).then_some((sweep.name.as_str(), b, s))
            })
            .collect()
    }

    /// Solver-memo hit rates `(baseline, sweep)` — how much of the
    /// sweep's extra constraint traffic was answered from verdicts the
    /// baseline (and earlier epochs, with a cache) already memoized.
    pub fn memo_hit_rates(&self) -> (f64, f64) {
        (
            self.ra_only.totals.solver_memo_hit_rate(),
            self.per_case.totals.solver_memo_hit_rate(),
        )
    }
}

impl fmt::Display for SymbolicSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (base_rate, sweep_rate) = self.memo_hit_rates();
        writeln!(
            f,
            "symbolic sweep: ra-only {} flagged ({} queries, {:.1}% memo), \
             per-case {} flagged ({} queries, {:.1}% memo)",
            self.ra_only.totals.flagged,
            self.ra_only.totals.solver_queries,
            100.0 * base_rate,
            self.per_case.totals.flagged,
            self.per_case.totals.solver_queries,
            100.0 * sweep_rate,
        )?;
        for (name, base, sweep) in self.verdict_flips() {
            writeln!(f, "  verdict flip: {name}: ra-only={base} per-case={sweep}")?;
        }
        Ok(())
    }
}

/// A warm-started corpus run: the concrete per-mode verdicts plus the
/// symbolic passes (the passes that exercise the constraint solver and
/// its persisted verdict memo).
pub struct CachedCorpusRun {
    /// The concrete v1/v4 batch verdicts, as in [`run_corpus`].
    pub verdicts: CorpusVerdicts,
    /// The per-case attacker-register sweep and its deltas against the
    /// `ra`-only baseline.
    pub sweep: SymbolicSweep,
}

impl CachedCorpusRun {
    /// The v1-mode pass with the attacker index register (`ra`)
    /// symbolized in every case — the sweep's baseline.
    pub fn v1_symbolic(&self) -> &BatchReport {
        &self.sweep.ra_only
    }
}

/// [`run_corpus`], warm-started from (and saved back to) a `sct-cache`
/// snapshot file through **one** [`AnalysisSession`]: the expression
/// arena and the solver-verdict memo are hydrated from `cache` before
/// the first batch, and the state after all passes — the concrete
/// v1/v4 batches, the symbolic-`ra` v1 batch, and the per-case
/// attacker-register sweep — is persisted for the next invocation. The
/// reports' [`pitchfork::BatchReport::cache_load`] says what the warm
/// start transferred.
pub fn run_corpus_cached(
    cases: &[LitmusCase],
    cache: &std::path::Path,
) -> Result<CachedCorpusRun, sct_cache::CacheError> {
    let items = batch_items(cases);
    let mut session = AnalysisSession::builder()
        .v1_mode(16)
        .cache(cache)
        .build()?;
    let v1 = session.run_batch(items.clone());
    session.set_options(DetectorOptions::v4_mode(16));
    let v4 = session.run_batch(items);
    session.set_options(DetectorOptions::v1_mode(16));
    let ra_only = session.run_batch(symbolic_batch_items(
        cases,
        &[sct_core::reg::names::RA],
    ));
    let per_case = session.run_batch(sweep_batch_items(cases));
    // Saving goes through the session so every pass's state (the arena
    // and memo are process-wide) lands in the snapshot.
    session.save()?;
    Ok(CachedCorpusRun {
        verdicts: CorpusVerdicts { v1, v4 },
        sweep: SymbolicSweep { ra_only, per_case },
    })
}

/// One corpus entry's daemon-served result: the entry's name and the
/// job view the client got back (status, typed verdict, exploration
/// stats, rendered witnesses).
pub struct ServedOutcome {
    /// The corpus entry name.
    pub name: String,
    /// The daemon's answer.
    pub view: pitchfork::client::JobView,
}

impl ServedOutcome {
    /// `true` when the daemon flagged the entry.
    pub fn flagged(&self) -> bool {
        self.view.verdict.is_some_and(|v| v.is_insecure())
    }
}

/// Run corpus entries through a **live daemon**: submit every entry's
/// `.sasm` source over `client` (FIFO — the daemon preserves order),
/// then collect the verdicts. Each entry runs in `mode` at its own
/// speculation bound.
///
/// This is the served twin of [`run_corpus`]: same programs, same
/// bounds, but analyzed by a resident `pitchfork --serve` process whose
/// arena and solver memo persist across submissions (and clients) —
/// the serve-mode tests pin verdict equivalence between the two paths.
pub fn run_corpus_served(
    entries: &[crate::corpus::CorpusEntry],
    client: &mut pitchfork::client::Client,
    mode: pitchfork::service::JobMode,
) -> Result<Vec<ServedOutcome>, pitchfork::client::ClientError> {
    let mut pending = Vec::new();
    for entry in entries {
        let spec = pitchfork::service::JobSpec {
            mode,
            bound: Some(entry.bound),
            strategy: None,
            threads: 0,
            symbolic: Vec::new(),
            max_states: None,
            deadline_ms: None,
        };
        let id = client.submit_source(entry.name, entry.source, spec)?;
        pending.push((entry.name.to_string(), id));
    }
    pending
        .into_iter()
        .map(|(name, id)| {
            client
                .wait(id, std::time::Duration::from_secs(120))
                .map(|view| ServedOutcome { name, view })
        })
        .collect()
}

/// Check a case against its expectation, panicking with context on
/// mismatch (used by the test suites).
pub fn assert_case(case: &LitmusCase) {
    let got = run_case(case);
    let want = case.expect;
    assert_eq!(
        got.sequentially_clean, want.sequentially_clean,
        "{}: sequential cleanliness mismatch ({})",
        case.name, case.description
    );
    assert_eq!(
        got.v1_violation, want.v1_violation,
        "{}: v1-mode verdict mismatch ({}): got {got}",
        case.name, case.description
    );
    assert_eq!(
        got.v4_violation, want.v4_violation,
        "{}: v4-mode verdict mismatch ({}): got {got}",
        case.name, case.description
    );
}
