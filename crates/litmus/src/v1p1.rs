//! Spectre v1.1 test cases: speculative out-of-bounds *stores* whose
//! data is forwarded to later loads (the paper's Figure 6 pattern).

use crate::harness::{Expectation, LitmusCase};
use crate::layout::{standard_config, A_BASE, A_LEN, B_BASE, SCRATCH, SECRET_BASE};
use sct_asm::builder::{imm, reg, sec, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

fn case(
    name: &'static str,
    description: &'static str,
    build: impl FnOnce(&mut ProgramBuilder),
    attacker_index: u64,
    expect: Expectation,
    bound: usize,
) -> LitmusCase {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let program = b.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    let config = standard_config(program.entry, attacker_index);
    LitmusCase {
        name,
        description,
        program,
        config,
        expect,
        bound,
    }
}

/// `v1p1_01`: the Figure 6 gadget — a bounds-checked store, executed
/// speculatively out of bounds, forwards a secret to an in-bounds load.
///
/// The stored value is a secret immediate standing for `rb = x_sec`;
/// the out-of-bounds index makes `A + ra` collide with the address the
/// later load reads.
pub fn v1p1_01() -> LitmusCase {
    case(
        "v1p1_01",
        "fig. 6: speculative OOB store forwards secret to load pair",
        |b| {
            // if (ra < 4) A[ra] = x_sec;  -- index 5 collides with 0x45
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.store(sec(3), [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(0x45)]);
            b.load(RC, [imm(B_BASE), reg(RC)]);
            b.label("out");
        },
        5,
        Expectation::V1,
        16,
    )
}

/// `v1p1_02`: the forwarded secret escapes through an indirect jump
/// target instead of a load address.
pub fn v1p1_02() -> LitmusCase {
    case(
        "v1p1_02",
        "speculative OOB store corrupts a jump-table slot",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            // Speculatively smashes the jump slot at SCRATCH (= A + 32).
            b.store(sec(7), [imm(A_BASE), reg(RA)]);
            b.load(RD, [imm(SCRATCH)]);
            b.jmpi([reg(RD)]);
            b.label("out");
        },
        SCRATCH - A_BASE, // collide exactly with the slot
        Expectation::V1,
        16,
    )
}

/// `v1p1_03`: a speculative store whose *address* is derived from a
/// speculatively loaded secret (write-variant transmission).
pub fn v1p1_03() -> LitmusCase {
    case(
        "v1p1_03",
        "store address derived from speculative secret load",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.store(imm(0), [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        9,
        Expectation::V1,
        16,
    )
}

/// `v1p1_04`: fence between the OOB store and the load pair — safe.
pub fn v1p1_04() -> LitmusCase {
    case(
        "v1p1_04",
        "fig. 6 gadget with a fence before the loads: safe",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.store(sec(3), [imm(A_BASE), reg(RA)]);
            b.fence();
            b.load(RC, [imm(0x45)]);
            b.load(RC, [imm(B_BASE), reg(RC)]);
            b.label("out");
        },
        5,
        Expectation::SAFE,
        16,
    )
}

/// `v1p1_05`: a *guarded* in-bounds store of secret data forwarded to a
/// load that uses it as an address — only reachable speculatively.
pub fn v1p1_05() -> LitmusCase {
    case(
        "v1p1_05",
        "guarded secret spill forwarded into an address",
        |b| {
            // The guard is architecturally false (ra = 9 ≥ 4): the spill
            // and reload happen only on the mispredicted path.
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(SECRET_BASE)]); // in-bounds *secret* load
            b.store(reg(RB), [imm(SCRATCH)]); // spill
            b.load(RC, [imm(SCRATCH)]); // reload (forwarded)
            b.load(RC, [imm(B_BASE), reg(RC)]); // transmit
            b.label("out");
        },
        9,
        Expectation::V1,
        16,
    )
}

/// `v1p1_06`: same spill/reload but the reload result only feeds `csel`
/// — safe.
pub fn v1p1_06() -> LitmusCase {
    case(
        "v1p1_06",
        "speculative spill/reload into csel only: safe",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(SECRET_BASE)]);
            b.store(reg(RB), [imm(SCRATCH)]);
            b.load(RC, [imm(SCRATCH)]);
            b.op(RD, OpCode::Csel, [reg(RC), imm(1), imm(0)]);
            b.label("out");
        },
        9,
        Expectation::SAFE,
        16,
    )
}

/// The whole suite.
pub fn all() -> Vec<LitmusCase> {
    vec![
        v1p1_01(),
        v1p1_02(),
        v1p1_03(),
        v1p1_04(),
        v1p1_05(),
        v1p1_06(),
    ]
}
