//! A Spectre v1 test suite in the style of Kocher's fifteen examples
//! (citation 19 of the paper), adapted to the `sct` ISA.
//!
//! As in the paper (§4.2), the suite is built so that violations are
//! *speculative-only* wherever possible: the canonical sequential
//! execution of every case except `kocher_04` is constant-time, and the
//! leak appears only under misprediction. `kocher_04` deliberately keeps
//! the original Kocher flavour of a case that leaks even sequentially
//! (insufficient masking), which the paper calls out as the reason for
//! writing a new suite.

use crate::harness::{Expectation, LitmusCase};
use crate::layout::{standard_config, A_BASE, A_LEN, B_BASE, OOB_INDEX, SCRATCH};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

/// A case that leaks even sequentially (labels on the sequential trace).
const SEQ_LEAK: Expectation = Expectation {
    sequentially_clean: false,
    v1_violation: true,
    v4_violation: true,
};

fn case(
    name: &'static str,
    description: &'static str,
    build: impl FnOnce(&mut ProgramBuilder),
    attacker_index: u64,
    expect: Expectation,
    bound: usize,
) -> LitmusCase {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let program = b.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    let config = standard_config(program.entry, attacker_index);
    LitmusCase {
        name,
        description,
        program,
        config,
        expect,
        bound,
    }
}

/// `kocher_01`: the classic double-load bounds-check bypass (Figure 1).
pub fn kocher_01() -> LitmusCase {
    case(
        "kocher_01",
        "classic v1: if (ra < 4) leak B[A[ra]]",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_02`: the same check with reversed comparison operands.
pub fn kocher_02() -> LitmusCase {
    case(
        "kocher_02",
        "v1 with ra < 4 spelled lt(ra, 4)",
        |b| {
            b.br(OpCode::Lt, [reg(RA), imm(A_LEN)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_03`: the leaked byte is scaled before indexing (cache-line
/// style `B[A[ra] * 2]`).
pub fn kocher_03() -> LitmusCase {
    case(
        "kocher_03",
        "v1 with scaled transmission index B[A[ra]*2]",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.op(RD, OpCode::Mul, [reg(RB), imm(2)]);
            b.load(RC, [imm(B_BASE), reg(RD)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_04`: insufficient masking — `ra & 7` still reaches the secret
/// region, so the case leaks **even sequentially** (the Kocher-original
/// flavour the paper's new suite removes).
pub fn kocher_04() -> LitmusCase {
    case(
        "kocher_04",
        "insufficient mask: A[ra & 7] reaches secrets sequentially",
        |b| {
            b.op(RD, OpCode::And, [reg(RA), imm(7)]);
            b.load(RB, [imm(A_BASE), reg(RD)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
        },
        // 9 & 7 = 1 would be in bounds; use 12 & 7 = 4: the first secret.
        12,
        SEQ_LEAK,
        16,
    )
}

/// `kocher_05`: nested bounds checks; the leak needs both branches
/// mispredicted.
pub fn kocher_05() -> LitmusCase {
    case(
        "kocher_05",
        "nested v1: two stacked bounds checks",
        |b| {
            b.br(OpCode::Gt, [imm(16), reg(RA)], "outer", "out");
            b.label("outer");
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "inner", "out");
            b.label("inner");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_06`: the fence mitigation — safe.
pub fn kocher_06() -> LitmusCase {
    case(
        "kocher_06",
        "v1 gadget guarded by a fence after the bounds check: safe",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.fence();
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::SAFE,
        16,
    )
}

/// `kocher_07`: transmission through a **store** address instead of a
/// load (the address of a store leaks at address resolution).
pub fn kocher_07() -> LitmusCase {
    case(
        "kocher_07",
        "v1 leaking through a store address: store 1, [B + A[ra]]",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.store(imm(1), [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_08`: off-by-one comparison (`<=` instead of `<`).
pub fn kocher_08() -> LitmusCase {
    case(
        "kocher_08",
        "v1 with an off-by-one (le) bounds check",
        |b| {
            b.br(OpCode::Le, [reg(RA), imm(A_LEN)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_09`: the speculatively loaded secret leaks through a branch
/// condition (control-flow transmission) rather than an address.
pub fn kocher_09() -> LitmusCase {
    case(
        "kocher_09",
        "v1 transmitting through a secret branch condition",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.br(OpCode::Eq, [reg(RB), imm(0)], "zero", "out");
            b.label("zero");
            b.op(RC, OpCode::Add, [reg(RC), imm(1)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_10`: the speculatively loaded secret flows only through
/// `csel` into a register and is never used as an address or condition —
/// safe (constant-time selection does not transmit).
pub fn kocher_10() -> LitmusCase {
    case(
        "kocher_10",
        "speculative secret into csel only: safe",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.op(RC, OpCode::Csel, [reg(RB), imm(1), imm(2)]);
            b.store(reg(RC), [imm(SCRATCH)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::SAFE,
        16,
    )
}

/// `kocher_11`: one bit of the secret leaks through arithmetic into an
/// address (`B[A[ra] & 1]`).
pub fn kocher_11() -> LitmusCase {
    case(
        "kocher_11",
        "v1 leaking a single secret bit: B[A[ra] & 1]",
        |b| {
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.op(RD, OpCode::And, [reg(RB), imm(1)]);
            b.load(RC, [imm(B_BASE), reg(RD)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_12`: a *sufficient* mask (`ra & 3`) keeps every access in
/// bounds with no branch at all — safe.
pub fn kocher_12() -> LitmusCase {
    case(
        "kocher_12",
        "sufficient mask A[ra & 3]: safe without any branch",
        |b| {
            b.op(RD, OpCode::And, [reg(RA), imm(A_LEN - 1)]);
            b.load(RB, [imm(A_BASE), reg(RD)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
        },
        OOB_INDEX,
        Expectation::SAFE,
        16,
    )
}

/// `kocher_13`: the gadget sits behind three stacked branches — needs
/// deeper speculation.
pub fn kocher_13() -> LitmusCase {
    case(
        "kocher_13",
        "v1 behind three stacked conditions",
        |b| {
            b.br(OpCode::Gt, [imm(64), reg(RA)], "c1", "out");
            b.label("c1");
            b.br(OpCode::Gt, [imm(16), reg(RA)], "c2", "out");
            b.label("c2");
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "c3", "out");
            b.label("c3");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        OOB_INDEX,
        Expectation::V1,
        16,
    )
}

/// `kocher_14`: index underflow — `A[ra - 1]` with a mispredicted
/// `ra != 0` check wraps below the array onto a secret guard cell.
pub fn kocher_14() -> LitmusCase {
    case(
        "kocher_14",
        "v1 by underflow: A[ra-1] with ra = 0 mispredicted non-zero",
        |b| {
            b.br(OpCode::Ne, [reg(RA), imm(0)], "then", "out");
            b.label("then");
            b.op(RD, OpCode::Sub, [reg(RA), imm(1)]);
            b.load(RB, [imm(A_BASE), reg(RD)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.label("out");
        },
        0,
        Expectation::V1,
        16,
    )
}

/// `kocher_15`: the bounds check lives in the caller, the leak in the
/// callee — crossing a `call` boundary.
pub fn kocher_15() -> LitmusCase {
    case(
        "kocher_15",
        "v1 across a call: check in caller, gadget in callee",
        |b| {
            b.entry("main");
            b.label("main");
            b.br(OpCode::Gt, [imm(A_LEN), reg(RA)], "then", "out");
            b.label("then");
            b.call("gadget");
            b.label("out");
            b.jmp("end");
            b.label("gadget");
            b.load(RB, [imm(A_BASE), reg(RA)]);
            b.load(RC, [imm(B_BASE), reg(RB)]);
            b.ret();
            b.label("end");
        },
        OOB_INDEX,
        Expectation::V1,
        20,
    )
}

/// The whole suite.
pub fn all() -> Vec<LitmusCase> {
    vec![
        kocher_01(),
        kocher_02(),
        kocher_03(),
        kocher_04(),
        kocher_05(),
        kocher_06(),
        kocher_07(),
        kocher_08(),
        kocher_09(),
        kocher_10(),
        kocher_11(),
        kocher_12(),
        kocher_13(),
        kocher_14(),
        kocher_15(),
    ]
}
